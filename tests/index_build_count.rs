//! The prepare-once contract: a prepared [`Engine`] aligns strings exactly
//! once — at `Engine::prepare` time — no matter how many strategies run
//! against it or how many predictions it serves. Castor-Exact derives its
//! exact catalog by filtering, Castor-Clean unifies through the prepared
//! index and builds an equality-based catalog, and DLearn-Repaired reuses
//! the index outright when no CFD right-hand side overlaps an MD-identified
//! column.
//!
//! This file holds a single test on purpose: it asserts on the
//! process-global [`SimilarityIndex::build_count`], and integration-test
//! binaries are separate processes, so nothing else can increment the
//! counter concurrently.

use dlearn::core::{Engine, LearnerConfig, Strategy};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::similarity::SimilarityIndex;

#[test]
fn similarity_index_is_built_exactly_once_per_engine() {
    // One MD (titles), four CFDs whose right-hand sides (year, rating,
    // country) never overlap the MD-identified title columns — so every
    // strategy can share or derive from the prepared index.
    let dataset = generate_movie_dataset(&MovieConfig::tiny().with_violation_rate(0.1), 42);
    assert_eq!(dataset.task.mds.len(), 1);

    let before = SimilarityIndex::build_count();
    let engine = Engine::prepare(
        dataset.task.clone(),
        LearnerConfig::fast().with_iterations(4),
    )
    .expect("valid task");
    let after_prepare = SimilarityIndex::build_count();
    assert_eq!(
        after_prepare - before,
        dataset.task.mds.len(),
        "prepare must build exactly one index per MD"
    );

    // All seven strategies — the five paper systems plus FOIL and TILDE,
    // including repeated runs — plus serving on each learned definition:
    // zero further alignment builds. The extension learners run over the
    // shared base plan, so they inherit the prepare-once contract outright.
    for strategy in Strategy::all() {
        for _ in 0..2 {
            let learned = engine.learn(strategy).expect("learn");
            let predictor = engine.predictor(&learned).expect("bind predictor");
            let _ = predictor
                .predict_batch(&dataset.task.positives)
                .expect("predict");
        }
    }
    assert_eq!(
        SimilarityIndex::build_count(),
        after_prepare,
        "running strategies/predictions against a prepared engine must not rebuild the index"
    );
}
