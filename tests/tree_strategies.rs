//! The learner-diversity contract on the tree-shaped segmentation dataset:
//! the target is a six-way disjunction of region-specific attribute tests,
//! so a clausal covering learner under the default four-clause budget caps
//! its recall at 4/6 — while TILDE's first-order decision tree branches per
//! region without spending a clause budget. This suite pins the measurable
//! consequence: `Strategy::Tilde` beats every clausal-covering strategy (and
//! FOIL) on held-out F1 under cross-validation, with the same parameters the
//! `learner_diversity` experiment binary uses at smoke scale.

use dlearn::core::{Engine, LearnerConfig, Strategy};
use dlearn::datagen::{generate_segment_dataset, SegmentConfig};
use dlearn::eval::cross_validate_strategies;

fn config() -> LearnerConfig {
    LearnerConfig {
        seed: 31,
        ..LearnerConfig::fast().with_iterations(2)
    }
}

#[test]
fn tilde_beats_every_clausal_strategy_on_held_out_f1() {
    let dataset = generate_segment_dataset(&SegmentConfig::tiny(), 91);
    let strategies = Strategy::ALL;
    let results = cross_validate_strategies(&dataset, &strategies, &config(), 2, 6);
    let f1_of = |strategy: Strategy| -> f64 {
        results
            .iter()
            .zip(strategies)
            .find(|(_, s)| *s == strategy)
            .map(|(r, _)| r.f1)
            .expect("strategy evaluated")
    };
    let tilde = f1_of(Strategy::Tilde);
    for strategy in strategies {
        if strategy == Strategy::Tilde {
            continue;
        }
        assert!(
            tilde > f1_of(strategy),
            "TILDE (F1 {:.3}) does not beat {} (F1 {:.3}) on the tree-shaped task",
            tilde,
            strategy.name(),
            f1_of(strategy)
        );
    }
    // The win is the mechanism the dataset was built around, not a fluke of
    // the metric: the clause budget caps clausal recall below TILDE's.
    let dlearn_recall = results
        .iter()
        .zip(strategies)
        .find(|(_, s)| *s == Strategy::DLearn)
        .map(|(r, _)| r.recall)
        .expect("DLearn evaluated");
    let tilde_recall = results
        .iter()
        .zip(strategies)
        .find(|(_, s)| *s == Strategy::Tilde)
        .map(|(r, _)| r.recall)
        .expect("Tilde evaluated");
    assert!(
        tilde_recall > dlearn_recall,
        "TILDE recall {tilde_recall:.3} does not exceed clausal recall {dlearn_recall:.3}"
    );
}

#[test]
fn clausal_strategies_hit_the_clause_budget_on_the_tree_concept() {
    // The concept has six disjuncts; every clausal strategy must spend its
    // entire four-clause budget and still leave positives uncovered, which
    // is exactly the headroom TILDE exploits.
    let dataset = generate_segment_dataset(&SegmentConfig::tiny(), 91);
    let engine = Engine::prepare(dataset.task.clone(), config()).expect("valid task");
    let clausal = [
        Strategy::CastorNoMd,
        Strategy::CastorExact,
        Strategy::CastorClean,
        Strategy::DLearn,
        Strategy::DLearnRepaired,
    ];
    for strategy in clausal {
        let learned = engine.learn(strategy).expect("learn");
        assert_eq!(
            learned.definition().len(),
            config().max_clauses,
            "{} did not exhaust the clause budget",
            strategy.name()
        );
    }
    let tilde = engine.learn(Strategy::Tilde).expect("learn tilde");
    assert!(
        tilde.definition().len() > config().max_clauses,
        "TILDE ({} clauses) stayed within the clausal budget; the scenario is mis-shaped",
        tilde.definition().len()
    );
}

#[test]
fn extension_learners_separate_training_data_on_the_segments_task() {
    let dataset = generate_segment_dataset(&SegmentConfig::tiny(), 91);
    let engine = Engine::prepare(dataset.task.clone(), config()).expect("valid task");
    for strategy in [Strategy::Foil, Strategy::Tilde] {
        let learned = engine.learn(strategy).expect("learn");
        assert!(
            !learned.definition().is_empty(),
            "{} learned nothing",
            strategy.name()
        );
        for stats in learned.stats() {
            assert!(
                stats.positives_covered > stats.negatives_covered,
                "{} emitted a non-separating clause: {stats:?}",
                strategy.name()
            );
        }
    }
}
