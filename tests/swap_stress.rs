//! The hot-swap / coalescing stress suite: epoch-published models under
//! concurrent traffic.
//!
//! The contract under test has three legs:
//!
//! * **No torn reads** — while seeded scripts interleave full publications
//!   (`PredictorService::publish`), delta publications
//!   (`PredictorService::apply_delta`) and serving bursts with 1/2/8
//!   concurrent coalesced callers, *every* verdict any caller ever receives
//!   must bit-match a fresh single-caller run of the model at the epoch the
//!   verdict reports. A verdict mixing pre- and post-swap state would match
//!   neither baseline.
//! * **Coalescing is invisible** — results fanned back through the
//!   [`Coalescer`] are bit-identical ([`ServeVerdict`] `==`, epoch
//!   included) to each caller running its requests alone against the
//!   service.
//! * **The cache survives the churn** — after the stress run quiesces, a
//!   cached service still agrees verdict-for-verdict with a fresh uncached
//!   one over the final model.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dlearn::core::{
    Budget, CoalesceConfig, Coalescer, Engine, Learned, LearnerConfig, PredictorService,
    ServeVerdict, ServiceConfig, Strategy,
};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::relstore::{RelId, Tuple};
use dlearn_test_support::swap::{coalesce_script, swap_script, SwapScriptConfig, SwapStep};

fn config(coverage_threads: usize) -> LearnerConfig {
    LearnerConfig {
        coverage_threads,
        seed: 7,
        ..LearnerConfig::fast().with_iterations(4)
    }
}

struct Fixture {
    engine: Engine,
    learned: Learned,
    pool: Vec<Tuple>,
}

fn fixture() -> Fixture {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let engine = Engine::prepare(dataset.task.clone(), config(1)).expect("valid task");
    let learned = engine.learn(Strategy::DLearn).expect("learn");
    let pool: Vec<Tuple> = dataset
        .task
        .positives
        .iter()
        .chain(dataset.task.negatives.iter())
        .cloned()
        .collect();
    Fixture {
        engine,
        learned,
        pool,
    }
}

fn delta_relations() -> [RelId; 3] {
    [
        RelId::intern("imdb_movies"),
        RelId::intern("omdb_movies"),
        RelId::intern("imdb_mov2genres"),
    ]
}

/// Fresh single-caller verdicts of the engine's *current* model over the
/// tuple pool — the per-epoch ground truth every concurrently-served
/// verdict must bit-match on `covered`.
fn fresh_baseline(engine: &Engine, learned: &Learned, pool: &[Tuple]) -> Vec<bool> {
    engine
        .predictor(learned)
        .expect("bind predictor")
        .predict_batch(pool)
        .expect("baseline predict")
}

#[test]
fn concurrent_swaps_never_tear_a_verdict() {
    // The headline: a seeded schedule of deltas, publishes and serving
    // bursts replays on the main thread while 1/2/8 caller threads hammer
    // the coalescer. Every verdict names its epoch; every epoch was
    // baselined fresh (single caller, no cache) before it was installed —
    // so any torn read (a verdict computed half against one model, half
    // against another) shows up as a mismatch against *every* baseline.
    for callers in [1usize, 2, 8] {
        let mut fx = fixture();
        let script = swap_script(
            &fx.engine.task().database,
            &delta_relations(),
            &SwapScriptConfig::default(),
            23 + callers as u64,
        );
        let schedules = coalesce_script(fx.pool.len(), callers, 8, 17);

        let service = Arc::new(PredictorService::new(
            fx.engine.predictor(&fx.learned).expect("bind predictor"),
            ServiceConfig::default(),
        ));
        let coalescer = Coalescer::new(service.clone(), CoalesceConfig::default());
        let mut baselines: HashMap<u64, Vec<bool>> = HashMap::new();
        baselines.insert(
            service.epoch(),
            fresh_baseline(&fx.engine, &fx.learned, &fx.pool),
        );

        let done = AtomicBool::new(false);
        let collected: Vec<Vec<(usize, ServeVerdict)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = schedules
                .iter()
                .map(|schedule| {
                    let coalescer = &coalescer;
                    let pool = &fx.pool;
                    let done = &done;
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        // Cycle the schedule until the script has fully
                        // replayed, so traffic overlaps every publication.
                        while !done.load(Ordering::Acquire) {
                            for &i in schedule {
                                let verdict = coalescer
                                    .submit(pool[i].clone())
                                    .expect("stress serve must succeed");
                                seen.push((i, verdict));
                            }
                        }
                        seen
                    })
                })
                .collect();

            // Replay the script: each publication is baselined fresh
            // *before* install, then probed through the coalescer *after*
            // install so at least one verdict per epoch is deterministic.
            for step in &script {
                match step {
                    SwapStep::Delta(tx) => {
                        let report = fx.engine.apply_delta(tx).expect("engine delta");
                        fx.learned = fx.engine.learn(Strategy::DLearn).expect("re-learn");
                        let baseline = fresh_baseline(&fx.engine, &fx.learned, &fx.pool);
                        service
                            .apply_delta(fx.engine.predictor(&fx.learned).expect("rebind"), &report)
                            .expect("service delta");
                        baselines.insert(service.epoch(), baseline);
                    }
                    SwapStep::Publish => {
                        let baseline = fresh_baseline(&fx.engine, &fx.learned, &fx.pool);
                        let epoch = service
                            .publish(fx.engine.predictor(&fx.learned).expect("rebind"))
                            .expect("publish");
                        baselines.insert(epoch, baseline);
                    }
                    SwapStep::Serve { batches } => {
                        for b in 0..*batches {
                            let i = b % fx.pool.len();
                            let verdict = coalescer
                                .submit(fx.pool[i].clone())
                                .expect("main-thread serve");
                            let baseline = &baselines[&verdict.epoch];
                            assert_eq!(
                                verdict.covered, baseline[i],
                                "callers={callers}: main-thread verdict tore at epoch {}",
                                verdict.epoch
                            );
                        }
                    }
                }
                // Probe the just-installed epoch so the epoch-coverage
                // vacuity check below cannot depend on caller timing.
                let probe = coalescer.submit(fx.pool[0].clone()).expect("probe");
                assert_eq!(probe.covered, baselines[&probe.epoch][0]);
            }
            done.store(true, Ordering::Release);
            handles
                .into_iter()
                .map(|h| h.join().expect("caller thread"))
                .collect()
        });

        // Every concurrently-collected verdict must bit-match the fresh
        // baseline of exactly the epoch it reports.
        let mut checked = 0u64;
        let mut observed: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for (caller, seen) in collected.iter().enumerate() {
            assert!(!seen.is_empty(), "caller {caller} never served");
            for &(i, verdict) in seen {
                let baseline = baselines.get(&verdict.epoch).unwrap_or_else(|| {
                    panic!(
                        "callers={callers}: verdict reports unknown epoch {}",
                        verdict.epoch
                    )
                });
                assert_eq!(
                    verdict.covered, baseline[i],
                    "callers={callers} caller={caller} tuple={i}: verdict does not match \
                     the fresh model of its epoch {} (torn read)",
                    verdict.epoch
                );
                observed.insert(verdict.epoch);
                checked += 1;
            }
        }
        assert!(checked > 0);
        // Vacuity: the script installed several epochs and traffic was
        // served against more than one of them (the post-step probes make
        // this deterministic).
        assert!(
            baselines.len() >= 3,
            "callers={callers}: script installed too few epochs ({})",
            baselines.len()
        );
        assert!(service.metrics().swaps >= 2, "{:?}", service.metrics());

        // Post-quiesce: the churned cache still agrees with a fresh
        // uncached service over the final model.
        let uncached = PredictorService::new(
            fx.engine.predictor(&fx.learned).expect("rebind"),
            ServiceConfig {
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let warm: Vec<bool> = service
            .predict_batch(&fx.pool)
            .iter()
            .map(|r| r.as_ref().expect("warm serve").covered)
            .collect();
        let cold: Vec<bool> = uncached
            .predict_batch(&fx.pool)
            .iter()
            .map(|r| r.as_ref().expect("cold serve").covered)
            .collect();
        assert_eq!(
            warm, cold,
            "callers={callers}: cache-on/off parity broke after the stress run"
        );
    }
}

#[test]
fn coalesced_results_are_bit_identical_to_solo_calls() {
    // No swaps in flight: whatever the batcher coalesces, every caller's
    // results must equal — as full `ServeVerdict`s, epoch included — the
    // results of serving its requests alone, one call at a time.
    let fx = fixture();
    for callers in [1usize, 2, 8] {
        let service = Arc::new(PredictorService::new(
            fx.engine.predictor(&fx.learned).expect("bind predictor"),
            ServiceConfig::default(),
        ));
        let solo = PredictorService::new(
            fx.engine.predictor(&fx.learned).expect("bind predictor"),
            ServiceConfig::default(),
        );
        let schedules = coalesce_script(fx.pool.len(), callers, 12, 31 + callers as u64);
        let coalescer = Coalescer::new(service.clone(), CoalesceConfig::default());

        let coalesced: Vec<Vec<ServeVerdict>> = std::thread::scope(|scope| {
            let handles: Vec<_> = schedules
                .iter()
                .map(|schedule| {
                    let coalescer = &coalescer;
                    let pool = &fx.pool;
                    scope.spawn(move || {
                        schedule
                            .iter()
                            .map(|&i| coalescer.submit(pool[i].clone()).expect("serve"))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("caller thread"))
                .collect()
        });

        for (schedule, got) in schedules.iter().zip(&coalesced) {
            let want: Vec<ServeVerdict> = schedule
                .iter()
                .map(|&i| {
                    solo.predict_batch(std::slice::from_ref(&fx.pool[i]))
                        .remove(0)
                        .expect("solo serve")
                })
                .collect();
            assert_eq!(
                &want, got,
                "callers={callers}: coalesced verdicts diverged from solo serving"
            );
        }
        let metrics = coalescer.metrics();
        assert_eq!(metrics.submitted, (callers * 12) as u64, "{metrics:?}");
        assert_eq!(metrics.coalesced_tuples, metrics.submitted, "{metrics:?}");
    }
}

#[test]
fn contiguous_submissions_actually_coalesce_into_one_batch() {
    // `submit_many_with` enqueues under one lock while the batcher sleeps,
    // so a quiesced coalescer must drain the whole submission as a single
    // batch — this pins that the coalescing machinery does coalesce (the
    // parity tests would pass trivially with a batch size of 1).
    let fx = fixture();
    let service = Arc::new(PredictorService::new(
        fx.engine.predictor(&fx.learned).expect("bind predictor"),
        ServiceConfig::default(),
    ));
    let coalescer = Coalescer::new(service.clone(), CoalesceConfig::default());
    let items: Vec<(Tuple, Budget)> = fx
        .pool
        .iter()
        .take(8)
        .map(|t| (t.clone(), Budget::unlimited()))
        .collect();
    let results = coalescer.submit_many_with(&items);
    assert_eq!(results.len(), items.len());
    let baseline = fresh_baseline(&fx.engine, &fx.learned, &fx.pool);
    for ((i, r), _) in results.iter().enumerate().zip(&items) {
        assert_eq!(r.as_ref().expect("serve").covered, baseline[i]);
    }
    let metrics = coalescer.metrics();
    assert_eq!(metrics.largest_batch, 8, "{metrics:?}");
    assert_eq!(metrics.batches, 1, "{metrics:?}");
    assert_eq!(metrics.full_drains + metrics.timer_drains, 1, "{metrics:?}");
}
