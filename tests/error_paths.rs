//! Dedicated cases for every typed error of the fallible surface: each
//! `Engine::prepare` variant, the serving-side arity checks (single, batch,
//! and service), and the serving-tier variants introduced with the
//! resilient front-end (`DeadlineExceeded`, `WorkerPanicked`).

use dlearn::core::{DlearnError, Engine, LearnerConfig, PredictorService, ServiceConfig, Strategy};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::relstore::{tuple, Value};
use dlearn_constraints::MatchingDependency;

fn fast() -> LearnerConfig {
    LearnerConfig {
        coverage_threads: 1,
        ..LearnerConfig::fast().with_iterations(4)
    }
}

#[test]
fn prepare_example_arity_names_the_offending_side_and_index() {
    let mut task = generate_movie_dataset(&MovieConfig::tiny(), 42).task;
    task.negatives.insert(0, tuple(Vec::<Value>::new()));
    let err = Engine::prepare(task, fast()).unwrap_err();
    assert!(
        matches!(
            err,
            DlearnError::ExampleArity {
                expected: 1,
                actual: 0,
                index: 0,
                positive: false,
            }
        ),
        "{err:?}"
    );
}

#[test]
fn prepare_empty_positives_is_typed() {
    let base = generate_movie_dataset(&MovieConfig::tiny(), 42).task;
    let task = base.with_examples(Vec::new(), base.negatives.clone());
    let err = Engine::prepare(task, fast()).unwrap_err();
    assert!(matches!(err, DlearnError::EmptyPositives), "{err:?}");
}

#[test]
fn prepare_store_error_names_the_unknown_relation() {
    let mut task = generate_movie_dataset(&MovieConfig::tiny(), 42).task;
    task.mds.push(MatchingDependency::simple(
        "ghost",
        "imdb_movies",
        "title",
        "no_such_relation",
        "title",
    ));
    let err = Engine::prepare(task, fast()).unwrap_err();
    assert!(matches!(err, DlearnError::Store(_)), "{err:?}");
    assert!(err.to_string().contains("no_such_relation"), "{err}");
}

#[test]
fn prepare_invalid_config_covers_every_validated_field() {
    let task = generate_movie_dataset(&MovieConfig::tiny(), 42).task;
    let cases: Vec<(&'static str, LearnerConfig)> = vec![
        (
            "iterations",
            LearnerConfig {
                iterations: 0,
                ..fast()
            },
        ),
        (
            "sample_size",
            LearnerConfig {
                sample_size: 0,
                ..fast()
            },
        ),
        (
            "max_clauses",
            LearnerConfig {
                max_clauses: 0,
                ..fast()
            },
        ),
        (
            "max_repaired_clauses",
            LearnerConfig {
                max_repaired_clauses: 0,
                ..fast()
            },
        ),
        (
            "binding_cap",
            LearnerConfig {
                binding_cap: 0,
                ..fast()
            },
        ),
        (
            "sample_positives",
            LearnerConfig {
                sample_positives: 0,
                ..fast()
            },
        ),
        (
            "km",
            LearnerConfig {
                km: 0,
                use_mds: true,
                ..fast()
            },
        ),
        (
            "similarity_threshold",
            LearnerConfig {
                similarity_threshold: f64::NAN,
                ..fast()
            },
        ),
        (
            "index_hot_key_fraction",
            LearnerConfig {
                index_hot_key_fraction: -0.5,
                ..fast()
            },
        ),
    ];
    for (field, config) in cases {
        let err = Engine::prepare(task.clone(), config).unwrap_err();
        match err {
            DlearnError::InvalidConfig { field: f, .. } => {
                assert_eq!(f, field, "wrong field reported")
            }
            other => panic!("{field}: expected InvalidConfig, got {other:?}"),
        }
    }
}

#[test]
fn predict_arity_errors_are_typed_on_every_serving_entry_point() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let engine = Engine::prepare(dataset.task.clone(), fast()).expect("valid task");
    let learned = engine.learn(Strategy::DLearn).expect("learn");
    let predictor = engine.predictor(&learned).expect("bind predictor");
    let bad = tuple(vec![Value::int(1), Value::str("extra")]);

    let err = predictor.predict(&bad).unwrap_err();
    assert!(
        matches!(
            err,
            DlearnError::PredictArity {
                expected: 1,
                actual: 2,
                index: 0
            }
        ),
        "{err:?}"
    );

    let good = dataset.task.positives[0].clone();
    let err = predictor
        .predict_batch(&[good.clone(), bad.clone()])
        .unwrap_err();
    assert!(
        matches!(err, DlearnError::PredictArity { index: 1, .. }),
        "{err:?}"
    );

    // The service scopes the error to the offending example instead of
    // failing the batch.
    let service = PredictorService::new(
        engine.predictor(&learned).expect("bind predictor"),
        ServiceConfig::default(),
    );
    let results = service.predict_batch(&[good, bad]);
    assert!(results[0].is_ok(), "{:?}", results[0]);
    assert!(
        matches!(results[1], Err(DlearnError::PredictArity { index: 1, .. })),
        "{:?}",
        results[1]
    );
}

#[test]
fn serving_tier_errors_render_actionable_messages() {
    let deadline = DlearnError::DeadlineExceeded { budget_ms: 250 };
    assert!(deadline.to_string().contains("250ms"), "{deadline}");
    let panicked = DlearnError::WorkerPanicked {
        site: "serve",
        message: "index out of bounds".into(),
    };
    let msg = panicked.to_string();
    assert!(
        msg.contains("serve") && msg.contains("index out of bounds"),
        "{msg}"
    );
    // Serving errors are plain data: cloneable and comparable, so batch
    // results can be deduplicated and asserted on.
    assert_eq!(deadline.clone(), deadline);
    assert_ne!(deadline, panicked);
}

#[test]
fn delta_failures_are_typed_and_leave_the_engine_untouched() {
    // Every store-level delta failure maps to its typed variant, and after
    // any failed transaction the engine is byte-for-byte the session it was:
    // the same definition is learned and no delta work is reported later.
    use dlearn::relstore::{DeltaTx, RelId};

    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let mut engine = Engine::prepare(dataset.task.clone(), fast()).expect("valid task");
    let baseline = engine
        .learn(Strategy::DLearn)
        .expect("learn")
        .definition()
        .clone();

    let unknown = DeltaTx::new().insert(
        RelId::intern("no_such_relation"),
        tuple(vec![Value::int(1)]),
    );
    let err = engine.apply_delta(&unknown).unwrap_err();
    assert!(
        matches!(&err, DlearnError::DeltaUnknownRelation { relation } if relation == "no_such_relation"),
        "{err:?}"
    );
    assert!(
        err.to_string()
            .contains("delta references unknown relation 'no_such_relation'"),
        "{err}"
    );

    let short = DeltaTx::new().insert(
        RelId::intern("imdb_movies"),
        tuple(vec![Value::int(1), Value::str("Truncated Row")]),
    );
    let err = engine.apply_delta(&short).unwrap_err();
    assert!(
        matches!(
            &err,
            DlearnError::DeltaArityMismatch {
                relation,
                expected: 3,
                actual: 2,
            } if relation == "imdb_movies"
        ),
        "{err:?}"
    );
    assert!(
        err.to_string().contains("has arity 2, schema expects 3"),
        "{err}"
    );

    let absent = DeltaTx::new().delete(
        RelId::intern("imdb_movies"),
        tuple(vec![
            Value::int(987_654),
            Value::str("Never Stored"),
            Value::int(1900),
        ]),
    );
    let err = engine.apply_delta(&absent).unwrap_err();
    assert!(
        matches!(&err, DlearnError::DeltaAbsentTuple { relation, .. } if relation == "imdb_movies"),
        "{err:?}"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("delta deletes absent tuple") && msg.contains("imdb_movies"),
        "{msg}"
    );

    // Untouched: not quarantined, and the session still learns the exact
    // pre-failure definition.
    assert!(!engine.is_quarantined());
    assert_eq!(
        engine
            .learn(Strategy::DLearn)
            .expect("learn after failed deltas")
            .definition(),
        &baseline,
        "failed deltas perturbed the session"
    );
}

#[test]
fn delta_error_variants_render_actionable_messages() {
    // The quarantine refusal (reachable only through an injected mid-delta
    // panic; exercised end-to-end in the fault-injection suite) and its
    // sibling variants are plain, comparable data with actionable text.
    let quarantined = DlearnError::DeltaQuarantined;
    let msg = quarantined.to_string();
    assert!(
        msg.contains("quarantined") && msg.contains("Engine::prepare"),
        "{msg}"
    );
    assert_eq!(quarantined.clone(), quarantined);
    assert_ne!(
        quarantined,
        DlearnError::DeltaUnknownRelation {
            relation: "r".into()
        }
    );
}

#[test]
fn out_of_order_delta_reports_are_rejected_typed_and_leave_the_service_untouched() {
    // `PredictorService::apply_delta` only accepts a report that chains
    // directly from the served model's delta sequence, with a predictor
    // re-bound at that sequence. A stale predictor, a replayed report, or a
    // skipped delta all surface as `DeltaEpochMismatch` — and the served
    // model keeps answering exactly as before.
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let mut engine = Engine::prepare(dataset.task.clone(), fast()).expect("valid task");
    let learned = engine.learn(Strategy::DLearn).expect("learn");
    let stale_predictor = engine.predictor(&learned).expect("bind predictor");
    let service = PredictorService::new(
        engine.predictor(&learned).expect("bind predictor"),
        ServiceConfig::default(),
    );
    let trace: Vec<dlearn::relstore::Tuple> = dataset
        .task
        .positives
        .iter()
        .chain(dataset.task.negatives.iter())
        .cloned()
        .collect();
    let epoch_before = service.epoch();

    let tx = dlearn::relstore::DeltaTx::new().insert(
        dlearn::relstore::RelId::intern("imdb_movies"),
        tuple(vec![
            Value::int(990_303),
            Value::str("Sequence Drill"),
            Value::int(2023),
        ]),
    );
    let report = engine.apply_delta(&tx).expect("engine delta");
    assert_eq!(report.sequence, 1, "first delta of a fresh session");
    let relearned = engine.learn(Strategy::DLearn).expect("post-delta learn");

    // A predictor still bound at the pre-delta state cannot carry the
    // post-delta report.
    let err = service
        .apply_delta(stale_predictor, &report)
        .expect_err("stale predictor must be rejected");
    assert_eq!(
        err,
        DlearnError::DeltaEpochMismatch {
            served: 0,
            report: 1
        },
        "{err:?}"
    );

    // A correctly chained publication lands...
    service
        .apply_delta(engine.predictor(&relearned).expect("rebind"), &report)
        .expect("chained delta publication");
    // ...and replaying the very same report is now out of order.
    let err = service
        .apply_delta(engine.predictor(&relearned).expect("rebind"), &report)
        .expect_err("replayed report must be rejected");
    assert_eq!(
        err,
        DlearnError::DeltaEpochMismatch {
            served: 1,
            report: 1
        },
        "{err:?}"
    );

    // The rejections never installed anything: one successful publication,
    // and the service answers match the rebound engine exactly.
    assert_eq!(service.epoch(), epoch_before + 1);
    assert_eq!(service.metrics().swaps, 1);
    let rebound = engine.predictor(&relearned).expect("bind predictor");
    let after: Vec<bool> = service
        .predict_batch(&trace)
        .iter()
        .map(|r| r.as_ref().expect("serve").covered)
        .collect();
    let direct = rebound.predict_batch(&trace).expect("predict");
    assert_eq!(after, direct);
}

#[test]
fn swap_error_variants_render_actionable_messages() {
    let mismatch = DlearnError::DeltaEpochMismatch {
        served: 4,
        report: 2,
    };
    let msg = mismatch.to_string();
    assert!(
        msg.contains("sequence 2") && msg.contains("sequence 4") && msg.contains("apply_delta"),
        "{msg}"
    );
    assert_eq!(mismatch.clone(), mismatch);

    let quarantined = DlearnError::SwapQuarantined;
    let msg = quarantined.to_string();
    assert!(
        msg.contains("quarantined") && msg.contains("publish"),
        "{msg}"
    );
    assert_ne!(quarantined, DlearnError::DeltaQuarantined);

    let closed = DlearnError::CoalescerClosed;
    let msg = closed.to_string();
    assert!(
        msg.contains("coalescer") && msg.contains("not served"),
        "{msg}"
    );
}
