//! Fault-injection robustness suite (feature `fault-injection`): proves the
//! serving tier survives poisoned, slow and budget-starved examples —
//! no abort, no hang past the deadline, no cache poisoning — with every
//! failure scoped to its example and typed.
//!
//! Run with `cargo test --features fault-injection`.

#![cfg(feature = "fault-injection")]

use std::time::Duration;

use dlearn::core::{
    Budget, DlearnError, Engine, LearnerConfig, PredictorService, ServiceConfig, Strategy,
};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::relstore::Tuple;
use dlearn_test_support::fault::{self, Fault, FaultPlan, Site};

fn config() -> LearnerConfig {
    LearnerConfig {
        coverage_threads: 1,
        seed: 7,
        ..LearnerConfig::fast().with_iterations(4)
    }
}

struct Fixture {
    engine: Engine,
    learned: dlearn::core::Learned,
    trace: Vec<Tuple>,
    baseline: Vec<bool>,
}

fn fixture() -> Fixture {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let engine = Engine::prepare(dataset.task.clone(), config()).expect("valid task");
    let learned = engine.learn(Strategy::DLearn).expect("learn");
    let trace: Vec<Tuple> = dataset
        .task
        .positives
        .iter()
        .chain(dataset.task.negatives.iter())
        .cloned()
        .collect();
    let predictor = engine.predictor(&learned).expect("bind predictor");
    let baseline: Vec<bool> = trace
        .iter()
        .map(|e| predictor.predict(e).expect("predict"))
        .collect();
    Fixture {
        engine,
        learned,
        trace,
        baseline,
    }
}

fn service(fx: &Fixture, workers: usize) -> PredictorService {
    PredictorService::new(
        fx.engine.predictor(&fx.learned).expect("bind predictor"),
        ServiceConfig {
            worker_threads: workers,
            ..ServiceConfig::default()
        },
    )
}

/// The injection key of a tuple is its display form (what the service hands
/// to the checkpoint).
fn key_of(t: &Tuple) -> String {
    t.to_string()
}

#[test]
fn injected_grounding_panic_isolates_one_example_and_never_poisons_the_cache() {
    let fx = fixture();
    let victim = fx.trace[1].clone();
    for workers in [1usize, 2, 8] {
        let service = service(&fx, workers);
        {
            let _guard = fault::install(FaultPlan::new(42).on_key(
                Site::Grounding,
                &key_of(&victim),
                Fault::Panic,
            ));
            let results = service.predict_batch(&fx.trace);
            assert_eq!(results.len(), fx.trace.len());
            for (i, r) in results.iter().enumerate() {
                if fx.trace[i] == victim {
                    let Err(DlearnError::WorkerPanicked { site, message }) = r else {
                        panic!("workers={workers}: victim did not fail typed: {r:?}");
                    };
                    assert_eq!(*site, "serve");
                    assert!(message.contains(fault::PANIC_MARKER), "{message}");
                } else {
                    assert_eq!(
                        r.as_ref().expect("healthy example failed").covered,
                        fx.baseline[i],
                        "workers={workers}: neighbor verdict diverged at {i}"
                    );
                }
            }
            assert!(service.metrics().worker_panics >= 1);
            assert!(fault::injected(Site::Grounding) >= 1);
        }
        // Plan cleared: the victim serves correctly now — fresh, because the
        // quarantine kept the poisoned attempt out of the cache — and its
        // verdict equals the no-fault baseline (no cache poisoning).
        let after = service.predict_batch(&fx.trace);
        let verdicts: Vec<bool> = after
            .iter()
            .map(|r| r.as_ref().expect("post-fault serve").covered)
            .collect();
        assert_eq!(
            fx.baseline, verdicts,
            "workers={workers}: post-fault verdicts diverged from baseline"
        );
    }
}

#[test]
fn injected_coverage_delay_blows_only_the_slow_examples_deadline() {
    let fx = fixture();
    let victim = fx.trace[0].clone();
    let service = service(&fx, 2);
    let _guard = fault::install(FaultPlan::new(7).on_key(
        Site::Coverage,
        &key_of(&victim),
        Fault::Delay(Duration::from_millis(300)),
    ));
    let budget = Budget::unlimited().with_deadline(Duration::from_millis(50));
    let start = std::time::Instant::now();
    let results = service.predict_batch_with(&fx.trace, &budget);
    // The batch completes in bounded wall time: the delay is 300ms per
    // victim occurrence, everything else is fast.
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "batch took {:?}",
        start.elapsed()
    );
    for (i, r) in results.iter().enumerate() {
        if fx.trace[i] == victim {
            assert!(
                matches!(r, Err(DlearnError::DeadlineExceeded { budget_ms: 50 })),
                "slow example did not time out: {r:?}"
            );
        } else {
            assert_eq!(
                r.as_ref().expect("fast example failed").covered,
                fx.baseline[i],
                "fast example diverged at {i}"
            );
        }
    }
    assert!(service.metrics().deadline_exceeded >= 1);
}

#[test]
fn injected_budget_exhaustion_degrades_observably_without_errors() {
    let fx = fixture();
    let service = service(&fx, 1);
    let _guard = fault::install(FaultPlan::new(3).with_probability(
        Site::Coverage,
        1.0,
        Fault::ExhaustBudget,
    ));
    let results = service.predict_batch(&fx.trace);
    for r in &results {
        let v = r.as_ref().expect("exhaustion is not an error");
        assert!(!v.covered, "a zero-step search cannot prove coverage");
    }
    // Examples that never enter the backtracker (pre-search filters reject
    // them conclusively) are sound "no"s, so degradation is asserted on the
    // batch, not per example.
    assert!(
        results
            .iter()
            .any(|r| r.as_ref().expect("serve").is_degraded()),
        "forced exhaustion left no degraded verdicts"
    );
    let metrics = service.metrics();
    assert!(metrics.budget_exhausted_searches > 0, "{metrics:?}");
    assert!(metrics.degraded_verdicts > 0, "{metrics:?}");
    assert!(fault::injected(Site::Coverage) >= fx.trace.len() as u64);
}

#[test]
fn injected_alignment_panic_fails_prepare_with_a_typed_error() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let _guard =
        fault::install(FaultPlan::new(1).with_probability(Site::Alignment, 1.0, Fault::Panic));
    let err = Engine::prepare(dataset.task.clone(), config()).unwrap_err();
    let DlearnError::WorkerPanicked { site, message } = &err else {
        panic!("expected WorkerPanicked, got {err:?}");
    };
    assert_eq!(*site, "prepare");
    assert!(message.contains(fault::PANIC_MARKER), "{message}");
    assert!(fault::injected(Site::Alignment) >= 1);
}

#[test]
fn post_episode_parity_cache_on_vs_off_across_threads() {
    // After a full fault episode (panics + delays on a few tuples), a
    // recovered service must serve bit-identical verdicts cache-on vs
    // cache-off at every thread count — the oracle-style pin that the
    // quarantine and error paths never leak state into verdicts.
    let fx = fixture();
    let with_cache = service(&fx, 1);
    {
        let _guard = fault::install(
            FaultPlan::new(11)
                .on_key(Site::Grounding, &key_of(&fx.trace[0]), Fault::Panic)
                .on_key(
                    Site::Coverage,
                    &key_of(&fx.trace[1]),
                    Fault::Delay(Duration::from_millis(200)),
                ),
        );
        let _ = with_cache.predict_batch_with(
            &fx.trace,
            &Budget::unlimited().with_deadline(Duration::from_millis(50)),
        );
    }
    for workers in [1usize, 2, 8] {
        let no_cache = PredictorService::new(
            fx.engine.predictor(&fx.learned).expect("bind predictor"),
            ServiceConfig {
                cache_capacity: 0,
                worker_threads: workers,
                ..ServiceConfig::default()
            },
        );
        let cached: Vec<bool> = with_cache
            .predict_batch(&fx.trace)
            .iter()
            .map(|r| r.as_ref().expect("serve").covered)
            .collect();
        let uncached: Vec<bool> = no_cache
            .predict_batch(&fx.trace)
            .iter()
            .map(|r| r.as_ref().expect("serve").covered)
            .collect();
        assert_eq!(cached, uncached, "workers={workers}");
        assert_eq!(cached, fx.baseline, "workers={workers}");
    }
}

#[test]
fn injected_learn_panic_is_typed_per_strategy_and_leaves_the_session_healthy() {
    // A crash inside any strategy's refinement search must surface as a
    // typed WorkerPanicked{site:"learn"} — keyed by the strategy's display
    // name, so one poisoned learner never blocks the others — and the
    // prepared session must stay fully usable afterwards.
    let fx = fixture();
    {
        let _guard = fault::install(FaultPlan::new(29).on_key(
            Site::Learn,
            Strategy::Tilde.name(),
            Fault::Panic,
        ));
        let err = fx.engine.learn(Strategy::Tilde).unwrap_err();
        let DlearnError::WorkerPanicked { site, message } = &err else {
            panic!("expected WorkerPanicked, got {err:?}");
        };
        assert_eq!(*site, "learn");
        assert!(message.contains(fault::PANIC_MARKER), "{message}");
        assert!(fault::injected(Site::Learn) >= 1);
        // Other strategies are untouched while the plan is still installed:
        // the checkpoint keys on the strategy name.
        let healthy = fx.engine.learn(Strategy::DLearn).expect("unkeyed learn");
        assert_eq!(healthy.definition(), fx.learned.definition());
    }
    // Plan cleared: the poisoned strategy learns normally — the panic never
    // quarantined the session or corrupted shared prepared state.
    let recovered = fx.engine.learn(Strategy::Tilde).expect("recovered learn");
    assert!(!recovered.definition().is_empty());
    let verdicts: Vec<bool> = fx
        .trace
        .iter()
        .map(|e| {
            fx.engine
                .predictor(&fx.learned)
                .expect("bind predictor")
                .predict(e)
                .expect("predict")
        })
        .collect();
    assert_eq!(
        verdicts, fx.baseline,
        "serving state changed after a learn panic"
    );
}

#[test]
fn injected_delta_panic_quarantines_the_session_but_keeps_serving_reads() {
    // A crash mid-delta-maintenance must be transactional: the engine keeps
    // the last committed state (reads — learn, predict — still serve it
    // bit-identically), and every further delta is refused typed.
    let mut fx = fixture();
    let tx = dlearn::relstore::DeltaTx::new().insert(
        dlearn::relstore::RelId::intern("imdb_movies"),
        dlearn::relstore::tuple(vec![
            dlearn::relstore::Value::int(990_100),
            dlearn::relstore::Value::str("Quarantine Drill"),
            dlearn::relstore::Value::int(2020),
        ]),
    );
    {
        let _guard =
            fault::install(FaultPlan::new(13).with_probability(Site::Delta, 1.0, Fault::Panic));
        let err = fx.engine.apply_delta(&tx).unwrap_err();
        let DlearnError::WorkerPanicked { site, message } = &err else {
            panic!("expected WorkerPanicked, got {err:?}");
        };
        assert_eq!(*site, "delta");
        assert!(message.contains(fault::PANIC_MARKER), "{message}");
        assert!(fault::injected(Site::Delta) >= 1);
    }
    assert!(fx.engine.is_quarantined());
    // Further deltas are refused even with the fault plan cleared...
    assert!(matches!(
        fx.engine.apply_delta(&tx),
        Err(DlearnError::DeltaQuarantined)
    ));
    // ...but the committed pre-delta state still serves reads: the learned
    // definition and every verdict equal the no-fault baseline.
    let relearned = fx
        .engine
        .learn(Strategy::DLearn)
        .expect("quarantined learn");
    assert_eq!(relearned.definition(), fx.learned.definition());
    let verdicts: Vec<bool> = fx
        .trace
        .iter()
        .map(|e| {
            fx.engine
                .predictor(&relearned)
                .expect("bind predictor")
                .predict(e)
                .expect("predict")
        })
        .collect();
    assert_eq!(
        verdicts, fx.baseline,
        "quarantined session no longer serves the committed state"
    );
}

#[test]
fn deadline_during_post_delta_serving_degrades_only_the_victim() {
    // A delta lands, the service re-binds and keeps serving — and an
    // injected stall on one tuple under a tight deadline must degrade only
    // that tuple, while every neighbor serves the correct *post-delta*
    // verdict.
    let mut fx = fixture();
    let service = service(&fx, 2);
    let tx = dlearn::relstore::DeltaTx::new().insert(
        dlearn::relstore::RelId::intern("imdb_movies"),
        dlearn::relstore::tuple(vec![
            dlearn::relstore::Value::int(990_101),
            dlearn::relstore::Value::str("Deadline Drill"),
            dlearn::relstore::Value::int(2021),
        ]),
    );
    let report = fx.engine.apply_delta(&tx).expect("apply_delta");
    let learned = fx.engine.learn(Strategy::DLearn).expect("post-delta learn");
    service
        .apply_delta(
            fx.engine.predictor(&learned).expect("rebind predictor"),
            &report,
        )
        .expect("service delta");
    let predictor = fx.engine.predictor(&learned).expect("bind predictor");
    let post_delta: Vec<bool> = fx
        .trace
        .iter()
        .map(|e| predictor.predict(e).expect("predict"))
        .collect();
    let victim = fx.trace[0].clone();
    {
        let _guard = fault::install(FaultPlan::new(17).on_key(
            Site::Coverage,
            &key_of(&victim),
            Fault::Delay(Duration::from_millis(300)),
        ));
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(50));
        let results = service.predict_batch_with(&fx.trace, &budget);
        for (i, r) in results.iter().enumerate() {
            if fx.trace[i] == victim {
                assert!(
                    matches!(r, Err(DlearnError::DeadlineExceeded { budget_ms: 50 })),
                    "victim did not time out post-delta: {r:?}"
                );
            } else {
                assert_eq!(
                    r.as_ref().expect("healthy post-delta serve").covered,
                    post_delta[i],
                    "post-delta neighbor verdict diverged at {i}"
                );
            }
        }
        assert!(service.metrics().deadline_exceeded >= 1);
    }
    // Fault cleared: the whole trace serves the post-delta truth.
    let after: Vec<bool> = service
        .predict_batch(&fx.trace)
        .iter()
        .map(|r| r.as_ref().expect("post-fault serve").covered)
        .collect();
    assert_eq!(after, post_delta);
}

#[test]
fn injected_swap_panic_leaves_the_old_epoch_serving_and_quarantines_the_swap_path() {
    // A panic mid-publication must mirror the engine's delta quarantine: the
    // previous epoch keeps serving the exact committed verdicts, selective
    // delta publications are refused typed, and a clean full publish
    // recovers the swap path.
    let mut fx = fixture();
    let service = service(&fx, 2);
    let epoch_before = service.epoch();
    {
        let _guard =
            fault::install(FaultPlan::new(5).with_probability(Site::Swap, 1.0, Fault::Panic));
        let err = service
            .publish(fx.engine.predictor(&fx.learned).expect("rebind predictor"))
            .expect_err("publish must fail under an injected swap panic");
        let DlearnError::WorkerPanicked { site, message } = err else {
            panic!("swap panic was not typed as WorkerPanicked");
        };
        assert_eq!(site, "swap");
        assert!(message.contains(fault::PANIC_MARKER), "{message}");
        assert!(fault::injected(Site::Swap) >= 1);
    }
    // The failed publication installed nothing: same epoch, same verdicts.
    assert_eq!(service.epoch(), epoch_before);
    assert!(service.is_swap_quarantined());
    let still_serving: Vec<bool> = service
        .predict_batch(&fx.trace)
        .iter()
        .map(|r| r.as_ref().expect("post-panic serve").covered)
        .collect();
    assert_eq!(
        still_serving, fx.baseline,
        "old epoch no longer serves the committed verdicts after a swap panic"
    );

    // Selective delta publication is refused while quarantined — even a
    // perfectly chained one — and leaves the epoch untouched.
    let tx = dlearn::relstore::DeltaTx::new().insert(
        dlearn::relstore::RelId::intern("imdb_movies"),
        dlearn::relstore::tuple(vec![
            dlearn::relstore::Value::int(990_202),
            dlearn::relstore::Value::str("Quarantine Drill"),
            dlearn::relstore::Value::int(2022),
        ]),
    );
    let report = fx.engine.apply_delta(&tx).expect("engine delta");
    let relearned = fx.engine.learn(Strategy::DLearn).expect("post-delta learn");
    let err = service
        .apply_delta(
            fx.engine.predictor(&relearned).expect("rebind predictor"),
            &report,
        )
        .expect_err("quarantined swap path accepted a delta publication");
    assert!(
        matches!(err, DlearnError::SwapQuarantined),
        "wrong error for a quarantined delta publication: {err:?}"
    );
    assert_eq!(service.epoch(), epoch_before);

    // Recovery: a clean full publish installs a fresh epoch, lifts the
    // quarantine, and the service serves the post-delta truth.
    let recovered = service
        .publish(fx.engine.predictor(&relearned).expect("rebind predictor"))
        .expect("recovery publish");
    assert!(recovered > epoch_before);
    assert!(!service.is_swap_quarantined());
    let predictor = fx.engine.predictor(&relearned).expect("bind predictor");
    let post_delta: Vec<bool> = fx
        .trace
        .iter()
        .map(|e| predictor.predict(e).expect("predict"))
        .collect();
    let served: Vec<bool> = service
        .predict_batch(&fx.trace)
        .iter()
        .map(|r| r.as_ref().expect("post-recovery serve").covered)
        .collect();
    assert_eq!(served, post_delta);
    let metrics = service.metrics();
    assert_eq!(metrics.swaps, 1, "{metrics:?}");
    assert!(metrics.worker_panics >= 1, "{metrics:?}");
}
