//! The serving tier's functional contract (no fault injection — see
//! `tests/service_robustness.rs` for the injected-failure suite):
//!
//! * **Cache-on/off verdict parity** — grounding is a pure function of the
//!   tuple, so serving through the ground-example cache must be
//!   bit-identical to serving without it, and to a sequential
//!   `Predictor::predict` loop, across 1/2/8 worker threads, cold and warm.
//! * **Deadlines** — a zero deadline fails every example with a typed
//!   `DeadlineExceeded`, the batch still completes, and nothing hangs.
//! * **Degradation accounting** — a zeroed subsumption budget turns silent
//!   "no"s into counted exhausted searches on the verdict and in metrics.
//! * **Per-example errors** — a wrong-arity tuple fails alone; its
//!   neighbors serve normally.

use std::time::Duration;

use dlearn::core::{
    Budget, DlearnError, Engine, LearnerConfig, Predictor, PredictorService, ServiceConfig,
    Strategy,
};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::relstore::{tuple, Tuple, Value};

fn config(coverage_threads: usize) -> LearnerConfig {
    LearnerConfig {
        coverage_threads,
        seed: 7,
        ..LearnerConfig::fast().with_iterations(4)
    }
}

fn serving_fixture() -> (Engine, dlearn::core::Learned, Vec<Tuple>) {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let engine = Engine::prepare(dataset.task.clone(), config(1)).expect("valid task");
    let learned = engine.learn(Strategy::DLearn).expect("learn");
    // A serving-style trace with duplicates so the dedup and cache paths
    // both see traffic.
    let trace: Vec<Tuple> = (0..3)
        .flat_map(|_| {
            dataset
                .task
                .positives
                .iter()
                .chain(dataset.task.negatives.iter())
                .cloned()
        })
        .collect();
    (engine, learned, trace)
}

fn predictor(engine: &Engine, learned: &dlearn::core::Learned) -> Predictor {
    engine.predictor(learned).expect("bind predictor")
}

#[test]
fn cache_on_and_off_verdicts_match_the_predictor_at_any_thread_count() {
    let (engine, learned, trace) = serving_fixture();
    let baseline: Vec<bool> = {
        let p = predictor(&engine, &learned);
        trace
            .iter()
            .map(|e| p.predict(e).expect("predict"))
            .collect()
    };
    assert!(
        baseline.iter().any(|&b| b) && baseline.iter().any(|&b| !b),
        "trace verdicts are uniform; the parity test is vacuous"
    );
    for workers in [1usize, 2, 8] {
        for cache_capacity in [0usize, 4096] {
            let service = PredictorService::new(
                predictor(&engine, &learned),
                ServiceConfig {
                    cache_capacity,
                    worker_threads: workers,
                    ..ServiceConfig::default()
                },
            );
            for pass in ["cold", "warm"] {
                let results = service.predict_batch(&trace);
                let verdicts: Vec<bool> = results
                    .iter()
                    .map(|r| r.as_ref().expect("serve").covered)
                    .collect();
                assert_eq!(
                    baseline, verdicts,
                    "workers={workers}, cache={cache_capacity}, {pass} pass diverged"
                );
                assert!(
                    results.iter().all(|r| !r.as_ref().unwrap().is_degraded()),
                    "unbudgeted serving must not degrade"
                );
            }
            let metrics = service.metrics();
            if cache_capacity > 0 {
                assert!(metrics.cache_hits > 0, "warm pass produced no cache hits");
            } else {
                assert_eq!(metrics.cache_hits, 0, "disabled cache reported hits");
            }
        }
    }
}

#[test]
fn tiny_cache_evicts_and_counts() {
    let (engine, learned, trace) = serving_fixture();
    let distinct = {
        let mut seen = std::collections::HashSet::new();
        trace.iter().filter(|t| seen.insert(*t)).count()
    };
    let service = PredictorService::new(
        predictor(&engine, &learned),
        ServiceConfig {
            cache_capacity: 2,
            cache_shards: 1,
            worker_threads: 1,
            ..ServiceConfig::default()
        },
    );
    // Two passes over a trace with far more distinct tuples than capacity.
    let first = service.predict_batch(&trace);
    let second = service.predict_batch(&trace);
    assert!(first.iter().chain(&second).all(|r| r.is_ok()));
    let metrics = service.metrics();
    assert!(distinct > 2, "fixture too small to exercise eviction");
    assert!(metrics.cache_evictions > 0, "{metrics:?}");
    assert_eq!(
        metrics.served,
        2 * distinct as u64,
        "each distinct tuple serves once per batch: {metrics:?}"
    );
    // Verdicts are still correct under heavy eviction.
    let baseline = predictor(&engine, &learned)
        .predict_batch(&trace)
        .expect("predict");
    let verdicts: Vec<bool> = second.iter().map(|r| r.as_ref().unwrap().covered).collect();
    assert_eq!(baseline, verdicts);
}

#[test]
fn zero_deadline_fails_every_example_without_hanging_the_batch() {
    let (engine, learned, trace) = serving_fixture();
    let service = PredictorService::new(predictor(&engine, &learned), ServiceConfig::default());
    let start = std::time::Instant::now();
    let results =
        service.predict_batch_with(&trace, &Budget::unlimited().with_deadline(Duration::ZERO));
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "zero-deadline batch took {:?}",
        start.elapsed()
    );
    assert_eq!(results.len(), trace.len());
    for r in &results {
        assert!(
            matches!(r, Err(DlearnError::DeadlineExceeded { budget_ms: 0 })),
            "{r:?}"
        );
    }
    let metrics = service.metrics();
    assert!(metrics.deadline_exceeded > 0, "{metrics:?}");
    assert_eq!(metrics.served, 0, "{metrics:?}");
    // The failed groundings were never cached; a normal pass still works.
    let ok = service.predict_batch(&trace);
    assert!(ok.iter().all(|r| r.is_ok()));
}

#[test]
fn zeroed_subsumption_budget_degrades_observably_instead_of_silently() {
    let (engine, learned, trace) = serving_fixture();
    let service = PredictorService::new(predictor(&engine, &learned), ServiceConfig::default());
    let results =
        service.predict_batch_with(&trace, &Budget::unlimited().with_max_subsumption_steps(0));
    // Every search that actually enters the subsumption backtracker exhausts
    // immediately: no verdict can be "covered", and the exhaustion shows up
    // on the affected verdicts. (Examples rejected by the pre-search filters
    // are conclusive "no"s without a search, so not every verdict degrades.)
    for r in &results {
        let v = r.as_ref().expect("serve");
        assert!(!v.covered, "a zero-step search cannot prove coverage");
    }
    assert!(
        results
            .iter()
            .any(|r| r.as_ref().expect("serve").is_degraded()),
        "no verdict was flagged degraded under a zero step budget"
    );
    let metrics = service.metrics();
    assert!(metrics.budget_exhausted_searches > 0, "{metrics:?}");
    assert!(metrics.degraded_verdicts > 0, "{metrics:?}");
    // An unbudgeted pass over the same service is unaffected (the degraded
    // pass cached only fully-successful serves, which these were — the
    // ground example is sound either way).
    let baseline = predictor(&engine, &learned)
        .predict_batch(&trace)
        .expect("predict");
    let verdicts: Vec<bool> = service
        .predict_batch(&trace)
        .iter()
        .map(|r| r.as_ref().expect("serve").covered)
        .collect();
    assert_eq!(baseline, verdicts);
}

#[test]
fn wrong_arity_examples_fail_alone_and_are_counted() {
    let (engine, learned, trace) = serving_fixture();
    let service = PredictorService::new(predictor(&engine, &learned), ServiceConfig::default());
    let mut batch = trace.clone();
    batch.insert(2, tuple(vec![Value::int(1), Value::int(2)]));
    let results = service.predict_batch(&batch);
    assert_eq!(results.len(), batch.len());
    assert!(
        matches!(
            &results[2],
            Err(DlearnError::PredictArity {
                expected: 1,
                actual: 2,
                index: 2
            })
        ),
        "{:?}",
        results[2]
    );
    let baseline = predictor(&engine, &learned)
        .predict_batch(&trace)
        .expect("predict");
    let rest: Vec<bool> = results
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != 2)
        .map(|(_, r)| r.as_ref().expect("serve").covered)
        .collect();
    assert_eq!(baseline, rest, "neighbors of the rejected tuple diverged");
    assert_eq!(service.metrics().rejected_inputs, 1);
}

#[test]
fn service_is_send_and_sync_and_shareable_across_threads() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PredictorService>();

    // Concurrent batches through one shared service agree with the
    // sequential baseline.
    let (engine, learned, trace) = serving_fixture();
    let baseline = predictor(&engine, &learned)
        .predict_batch(&trace)
        .expect("predict");
    let service = PredictorService::new(predictor(&engine, &learned), ServiceConfig::default());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let service = &service;
                let trace = &trace;
                scope.spawn(move || {
                    service
                        .predict_batch(trace)
                        .iter()
                        .map(|r| r.as_ref().expect("serve").covered)
                        .collect::<Vec<bool>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(baseline, h.join().expect("no panics"));
        }
    });
}
