//! The serving tier's functional contract (no fault injection — see
//! `tests/service_robustness.rs` for the injected-failure suite):
//!
//! * **Cache-on/off verdict parity** — grounding is a pure function of the
//!   tuple, so serving through the ground-example cache must be
//!   bit-identical to serving without it, and to a sequential
//!   `Predictor::predict` loop, across 1/2/8 worker threads, cold and warm.
//! * **Deadlines** — a zero deadline fails every example with a typed
//!   `DeadlineExceeded`, the batch still completes, and nothing hangs.
//! * **Degradation accounting** — a zeroed subsumption budget turns silent
//!   "no"s into counted exhausted searches on the verdict and in metrics.
//! * **Per-example errors** — a wrong-arity tuple fails alone; its
//!   neighbors serve normally.

use std::time::Duration;

use dlearn::core::{
    Budget, DlearnError, Engine, LearnerConfig, Predictor, PredictorService, ServiceConfig,
    Strategy,
};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::relstore::{tuple, Tuple, Value};

fn config(coverage_threads: usize) -> LearnerConfig {
    LearnerConfig {
        coverage_threads,
        seed: 7,
        ..LearnerConfig::fast().with_iterations(4)
    }
}

fn serving_fixture() -> (Engine, dlearn::core::Learned, Vec<Tuple>) {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let engine = Engine::prepare(dataset.task.clone(), config(1)).expect("valid task");
    let learned = engine.learn(Strategy::DLearn).expect("learn");
    // A serving-style trace with duplicates so the dedup and cache paths
    // both see traffic.
    let trace: Vec<Tuple> = (0..3)
        .flat_map(|_| {
            dataset
                .task
                .positives
                .iter()
                .chain(dataset.task.negatives.iter())
                .cloned()
        })
        .collect();
    (engine, learned, trace)
}

fn predictor(engine: &Engine, learned: &dlearn::core::Learned) -> Predictor {
    engine.predictor(learned).expect("bind predictor")
}

#[test]
fn cache_on_and_off_verdicts_match_the_predictor_at_any_thread_count() {
    let (engine, learned, trace) = serving_fixture();
    let baseline: Vec<bool> = {
        let p = predictor(&engine, &learned);
        trace
            .iter()
            .map(|e| p.predict(e).expect("predict"))
            .collect()
    };
    assert!(
        baseline.iter().any(|&b| b) && baseline.iter().any(|&b| !b),
        "trace verdicts are uniform; the parity test is vacuous"
    );
    for workers in [1usize, 2, 8] {
        for cache_capacity in [0usize, 4096] {
            let service = PredictorService::new(
                predictor(&engine, &learned),
                ServiceConfig {
                    cache_capacity,
                    worker_threads: workers,
                    ..ServiceConfig::default()
                },
            );
            for pass in ["cold", "warm"] {
                let results = service.predict_batch(&trace);
                let verdicts: Vec<bool> = results
                    .iter()
                    .map(|r| r.as_ref().expect("serve").covered)
                    .collect();
                assert_eq!(
                    baseline, verdicts,
                    "workers={workers}, cache={cache_capacity}, {pass} pass diverged"
                );
                assert!(
                    results.iter().all(|r| !r.as_ref().unwrap().is_degraded()),
                    "unbudgeted serving must not degrade"
                );
            }
            let metrics = service.metrics();
            if cache_capacity > 0 {
                assert!(metrics.cache_hits > 0, "warm pass produced no cache hits");
            } else {
                assert_eq!(metrics.cache_hits, 0, "disabled cache reported hits");
            }
        }
    }
}

#[test]
fn tiny_cache_evicts_and_counts() {
    let (engine, learned, trace) = serving_fixture();
    let distinct = {
        let mut seen = std::collections::HashSet::new();
        trace.iter().filter(|t| seen.insert(*t)).count()
    };
    let service = PredictorService::new(
        predictor(&engine, &learned),
        ServiceConfig {
            cache_capacity: 2,
            cache_shards: 1,
            worker_threads: 1,
            ..ServiceConfig::default()
        },
    );
    // Two passes over a trace with far more distinct tuples than capacity.
    let first = service.predict_batch(&trace);
    let second = service.predict_batch(&trace);
    assert!(first.iter().chain(&second).all(|r| r.is_ok()));
    let metrics = service.metrics();
    assert!(distinct > 2, "fixture too small to exercise eviction");
    assert!(metrics.cache_evictions > 0, "{metrics:?}");
    assert_eq!(
        metrics.served,
        2 * distinct as u64,
        "each distinct tuple serves once per batch: {metrics:?}"
    );
    // Verdicts are still correct under heavy eviction.
    let baseline = predictor(&engine, &learned)
        .predict_batch(&trace)
        .expect("predict");
    let verdicts: Vec<bool> = second.iter().map(|r| r.as_ref().unwrap().covered).collect();
    assert_eq!(baseline, verdicts);
}

#[test]
fn zero_deadline_fails_every_example_without_hanging_the_batch() {
    let (engine, learned, trace) = serving_fixture();
    let service = PredictorService::new(predictor(&engine, &learned), ServiceConfig::default());
    let start = std::time::Instant::now();
    let results =
        service.predict_batch_with(&trace, &Budget::unlimited().with_deadline(Duration::ZERO));
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "zero-deadline batch took {:?}",
        start.elapsed()
    );
    assert_eq!(results.len(), trace.len());
    for r in &results {
        assert!(
            matches!(r, Err(DlearnError::DeadlineExceeded { budget_ms: 0 })),
            "{r:?}"
        );
    }
    let metrics = service.metrics();
    assert!(metrics.deadline_exceeded > 0, "{metrics:?}");
    assert_eq!(metrics.served, 0, "{metrics:?}");
    // The failed groundings were never cached; a normal pass still works.
    let ok = service.predict_batch(&trace);
    assert!(ok.iter().all(|r| r.is_ok()));
}

#[test]
fn zeroed_subsumption_budget_degrades_observably_instead_of_silently() {
    let (engine, learned, trace) = serving_fixture();
    let service = PredictorService::new(predictor(&engine, &learned), ServiceConfig::default());
    let results =
        service.predict_batch_with(&trace, &Budget::unlimited().with_max_subsumption_steps(0));
    // Every search that actually enters the subsumption backtracker exhausts
    // immediately: no verdict can be "covered", and the exhaustion shows up
    // on the affected verdicts. (Examples rejected by the pre-search filters
    // are conclusive "no"s without a search, so not every verdict degrades.)
    for r in &results {
        let v = r.as_ref().expect("serve");
        assert!(!v.covered, "a zero-step search cannot prove coverage");
    }
    assert!(
        results
            .iter()
            .any(|r| r.as_ref().expect("serve").is_degraded()),
        "no verdict was flagged degraded under a zero step budget"
    );
    let metrics = service.metrics();
    assert!(metrics.budget_exhausted_searches > 0, "{metrics:?}");
    assert!(metrics.degraded_verdicts > 0, "{metrics:?}");
    // An unbudgeted pass over the same service is unaffected (the degraded
    // pass cached only fully-successful serves, which these were — the
    // ground example is sound either way).
    let baseline = predictor(&engine, &learned)
        .predict_batch(&trace)
        .expect("predict");
    let verdicts: Vec<bool> = service
        .predict_batch(&trace)
        .iter()
        .map(|r| r.as_ref().expect("serve").covered)
        .collect();
    assert_eq!(baseline, verdicts);
}

#[test]
fn wrong_arity_examples_fail_alone_and_are_counted() {
    let (engine, learned, trace) = serving_fixture();
    let service = PredictorService::new(predictor(&engine, &learned), ServiceConfig::default());
    let mut batch = trace.clone();
    batch.insert(2, tuple(vec![Value::int(1), Value::int(2)]));
    let results = service.predict_batch(&batch);
    assert_eq!(results.len(), batch.len());
    assert!(
        matches!(
            &results[2],
            Err(DlearnError::PredictArity {
                expected: 1,
                actual: 2,
                index: 2
            })
        ),
        "{:?}",
        results[2]
    );
    let baseline = predictor(&engine, &learned)
        .predict_batch(&trace)
        .expect("predict");
    let rest: Vec<bool> = results
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != 2)
        .map(|(_, r)| r.as_ref().expect("serve").covered)
        .collect();
    assert_eq!(baseline, rest, "neighbors of the rejected tuple diverged");
    assert_eq!(service.metrics().rejected_inputs, 1);
}

#[test]
fn service_is_send_and_sync_and_shareable_across_threads() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PredictorService>();

    // Concurrent batches through one shared service agree with the
    // sequential baseline.
    let (engine, learned, trace) = serving_fixture();
    let baseline = predictor(&engine, &learned)
        .predict_batch(&trace)
        .expect("predict");
    let service = PredictorService::new(predictor(&engine, &learned), ServiceConfig::default());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let service = &service;
                let trace = &trace;
                scope.spawn(move || {
                    service
                        .predict_batch(trace)
                        .iter()
                        .map(|r| r.as_ref().expect("serve").covered)
                        .collect::<Vec<bool>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(baseline, h.join().expect("no panics"));
        }
    });
}

#[test]
fn coalesced_zero_deadline_and_zero_steps_degrade_only_their_own_requests() {
    // Budget edge cases through the coalescing front-end: requests with a
    // zero deadline fail typed, requests with a zeroed subsumption budget
    // degrade observably, and unlimited requests riding the *same* drained
    // queue are completely unaffected.
    use dlearn::core::{CoalesceConfig, Coalescer};
    use std::sync::Arc;

    let (engine, learned, trace) = serving_fixture();
    let baseline: Vec<bool> = {
        let p = predictor(&engine, &learned);
        trace
            .iter()
            .map(|e| p.predict(e).expect("predict"))
            .collect()
    };
    let service = Arc::new(PredictorService::new(
        predictor(&engine, &learned),
        ServiceConfig::default(),
    ));
    let coalescer = Coalescer::new(service.clone(), CoalesceConfig::default());

    // One mixed submission: per-request budgets interleaved over the trace.
    let budgets = [
        Budget::unlimited().with_deadline(Duration::ZERO),
        Budget::unlimited().with_max_subsumption_steps(0),
        Budget::unlimited(),
    ];
    let items: Vec<(Tuple, Budget)> = trace
        .iter()
        .enumerate()
        .map(|(i, t)| (t.clone(), budgets[i % budgets.len()]))
        .collect();
    let results = coalescer.submit_many_with(&items);
    assert_eq!(results.len(), items.len());
    for (i, r) in results.iter().enumerate() {
        match i % budgets.len() {
            0 => assert!(
                matches!(r, Err(DlearnError::DeadlineExceeded { budget_ms: 0 })),
                "zero-deadline request {i} did not time out: {r:?}"
            ),
            1 => {
                let v = r.as_ref().expect("zero-step serve");
                assert!(!v.covered, "a zero-step search cannot prove coverage");
            }
            _ => {
                let v = r.as_ref().expect("unlimited serve");
                assert_eq!(
                    v.covered, baseline[i],
                    "unlimited request {i} was degraded by its batch neighbors"
                );
                assert!(!v.is_degraded());
            }
        }
    }
    // The zero-step third must have degraded at least one verdict, and the
    // mixed budgets genuinely shared drained batches (the coalescer split
    // them into per-budget service calls, not per-request ones).
    assert!(
        results
            .iter()
            .skip(1)
            .step_by(budgets.len())
            .any(|r| r.as_ref().expect("zero-step serve").is_degraded()),
        "no zero-step request was flagged degraded"
    );
    let metrics = coalescer.metrics();
    assert!(metrics.largest_batch >= 2, "{metrics:?}");
    assert_eq!(metrics.submitted, items.len() as u64, "{metrics:?}");
    let service_metrics = service.metrics();
    assert!(service_metrics.deadline_exceeded > 0, "{service_metrics:?}");
    assert!(
        service_metrics.budget_exhausted_searches > 0,
        "{service_metrics:?}"
    );

    // The edge-case batch never poisoned anything: a follow-up unlimited
    // submission over the same tuples matches the sequential baseline.
    let clean: Vec<(Tuple, Budget)> = trace
        .iter()
        .map(|t| (t.clone(), Budget::unlimited()))
        .collect();
    let verdicts: Vec<bool> = coalescer
        .submit_many_with(&clean)
        .iter()
        .map(|r| r.as_ref().expect("clean serve").covered)
        .collect();
    assert_eq!(verdicts, baseline);
}

#[test]
fn dropped_coalescer_serves_its_queue_and_then_refuses_typed() {
    use dlearn::core::{CoalesceConfig, Coalescer, DlearnError as E};
    use std::sync::Arc;

    let (engine, learned, trace) = serving_fixture();
    let service = Arc::new(PredictorService::new(
        predictor(&engine, &learned),
        ServiceConfig::default(),
    ));
    let coalescer = Coalescer::new(service.clone(), CoalesceConfig::default());
    // In-flight work completes through the drop (the batcher drains the
    // queue before exiting)...
    let items: Vec<(Tuple, Budget)> = trace
        .iter()
        .take(4)
        .map(|t| (t.clone(), Budget::unlimited()))
        .collect();
    let results = coalescer.submit_many_with(&items);
    assert!(results.iter().all(|r| r.is_ok()));
    drop(coalescer);
    // ...and a fresh coalescer over the same service still works (the
    // service outlives its front-ends).
    let again = Coalescer::new(service.clone(), CoalesceConfig::default());
    let r = again.submit(trace[0].clone());
    assert!(r.is_ok(), "{r:?}");
    // A closed queue refuses typed rather than hanging: close the inner
    // queue by dropping while a submission from another thread may still be
    // in flight — the error surface is `CoalescerClosed`.
    let err = E::CoalescerClosed;
    assert!(err.to_string().contains("coalescer"));
}
