//! End-to-end differential test on the movie workload: every coverage
//! decision the learner makes — candidate clause × ground bottom clause,
//! across direct and repaired-clause subsumption — must be identical
//! between the interned, adaptively-ordered engine and the string-keyed
//! reference matcher, and every witness substitution the engine can be
//! asked for must *verify* as a real embedding (the θ-verification
//! contract; see `dlearn_test_support`).
//!
//! Brute-force enumeration is not run here — movie bottom clauses are far
//! beyond its feasible size; the enumeration oracle pins the semantics on
//! the randomized suite in `crates/logic/tests/differential.rs`, while this
//! test pins the two production-shaped implementations against each other
//! on realistic clauses.

use rand::SeedableRng;

use dlearn::core::{
    BottomClauseBuilder, CoverageEngine, Engine, LearnerConfig, PreparedClause, Strategy,
};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::logic::{
    subsumes_numbered, subsumes_numbered_decision, Clause, GroundClause, SubsumptionConfig,
};
use dlearn_constraints::MdCatalog;
use dlearn_similarity::{IndexConfig, SimilarityOperator};
use dlearn_test_support::{string_reference, OracleGround, StringGround};

fn config() -> LearnerConfig {
    LearnerConfig {
        coverage_threads: 1,
        ..LearnerConfig::fast().with_iterations(4)
    }
}

/// Coverage decision through the reference matcher, replicating
/// `CoverageEngine::covers_positive` / `covers_negative` over pre-expanded
/// repaired clauses.
fn reference_covers(
    prepared: &PreparedClause,
    ground: &Clause,
    repaired_grounds: &[Clause],
    positive_semantics: bool,
) -> bool {
    let direct = StringGround::new(ground);
    if string_reference::subsumes(&prepared.clause, &direct) {
        return true;
    }
    if prepared.repaired.is_empty() {
        return false;
    }
    let repaired_refs: Vec<StringGround> = repaired_grounds.iter().map(StringGround::new).collect();
    let one = |cr: &Clause| {
        repaired_refs
            .iter()
            .any(|gr| string_reference::subsumes(cr, gr))
    };
    if positive_semantics {
        prepared.repaired.iter().all(one)
    } else {
        prepared.repaired.iter().any(one)
    }
}

/// Flat-substitution coverage decision from prepared clauses (mirrors the
/// engine's covers_* methods exactly: prepared-once variable numbering and
/// the decision-only subsumption entry point, so both paths see exactly the
/// same clause inputs).
fn interned_covers(
    prepared: &PreparedClause,
    ground: &GroundClause,
    repaired_grounds: &[GroundClause],
    positive_semantics: bool,
    sub: &SubsumptionConfig,
) -> bool {
    if subsumes_numbered_decision(prepared.numbered(), ground, sub).is_yes() {
        return true;
    }
    if prepared.repaired.is_empty() {
        return false;
    }
    let one = |cr: &dlearn::logic::NumberedClause| {
        repaired_grounds
            .iter()
            .any(|gr| subsumes_numbered_decision(cr, gr, sub).is_yes())
    };
    if positive_semantics {
        prepared.numbered_repaired().iter().all(one)
    } else {
        prepared.numbered_repaired().iter().any(one)
    }
}

#[test]
fn movie_task_coverage_decisions_match_string_reference() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let task = &dataset.task;
    let config = config();

    // Candidate clauses: the actually learned definition plus the raw bottom
    // clauses of a few positive examples (the clauses the covering loop
    // scores most often).
    let session = Engine::prepare(task.clone(), config.clone()).expect("valid task");
    let model = session.learn(Strategy::DLearn).expect("learn");
    let index_config = IndexConfig {
        top_k: config.km,
        operator: SimilarityOperator::with_threshold(config.similarity_threshold),
        ..IndexConfig::default()
    };
    let catalog = MdCatalog::build(
        &task.mds,
        &dlearn::core::augment_with_target(task),
        &index_config,
    );
    let builder = BottomClauseBuilder::new(task, &catalog, &config);
    let engine = CoverageEngine::build(task, &builder, &config);

    let mut candidates: Vec<PreparedClause> = model
        .clauses()
        .iter()
        .map(|c| PreparedClause::prepare(c.clone(), &config))
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for example in task.positives.iter().take(3) {
        let bottom = builder.build(example, &mut rng);
        candidates.push(PreparedClause::prepare(bottom, &config));
    }
    assert!(!candidates.is_empty(), "no candidate clauses to compare");

    // Ground sides: rebuild the raw clauses the engine indexed, so the
    // reference sees the identical inputs.
    let sub = SubsumptionConfig {
        max_steps: usize::MAX,
        ..config.subsumption
    };
    let static_sub = SubsumptionConfig {
        adaptive_ordering: false,
        ..sub
    };
    let mut compared = 0usize;
    let mut covered = 0usize;
    let mut verified_witnesses = 0usize;
    for (examples, positive_semantics) in [(engine.positives(), true), (engine.negatives(), false)]
    {
        for ge in examples {
            let ground_clause = clause_of(&ge.ground);
            let repaired_clauses: Vec<Clause> = ge.repaired.iter().map(clause_of).collect();
            let oracle = OracleGround::new(&ground_clause);
            for prepared in &candidates {
                let new_decision =
                    interned_covers(prepared, &ge.ground, &ge.repaired, positive_semantics, &sub);
                let old_decision = reference_covers(
                    prepared,
                    &ground_clause,
                    &repaired_clauses,
                    positive_semantics,
                );
                assert_eq!(
                    new_decision, old_decision,
                    "coverage divergence for clause {} on example {}",
                    prepared.clause, ge.example
                );
                // Ordering must not change coverage decisions either.
                let static_decision = interned_covers(
                    prepared,
                    &ge.ground,
                    &ge.repaired,
                    positive_semantics,
                    &static_sub,
                );
                assert_eq!(
                    new_decision, static_decision,
                    "adaptive vs static coverage divergence for clause {} on example {}",
                    prepared.clause, ge.example
                );
                // θ-verification on the direct subsumption leg: whenever the
                // engine would return a witness, it must embed C into the
                // ground bottom clause.
                if let Some(theta) = subsumes_numbered(prepared.numbered(), &ge.ground, &sub) {
                    assert!(
                        oracle.verify_witness(&prepared.clause, &theta),
                        "unsound witness for clause {} on example {}",
                        prepared.clause,
                        ge.example
                    );
                    verified_witnesses += 1;
                }
                compared += 1;
                covered += new_decision as usize;
            }
        }
    }
    assert!(compared >= 24, "too few decisions compared: {compared}");
    assert!(covered > 0, "differential is vacuous: nothing was covered");
    assert!(
        covered < compared,
        "differential is vacuous: everything was covered"
    );
    assert!(
        verified_witnesses > 0,
        "θ-verification is vacuous: no direct witness was ever produced"
    );
}

/// Reconstruct the plain clause a `GroundClause` indexed (its public
/// accessors expose head, body and repair groups).
fn clause_of(g: &GroundClause) -> Clause {
    let mut c = Clause::with_body(g.head().clone(), g.body().to_vec());
    for r in g.repairs() {
        c.push_repair(r.clone());
    }
    c
}
