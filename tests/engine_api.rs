//! The fallible session API: typed errors on malformed tasks and
//! configurations (instead of panics deep inside bottom-clause
//! construction), and parity between the prepared-session path and the
//! legacy one-shot entry points.

use dlearn::core::{DlearnError, Engine, LearnerConfig, Strategy, TargetSpec};
use dlearn::datagen::citations::{generate_citation_dataset, CitationConfig};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::datagen::products::{generate_product_dataset, ProductConfig};
use dlearn::relstore::{tuple, StoreError, Value};
use dlearn_constraints::{Cfd, MatchingDependency};

fn fast() -> LearnerConfig {
    LearnerConfig {
        coverage_threads: 1,
        ..LearnerConfig::fast().with_iterations(4)
    }
}

#[test]
fn prepare_rejects_bad_example_arity_with_a_typed_error() {
    let mut task = generate_movie_dataset(&MovieConfig::tiny(), 42).task;
    task.positives
        .insert(1, tuple(vec![Value::int(5), Value::str("extra")]));
    let err = Engine::prepare(task, fast()).unwrap_err();
    match err {
        DlearnError::ExampleArity {
            expected,
            actual,
            index,
            positive,
        } => {
            assert_eq!((expected, actual), (1, 2));
            assert_eq!(index, 1);
            assert!(positive);
        }
        other => panic!("expected ExampleArity, got {other:?}"),
    }
}

#[test]
fn prepare_rejects_constraints_referencing_unknown_relations() {
    // An MD naming a relation that exists in neither the database nor the
    // target spec used to panic inside the similarity probe; now it is a
    // typed error naming the MD.
    let mut task = generate_movie_dataset(&MovieConfig::tiny(), 42).task;
    task.mds.push(MatchingDependency::simple(
        "ghost",
        "imdb_movies",
        "title",
        "no_such_relation",
        "title",
    ));
    let err = Engine::prepare(task, fast()).unwrap_err();
    let DlearnError::Store(store) = &err else {
        panic!("expected Store error, got {err:?}");
    };
    assert!(
        matches!(store, StoreError::InContext { context, .. } if context.contains("ghost")),
        "{err}"
    );
    assert!(err.to_string().contains("no_such_relation"), "{err}");

    // Same for a CFD over an unknown attribute...
    let mut task = generate_movie_dataset(&MovieConfig::tiny(), 42).task;
    task.cfds
        .push(Cfd::fd("bad_fd", "imdb_movies", vec!["id"], "no_such_attr"));
    let err = Engine::prepare(task, fast()).unwrap_err();
    assert!(err.to_string().contains("bad_fd"), "{err}");
    assert!(err.to_string().contains("no_such_attr"), "{err}");

    // ...and for a constant-attribute declaration on an unknown relation.
    let mut task = generate_movie_dataset(&MovieConfig::tiny(), 42).task;
    task.add_constant_attribute("no_such_relation", "genre");
    let err = Engine::prepare(task, fast()).unwrap_err();
    assert!(err.to_string().contains("no_such_relation"), "{err}");
}

#[test]
fn prepare_rejects_empty_positive_example_sets() {
    let base = generate_movie_dataset(&MovieConfig::tiny(), 42).task;
    let task = base.with_examples(Vec::new(), base.negatives.clone());
    let err = Engine::prepare(task, fast()).unwrap_err();
    assert!(matches!(err, DlearnError::EmptyPositives), "{err:?}");
}

#[test]
fn prepare_rejects_degenerate_configurations() {
    let task = generate_movie_dataset(&MovieConfig::tiny(), 42).task;
    let bad_threshold = LearnerConfig {
        similarity_threshold: 0.0,
        ..fast()
    };
    let err = Engine::prepare(task.clone(), bad_threshold).unwrap_err();
    assert!(
        matches!(
            err,
            DlearnError::InvalidConfig {
                field: "similarity_threshold",
                ..
            }
        ),
        "{err:?}"
    );
    let bad_iterations = LearnerConfig {
        iterations: 0,
        ..fast()
    };
    let err = Engine::prepare(task, bad_iterations).unwrap_err();
    assert!(
        matches!(
            err,
            DlearnError::InvalidConfig {
                field: "iterations",
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn target_side_mds_still_validate() {
    // The movie target has no stored relation; an MD whose left-hand side is
    // the target must validate against the TargetSpec's attributes.
    let db = dlearn::relstore::DatabaseBuilder::new()
        .relation(
            dlearn::relstore::RelationBuilder::new("movies")
                .int_attr("id")
                .str_attr("title")
                .build(),
        )
        .row("movies", vec![Value::int(1), Value::str("Superbad (2007)")])
        .build();
    let mut task = dlearn::core::LearningTask::new(
        db,
        TargetSpec::with_attributes("highGrossing", vec!["title"]),
    );
    task.mds.push(MatchingDependency::simple(
        "titles",
        "highGrossing",
        "title",
        "movies",
        "title",
    ));
    task.positives.push(tuple(vec![Value::str("Superbad")]));
    assert!(task.validate().is_ok());
    assert!(Engine::prepare(task.clone(), fast()).is_ok());

    // But an MD identifying a *missing* target attribute is rejected.
    task.mds[0] =
        MatchingDependency::simple("titles", "highGrossing", "revenue", "movies", "title");
    let err = Engine::prepare(task, fast()).unwrap_err();
    assert!(err.to_string().contains("revenue"), "{err}");
}

#[test]
#[allow(deprecated)]
fn engine_learn_matches_the_legacy_one_shot_path() {
    // The deprecated shims delegate to Engine; this pins them together so a
    // future engine change cannot silently fork the two paths.
    let datasets = [
        generate_movie_dataset(&MovieConfig::tiny(), 42),
        generate_movie_dataset(&MovieConfig::tiny().with_violation_rate(0.1), 7),
        generate_citation_dataset(&CitationConfig::tiny(), 3),
        generate_product_dataset(&ProductConfig::tiny(), 11),
    ];
    for dataset in &datasets {
        let engine = Engine::prepare(dataset.task.clone(), fast()).expect("valid task");
        let learned = engine.learn(Strategy::DLearn).expect("learn");
        let mut legacy = dlearn::core::DLearn::new(fast());
        let model = legacy.learn(&dataset.task);
        assert_eq!(
            model.definition(),
            learned.definition(),
            "{}: legacy path diverged from Engine::learn",
            dataset.name
        );
        // Predictions agree too — single, batched, and legacy predict_all.
        let predictor = engine.predictor(&learned).expect("bind predictor");
        let examples: Vec<_> = dataset
            .task
            .positives
            .iter()
            .chain(dataset.task.negatives.iter())
            .cloned()
            .collect();
        let batch = predictor.predict_batch(&examples).expect("predict");
        let legacy_all = model.predict_all(&examples);
        assert_eq!(batch, legacy_all, "{}", dataset.name);
        for (e, &verdict) in examples.iter().zip(&batch) {
            assert_eq!(
                predictor.predict(e).expect("predict"),
                verdict,
                "{}: single prediction diverged from batch",
                dataset.name
            );
            assert_eq!(model.predict(e), verdict, "{}", dataset.name);
        }
    }
}

#[test]
fn every_strategy_is_deterministic_across_engines() {
    // Two independently prepared engines over the same task must learn
    // bit-identical definitions for every strategy (no hidden session
    // state leaks into the result).
    let dataset = generate_movie_dataset(&MovieConfig::tiny().with_violation_rate(0.1), 19);
    let a = Engine::prepare(dataset.task.clone(), fast()).expect("valid task");
    let b = Engine::prepare(dataset.task.clone(), fast()).expect("valid task");
    for strategy in Strategy::all() {
        assert_eq!(
            a.learn(strategy).expect("learn").definition(),
            b.learn(strategy).expect("learn").definition(),
            "{} differs between two engines over the same task",
            strategy.name()
        );
    }
}
