//! Engine-level incremental-maintenance oracle: after **any** sequence of
//! streaming delta transactions, a session maintained through
//! [`Engine::apply_delta`] must be indistinguishable from a from-scratch
//! [`Engine::prepare`] over the identically mutated database.
//!
//! "Indistinguishable" is pinned structurally, not just behaviourally:
//!
//! * every maintained MD similarity index is `==` (entry for entry, score
//!   bits included) to the freshly built one;
//! * every ground bottom clause — its probe log and its indexed form — is
//!   bit-identical to the fresh grounding, whether it was re-ground or
//!   reused unchanged;
//! * the learned definition and batched predictor verdicts agree.
//!
//! The transactions come from the seeded [`tx_script`] generator (deletes
//! always name present tuples; inserts recombine and decorate live values so
//! similarity blocking is actually exercised), and the whole grid runs at
//! 1/2/8 coverage threads so incremental maintenance composes with the
//! parallel-determinism contract.

use dlearn::core::{Engine, LearnerConfig, Strategy};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::relstore::{tuple, RelId, Tuple, Value};
use dlearn_test_support::delta::{tx_script, TxScriptConfig};

fn config(seed: u64, coverage_threads: usize) -> LearnerConfig {
    LearnerConfig {
        coverage_threads,
        seed,
        ..LearnerConfig::fast().with_iterations(4)
    }
}

/// Relations the delta scripts mutate: both MD-indexed title columns plus a
/// join relation with no similarity index, so scripts mix index maintenance
/// with exact-probe invalidation.
fn delta_relations() -> [RelId; 3] {
    [
        RelId::intern("imdb_movies"),
        RelId::intern("omdb_movies"),
        RelId::intern("imdb_mov2genres"),
    ]
}

/// Structural equality of a maintained session against a fresh prepare.
fn assert_sessions_equal(incremental: &Engine, fresh: &Engine, ctx: &str) {
    let (ci, cf) = (incremental.catalog().indexes(), fresh.catalog().indexes());
    assert_eq!(ci.len(), cf.len(), "{ctx}: MD index count diverged");
    for (a, b) in ci.iter().zip(cf) {
        assert_eq!(
            a.index(),
            b.index(),
            "{ctx}: maintained similarity index at md_position {} diverged from fresh build",
            a.md_position
        );
    }
    let (gi, gf) = (incremental.coverage(), fresh.coverage());
    let sides = [
        ("positives", gi.positives(), gf.positives()),
        ("negatives", gi.negatives(), gf.negatives()),
    ];
    for (side, a, b) in sides {
        assert_eq!(a.len(), b.len(), "{ctx}: {side} count diverged");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.example, y.example, "{ctx}: {side}[{i}] example diverged");
            assert_eq!(
                x.probes, y.probes,
                "{ctx}: {side}[{i}] probe log diverged from fresh grounding"
            );
            // `GroundClause` has no `PartialEq`; its `Debug` form is a full
            // structural dump and both sides were built by (claimed-)
            // identical insertion sequences, so the digests must match.
            assert_eq!(
                format!("{:?}", x.ground),
                format!("{:?}", y.ground),
                "{ctx}: {side}[{i}] ground clause diverged from fresh grounding"
            );
            assert_eq!(
                x.repaired.len(),
                y.repaired.len(),
                "{ctx}: {side}[{i}] repaired-variant count diverged"
            );
        }
    }
}

#[test]
fn incremental_session_equals_fresh_prepare_after_every_transaction() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let relations = delta_relations();
    let mut reused = 0usize;
    let mut reground = 0usize;
    let mut match_lists_changed = 0usize;
    for threads in [1usize, 2, 8] {
        for seed in [7u64, 21] {
            let cfg = config(seed, threads);
            let mut engine = Engine::prepare(dataset.task.clone(), cfg.clone()).expect("prepare");
            let mut task = dataset.task.clone();
            let script = tx_script(&task.database, &relations, &TxScriptConfig::default(), seed);
            assert!(!script.is_empty(), "script generator produced no work");
            let last = script.len() - 1;
            for (step, tx) in script.iter().enumerate() {
                let report = engine.apply_delta(tx).expect("apply_delta");
                task.database.apply_delta(tx).expect("mirror apply");
                reused += report.grounding.positives_reused + report.grounding.negatives_reused;
                reground +=
                    report.grounding.positives_reground + report.grounding.negatives_reground;
                match_lists_changed += report.changed_match_lists();
                let fresh = Engine::prepare(task.clone(), cfg.clone()).expect("fresh prepare");
                let ctx = format!("threads {threads} seed {seed} step {step}");
                assert_sessions_equal(&engine, &fresh, &ctx);
                if step == last {
                    let inc_learned = engine.learn(Strategy::DLearn).expect("incremental learn");
                    let fresh_learned = fresh.learn(Strategy::DLearn).expect("fresh learn");
                    assert_eq!(
                        inc_learned.definition(),
                        fresh_learned.definition(),
                        "{ctx}: learned definitions diverged"
                    );
                    let trace: Vec<Tuple> = task
                        .positives
                        .iter()
                        .chain(task.negatives.iter())
                        .cloned()
                        .collect();
                    let inc_verdicts = engine
                        .predictor(&inc_learned)
                        .expect("incremental predictor")
                        .predict_batch(&trace)
                        .expect("incremental predict");
                    let fresh_verdicts = fresh
                        .predictor(&fresh_learned)
                        .expect("fresh predictor")
                        .predict_batch(&trace)
                        .expect("fresh predict");
                    assert_eq!(inc_verdicts, fresh_verdicts, "{ctx}: verdicts diverged");
                }
            }
        }
    }
    // Vacuity guards: across the grid the scripts must have exercised both
    // maintenance paths — clauses rebuilt because a probe they executed
    // changed, clauses reused untouched, and similarity match lists patched.
    assert!(reground > 0, "no ground clause was ever re-ground");
    assert!(reused > 0, "no ground clause was ever reused");
    assert!(
        match_lists_changed > 0,
        "no similarity match list ever changed"
    );
}

#[test]
fn delta_report_accounts_for_every_training_example() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let mut engine = Engine::prepare(dataset.task.clone(), config(7, 1)).expect("prepare");
    let positives = engine.coverage().positives().len();
    let negatives = engine.coverage().negatives().len();
    let script = tx_script(
        &dataset.task.database,
        &delta_relations(),
        &TxScriptConfig::default(),
        7,
    );
    for tx in &script {
        let report = engine.apply_delta(tx).expect("apply_delta");
        let g = report.grounding;
        assert_eq!(
            g.positives_reground + g.positives_reused,
            positives,
            "positives must be either re-ground or reused"
        );
        assert_eq!(
            g.negatives_reground + g.negatives_reused,
            negatives,
            "negatives must be either re-ground or reused"
        );
        assert_eq!(report.mds_maintained, engine.catalog().indexes().len());
    }
}

#[test]
fn novel_title_insert_patches_the_similarity_index() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let mut engine = Engine::prepare(dataset.task.clone(), config(7, 1)).expect("prepare");
    // A brand-new id with a title close to the live vocabulary: the title
    // value newly appears in the indexed column, so the maintained index
    // must run a bounded re-scan for it and report the changed match list.
    let tx = dlearn::relstore::DeltaTx::new().insert(
        RelId::intern("imdb_movies"),
        tuple(vec![
            Value::int(990_001),
            Value::str("The Matrix Resurrections: Delta Cut"),
            Value::int(2021),
        ]),
    );
    let report = engine.apply_delta(&tx).expect("apply_delta");
    assert!(
        report.rescored_lefts + report.patched_entries > 0,
        "a novel indexed title must trigger incremental index work"
    );
    assert!(
        report.changed_match_lists() > 0,
        "a novel indexed title must change at least its own match list"
    );
    // And the maintained session must still equal a fresh prepare.
    let mut task = dataset.task.clone();
    task.database.apply_delta(&tx).expect("mirror apply");
    let fresh = Engine::prepare(task, config(7, 1)).expect("fresh prepare");
    assert_sessions_equal(&engine, &fresh, "novel title insert");
}
