//! Determinism of the parallel covering loop: the generalization-scoring
//! fan-out reduces with "best score, ties broken by sample order", so the
//! learned definition must be bit-identical at every thread count — and the
//! parallel coverage masks must equal the serial ones clause for clause.
//!
//! The same holds across the subsumption matcher's literal-ordering modes:
//! adaptive (most-constrained-first) ordering only changes how the search
//! walks the space, never which coverage decisions come out while searches
//! stay within the step budget (true on this workload by a wide margin),
//! so switching it on or off must not move a single literal of the learned
//! definition at any thread count.
//!
//! Similarity-index construction carries the same contract: left-value
//! chunks merge in left order, so the built [`SimilarityIndex`] — and every
//! definition learned through it — is bit-identical across index-build
//! thread counts.
//!
//! Serving carries it too: [`Predictor::predict_batch`] grounds each
//! distinct tuple with an RNG derived from the session seed alone and fans
//! out through the order-preserving chunked map, so batch results are
//! bit-identical across 1/2/8 coverage threads and equal to a sequential
//! `predict` loop.
//!
//! The FOIL and TILDE extension learners make the same promise over their
//! own candidate-scoring fan-outs (see
//! `extension_learners_are_bit_identical_across_thread_counts`).

use dlearn::core::{Engine, LearnerConfig, Predictor, Strategy};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::logic::Definition;
use dlearn::relstore::Tuple;
use dlearn::similarity::{IndexConfig, SimilarityIndex, SimilarityOperator};
use dlearn_test_support::vocab::{dirty_vocabulary, VocabConfig};

fn config(seed: u64, generalization_threads: usize, coverage_threads: usize) -> LearnerConfig {
    LearnerConfig {
        generalization_threads,
        coverage_threads,
        seed,
        ..LearnerConfig::fast().with_iterations(4)
    }
}

fn learn_with(
    task: &dlearn::core::LearningTask,
    config: LearnerConfig,
    strategy: Strategy,
) -> Definition {
    let engine = Engine::prepare(task.clone(), config).expect("valid task");
    engine.learn(strategy).expect("learn").definition().clone()
}

fn learn(task: &dlearn::core::LearningTask, config: LearnerConfig) -> Definition {
    learn_with(task, config, Strategy::DLearn)
}

#[test]
fn parallel_and_serial_generalization_learn_identical_definitions() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    for seed in [7u64, 21, 42] {
        let serial = learn(&dataset.task, config(seed, 1, 1));
        let parallel = learn(&dataset.task, config(seed, 4, 1));
        assert_eq!(
            serial, parallel,
            "seed {seed}: parallel generalization diverged from serial"
        );
    }
}

#[test]
fn adaptive_ordering_learns_bit_identical_definitions_at_any_thread_count() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let baseline = learn(&dataset.task, config(7, 1, 1));
    for threads in [1usize, 2, 8] {
        for adaptive in [true, false] {
            let cfg = config(7, threads, threads).with_adaptive_ordering(adaptive);
            let definition = learn(&dataset.task, cfg);
            assert_eq!(
                baseline, definition,
                "adaptive={adaptive}, threads={threads}: learned definition diverged"
            );
        }
    }
}

#[test]
fn index_build_threads_produce_bit_identical_indexes() {
    // The index itself, on realistic dirty vocabularies: 1/2/8 construction
    // threads × 2 seeds must agree entry for entry (SimilarityIndex derives
    // PartialEq over its two match maps).
    for seed in [5u64, 23] {
        let vocab = dirty_vocabulary(&VocabConfig::default(), seed);
        let config = IndexConfig {
            top_k: 5,
            operator: SimilarityOperator::with_threshold(0.7),
            threads: 1,
            ..IndexConfig::default()
        };
        let serial = SimilarityIndex::build(&vocab.left, &vocab.right, &config);
        assert!(
            serial.pair_count() > 0,
            "seed {seed}: vocabulary produced no matches; the test is vacuous"
        );
        for threads in [2usize, 8] {
            let threaded = SimilarityIndex::build(
                &vocab.left,
                &vocab.right,
                &config.clone().with_threads(threads),
            );
            assert_eq!(
                serial, threaded,
                "seed {seed}: index built with {threads} threads diverged from serial"
            );
        }
    }
}

#[test]
fn index_build_threads_do_not_change_the_learned_model() {
    // Downstream of the index: the learned definition must be bit-identical
    // across index-build thread counts 1/2/8 × 2 seeds.
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    for seed in [7u64, 21] {
        let baseline = learn(&dataset.task, config(seed, 1, 1).with_index_threads(1));
        for threads in [2usize, 8] {
            let definition = learn(
                &dataset.task,
                config(seed, 1, 1).with_index_threads(threads),
            );
            assert_eq!(
                baseline, definition,
                "seed {seed}, index_threads={threads}: learned definition diverged"
            );
        }
    }
}

#[test]
fn extension_learners_are_bit_identical_across_thread_counts() {
    // The FOIL and TILDE refiners fan candidate scoring out through the same
    // order-preserving chunked map as generalization scoring (serial masks
    // inside the fan-out, first-strict-maximum tie-breaking), so their
    // learned definitions carry the full determinism contract: bit-identical
    // at 1/2/8 threads × 2 seeds, on both a dirty integration task and the
    // tree-shaped segmentation task.
    let movie = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let segments =
        dlearn::datagen::generate_segment_dataset(&dlearn::datagen::SegmentConfig::tiny(), 91);
    for task in [&movie.task, &segments.task] {
        for strategy in [Strategy::Foil, Strategy::Tilde] {
            for seed in [7u64, 21] {
                let baseline = learn_with(task, config(seed, 1, 1), strategy);
                assert!(
                    !baseline.is_empty(),
                    "{} seed {seed}: learned nothing; the determinism check is vacuous",
                    strategy.name()
                );
                for threads in [2usize, 8] {
                    let definition = learn_with(task, config(seed, threads, threads), strategy);
                    assert_eq!(
                        baseline,
                        definition,
                        "{} seed {seed}: definition diverged at {threads} threads",
                        strategy.name()
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_coverage_masks_do_not_change_the_learned_model() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let serial = learn(&dataset.task, config(7, 1, 1));
    let threaded = learn(&dataset.task, config(7, 4, 4));
    assert_eq!(
        serial, threaded,
        "coverage/generalization threads changed the learned definition"
    );
}

#[test]
fn predict_batch_is_bit_identical_across_thread_counts() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    // A serving-style trace with duplicates, so the batch path's dedup and
    // fan-out are both exercised.
    let trace: Vec<Tuple> = (0..3)
        .flat_map(|_| {
            dataset
                .task
                .positives
                .iter()
                .chain(dataset.task.negatives.iter())
                .cloned()
        })
        .collect();
    for seed in [7u64, 21] {
        let predictor_at = |threads: usize| -> Predictor {
            let engine = Engine::prepare(dataset.task.clone(), config(seed, 1, threads))
                .expect("valid task");
            let learned = engine.learn(Strategy::DLearn).expect("learn");
            engine.predictor(&learned).expect("bind predictor")
        };
        let baseline_predictor = predictor_at(1);
        let baseline = baseline_predictor.predict_batch(&trace).expect("predict");
        // The batch equals a sequential per-example loop...
        let singles: Vec<bool> = trace
            .iter()
            .map(|e| baseline_predictor.predict(e).expect("predict"))
            .collect();
        assert_eq!(baseline, singles, "seed {seed}: batch diverged from loop");
        assert!(
            baseline.iter().any(|&b| b) && baseline.iter().any(|&b| !b),
            "seed {seed}: trace verdicts are uniform; the test is vacuous"
        );
        // ...and is bit-identical at every coverage thread count.
        for threads in [2usize, 8] {
            let batch = predictor_at(threads)
                .predict_batch(&trace)
                .expect("predict");
            assert_eq!(
                baseline, batch,
                "seed {seed}: predict_batch with {threads} threads diverged"
            );
        }
    }
}

#[test]
fn delta_maintenance_is_bit_identical_across_thread_counts() {
    // Incremental maintenance composes with the determinism contract: a
    // session driven through the same delta script must land on the same
    // definition and the same batch verdicts at every coverage thread count.
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let relations = [
        dlearn::relstore::RelId::intern("imdb_movies"),
        dlearn::relstore::RelId::intern("omdb_movies"),
        dlearn::relstore::RelId::intern("imdb_mov2genres"),
    ];
    for seed in [7u64, 21] {
        let script = dlearn_test_support::delta::tx_script(
            &dataset.task.database,
            &relations,
            &dlearn_test_support::delta::TxScriptConfig::default(),
            seed,
        );
        let trace: Vec<Tuple> = dataset
            .task
            .positives
            .iter()
            .chain(dataset.task.negatives.iter())
            .cloned()
            .collect();
        let run = |threads: usize| -> (Definition, Vec<bool>) {
            let mut engine = Engine::prepare(dataset.task.clone(), config(seed, threads, threads))
                .expect("valid task");
            for tx in &script {
                engine.apply_delta(tx).expect("apply_delta");
            }
            let learned = engine.learn(Strategy::DLearn).expect("learn");
            let verdicts = engine
                .predictor(&learned)
                .expect("bind predictor")
                .predict_batch(&trace)
                .expect("predict");
            (learned.definition().clone(), verdicts)
        };
        let (baseline_def, baseline_verdicts) = run(1);
        for threads in [2usize, 8] {
            let (definition, verdicts) = run(threads);
            assert_eq!(
                baseline_def, definition,
                "seed {seed}: post-delta definition diverged at {threads} threads"
            );
            assert_eq!(
                baseline_verdicts, verdicts,
                "seed {seed}: post-delta verdicts diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn deltas_interleaved_with_serving_keep_cache_on_off_parity() {
    // A serving tier interleaved with streaming deltas: after every
    // `PredictorService::apply_delta` (which selectively evicts only cache
    // entries whose probe logs the delta touched), a cached service must
    // serve bit-identical verdicts to an uncached one — at every worker
    // count — and both must match the rebound engine's own batch path.
    use dlearn::core::{PredictorService, ServiceConfig};

    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let relations = [
        dlearn::relstore::RelId::intern("imdb_movies"),
        dlearn::relstore::RelId::intern("omdb_movies"),
        dlearn::relstore::RelId::intern("imdb_mov2genres"),
    ];
    let script = dlearn_test_support::delta::tx_script(
        &dataset.task.database,
        &relations,
        &dlearn_test_support::delta::TxScriptConfig::default(),
        7,
    );
    let trace: Vec<Tuple> = (0..2)
        .flat_map(|_| {
            dataset
                .task
                .positives
                .iter()
                .chain(dataset.task.negatives.iter())
                .cloned()
        })
        .collect();
    let mut total_evictions = 0u64;
    for workers in [1usize, 2, 8] {
        let mut engine =
            Engine::prepare(dataset.task.clone(), config(7, 1, workers)).expect("valid task");
        let learned = engine.learn(Strategy::DLearn).expect("learn");
        let cached = PredictorService::new(
            engine.predictor(&learned).expect("bind predictor"),
            ServiceConfig {
                worker_threads: workers,
                ..ServiceConfig::default()
            },
        );
        let uncached = PredictorService::new(
            engine.predictor(&learned).expect("bind predictor"),
            ServiceConfig {
                worker_threads: workers,
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let mut service_evictions = 0u64;
        for (step, tx) in script.iter().enumerate() {
            // Warm the cache, then mutate the store underneath it.
            cached.predict_batch(&trace);
            let report = engine.apply_delta(tx).expect("apply_delta");
            let learned = engine.learn(Strategy::DLearn).expect("post-delta learn");
            let evicted = cached
                .apply_delta(
                    engine.predictor(&learned).expect("rebind predictor"),
                    &report,
                )
                .expect("cached service delta");
            uncached
                .apply_delta(
                    engine.predictor(&learned).expect("rebind predictor"),
                    &report,
                )
                .expect("uncached service delta");
            service_evictions += evicted;
            total_evictions += evicted;
            let with_cache: Vec<bool> = cached
                .predict_batch(&trace)
                .iter()
                .map(|r| r.as_ref().expect("cached serve").covered)
                .collect();
            let without_cache: Vec<bool> = uncached
                .predict_batch(&trace)
                .iter()
                .map(|r| r.as_ref().expect("uncached serve").covered)
                .collect();
            assert_eq!(
                with_cache, without_cache,
                "workers {workers} step {step}: cache-on/off verdicts diverged after delta"
            );
            let direct = engine
                .predictor(&learned)
                .expect("bind predictor")
                .predict_batch(&trace)
                .expect("predict");
            assert_eq!(
                with_cache, direct,
                "workers {workers} step {step}: served verdicts diverged from engine batch"
            );
        }
        assert_eq!(
            cached.metrics().delta_evictions,
            service_evictions,
            "workers {workers}: delta_evictions metric disagrees with apply_delta returns"
        );
    }
    // Vacuity guard: across the grid at least one delta must actually have
    // evicted a stale cached grounding (otherwise parity is trivially true).
    assert!(
        total_evictions > 0,
        "no delta ever evicted a cached ground example"
    );
}
