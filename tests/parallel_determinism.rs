//! Determinism of the parallel covering loop: the generalization-scoring
//! fan-out reduces with "best score, ties broken by sample order", so the
//! learned definition must be bit-identical at every thread count — and the
//! parallel coverage masks must equal the serial ones clause for clause.
//!
//! The same holds across the subsumption matcher's literal-ordering modes:
//! adaptive (most-constrained-first) ordering only changes how the search
//! walks the space, never which coverage decisions come out while searches
//! stay within the step budget (true on this workload by a wide margin),
//! so switching it on or off must not move a single literal of the learned
//! definition at any thread count.
//!
//! Similarity-index construction carries the same contract: left-value
//! chunks merge in left order, so the built [`SimilarityIndex`] — and every
//! definition learned through it — is bit-identical across index-build
//! thread counts.

use dlearn::core::{DLearn, LearnerConfig};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::similarity::{IndexConfig, SimilarityIndex, SimilarityOperator};
use dlearn_test_support::vocab::{dirty_vocabulary, VocabConfig};

fn config(seed: u64, generalization_threads: usize, coverage_threads: usize) -> LearnerConfig {
    LearnerConfig {
        generalization_threads,
        coverage_threads,
        seed,
        ..LearnerConfig::fast().with_iterations(4)
    }
}

#[test]
fn parallel_and_serial_generalization_learn_identical_definitions() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    for seed in [7u64, 21, 42] {
        let serial = DLearn::new(config(seed, 1, 1)).learn(&dataset.task);
        let parallel = DLearn::new(config(seed, 4, 1)).learn(&dataset.task);
        assert_eq!(
            serial.definition(),
            parallel.definition(),
            "seed {seed}: parallel generalization diverged from serial\n\
             serial:\n{}\nparallel:\n{}",
            serial.render(),
            parallel.render()
        );
    }
}

#[test]
fn adaptive_ordering_learns_bit_identical_definitions_at_any_thread_count() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let baseline = DLearn::new(config(7, 1, 1)).learn(&dataset.task);
    for threads in [1usize, 2, 8] {
        for adaptive in [true, false] {
            let cfg = config(7, threads, threads).with_adaptive_ordering(adaptive);
            let model = DLearn::new(cfg).learn(&dataset.task);
            assert_eq!(
                baseline.definition(),
                model.definition(),
                "adaptive={adaptive}, threads={threads}: learned definition diverged\n\
                 baseline:\n{}\ngot:\n{}",
                baseline.render(),
                model.render()
            );
        }
    }
}

#[test]
fn index_build_threads_produce_bit_identical_indexes() {
    // The index itself, on realistic dirty vocabularies: 1/2/8 construction
    // threads × 2 seeds must agree entry for entry (SimilarityIndex derives
    // PartialEq over its two match maps).
    for seed in [5u64, 23] {
        let vocab = dirty_vocabulary(&VocabConfig::default(), seed);
        let config = IndexConfig {
            top_k: 5,
            operator: SimilarityOperator::with_threshold(0.7),
            threads: 1,
        };
        let serial = SimilarityIndex::build(&vocab.left, &vocab.right, &config);
        assert!(
            serial.pair_count() > 0,
            "seed {seed}: vocabulary produced no matches; the test is vacuous"
        );
        for threads in [2usize, 8] {
            let threaded = SimilarityIndex::build(
                &vocab.left,
                &vocab.right,
                &config.clone().with_threads(threads),
            );
            assert_eq!(
                serial, threaded,
                "seed {seed}: index built with {threads} threads diverged from serial"
            );
        }
    }
}

#[test]
fn index_build_threads_do_not_change_the_learned_model() {
    // Downstream of the index: the learned definition must be bit-identical
    // across index-build thread counts 1/2/8 × 2 seeds.
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    for seed in [7u64, 21] {
        let baseline = DLearn::new(config(seed, 1, 1).with_index_threads(1)).learn(&dataset.task);
        for threads in [2usize, 8] {
            let model =
                DLearn::new(config(seed, 1, 1).with_index_threads(threads)).learn(&dataset.task);
            assert_eq!(
                baseline.definition(),
                model.definition(),
                "seed {seed}, index_threads={threads}: learned definition diverged\n\
                 baseline:\n{}\ngot:\n{}",
                baseline.render(),
                model.render()
            );
        }
    }
}

#[test]
fn parallel_coverage_masks_do_not_change_the_learned_model() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let serial = DLearn::new(config(7, 1, 1)).learn(&dataset.task);
    let threaded = DLearn::new(config(7, 4, 4)).learn(&dataset.task);
    assert_eq!(
        serial.definition(),
        threaded.definition(),
        "coverage/generalization threads changed the learned definition\n\
         serial:\n{}\nthreaded:\n{}",
        serial.render(),
        threaded.render()
    );
}
