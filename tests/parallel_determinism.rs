//! Determinism of the parallel covering loop: the generalization-scoring
//! fan-out reduces with "best score, ties broken by sample order", so the
//! learned definition must be bit-identical at every thread count — and the
//! parallel coverage masks must equal the serial ones clause for clause.
//!
//! The same holds across the subsumption matcher's literal-ordering modes:
//! adaptive (most-constrained-first) ordering only changes how the search
//! walks the space, never which coverage decisions come out while searches
//! stay within the step budget (true on this workload by a wide margin),
//! so switching it on or off must not move a single literal of the learned
//! definition at any thread count.

use dlearn::core::{DLearn, LearnerConfig};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};

fn config(seed: u64, generalization_threads: usize, coverage_threads: usize) -> LearnerConfig {
    LearnerConfig {
        generalization_threads,
        coverage_threads,
        seed,
        ..LearnerConfig::fast().with_iterations(4)
    }
}

#[test]
fn parallel_and_serial_generalization_learn_identical_definitions() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    for seed in [7u64, 21, 42] {
        let serial = DLearn::new(config(seed, 1, 1)).learn(&dataset.task);
        let parallel = DLearn::new(config(seed, 4, 1)).learn(&dataset.task);
        assert_eq!(
            serial.definition(),
            parallel.definition(),
            "seed {seed}: parallel generalization diverged from serial\n\
             serial:\n{}\nparallel:\n{}",
            serial.render(),
            parallel.render()
        );
    }
}

#[test]
fn adaptive_ordering_learns_bit_identical_definitions_at_any_thread_count() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let baseline = DLearn::new(config(7, 1, 1)).learn(&dataset.task);
    for threads in [1usize, 2, 8] {
        for adaptive in [true, false] {
            let cfg = config(7, threads, threads).with_adaptive_ordering(adaptive);
            let model = DLearn::new(cfg).learn(&dataset.task);
            assert_eq!(
                baseline.definition(),
                model.definition(),
                "adaptive={adaptive}, threads={threads}: learned definition diverged\n\
                 baseline:\n{}\ngot:\n{}",
                baseline.render(),
                model.render()
            );
        }
    }
}

#[test]
fn parallel_coverage_masks_do_not_change_the_learned_model() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let serial = DLearn::new(config(7, 1, 1)).learn(&dataset.task);
    let threaded = DLearn::new(config(7, 4, 4)).learn(&dataset.task);
    assert_eq!(
        serial.definition(),
        threaded.definition(),
        "coverage/generalization threads changed the learned definition\n\
         serial:\n{}\nthreaded:\n{}",
        serial.render(),
        threaded.render()
    );
}
