//! Integration tests spanning the whole workspace: data generation →
//! prepared engine session → learning → batched prediction, for each of the
//! three dataset families and for the baseline systems.

use dlearn::constraints::all_cfds_satisfied;
use dlearn::core::{Engine, LearnerConfig, Strategy};
use dlearn::datagen::citations::{generate_citation_dataset, CitationConfig};
use dlearn::datagen::movies::{generate_movie_dataset, MovieConfig};
use dlearn::datagen::products::{generate_product_dataset, ProductConfig};
use dlearn::eval::Confusion;

fn fast(iterations: usize) -> LearnerConfig {
    LearnerConfig {
        coverage_threads: 2,
        ..LearnerConfig::fast().with_iterations(iterations)
    }
}

#[test]
fn movies_end_to_end_learning_and_prediction() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let fold = dataset.train_test_split(0.7, 1);
    let engine = Engine::prepare(fold.train.clone(), fast(4)).expect("valid task");
    let learned = engine.learn(Strategy::DLearn).expect("learn");
    assert!(
        !learned.clauses().is_empty(),
        "no definition learned:\n{}",
        learned.render()
    );
    let predictor = engine.predictor(&learned).expect("bind predictor");
    let confusion = Confusion::from_predictions(
        &predictor
            .predict_batch(&fold.test_positives)
            .expect("predict"),
        &predictor
            .predict_batch(&fold.test_negatives)
            .expect("predict"),
    );
    assert!(
        confusion.f1() > 0.3,
        "F1 too low: {:.2}\n{}",
        confusion.f1(),
        learned.render()
    );
}

#[test]
fn citations_end_to_end_with_two_mds() {
    let dataset = generate_citation_dataset(&CitationConfig::tiny(), 3);
    let fold = dataset.train_test_split(0.7, 2);
    let engine = Engine::prepare(fold.train.clone(), fast(3)).expect("valid task");
    let learned = engine.learn(Strategy::DLearn).expect("learn");
    let predictor = engine.predictor(&learned).expect("bind predictor");
    let confusion = Confusion::from_predictions(
        &predictor
            .predict_batch(&fold.test_positives)
            .expect("predict"),
        &predictor
            .predict_batch(&fold.test_negatives)
            .expect("predict"),
    );
    assert!(
        confusion.f1() > 0.3,
        "F1 too low: {:.2}\n{}",
        confusion.f1(),
        learned.render()
    );
}

#[test]
fn products_learned_definition_crosses_the_similarity_join() {
    let dataset = generate_product_dataset(&ProductConfig::tiny(), 11);
    let engine = Engine::prepare(dataset.task.clone(), fast(5)).expect("valid task");
    let learned = engine.learn(Strategy::DLearn).expect("learn");
    // At least one learned clause should reach the Amazon side (category),
    // which is only possible through the title MD.
    let reaches_amazon = learned.clauses().iter().any(|c| {
        c.body.iter().any(|l| {
            l.relation_name()
                .map(|n| n.starts_with("amazon"))
                .unwrap_or(false)
        })
    });
    assert!(
        reaches_amazon || learned.clauses().is_empty(),
        "clauses never cross to the Amazon source:\n{}",
        learned.render()
    );
}

#[test]
fn castor_no_md_stays_within_the_target_source() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 9);
    let engine = Engine::prepare(dataset.task.clone(), fast(4)).expect("valid task");
    let learned = engine.learn(Strategy::CastorNoMd).expect("learn");
    for clause in learned.clauses() {
        for literal in &clause.body {
            if let Some(name) = literal.relation_name() {
                assert!(
                    name.starts_with("imdb"),
                    "Castor-NoMD must not reach the OMDB source: {clause}"
                );
            }
        }
    }
}

#[test]
fn dlearn_repaired_trains_over_a_cfd_consistent_database() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny().with_violation_rate(0.2), 17);
    // The generated database violates its CFDs...
    assert!(!all_cfds_satisfied(
        &dataset.task.database,
        &dataset.task.cfds
    ));
    // ...and the DLearn-Repaired baseline still learns end-to-end over the
    // repaired instance, from the same prepared session.
    let engine = Engine::prepare(dataset.task.clone(), fast(4)).expect("valid task");
    let learned = engine.learn(Strategy::DLearnRepaired).expect("learn");
    let predictor = engine.predictor(&learned).expect("bind predictor");
    let _ = predictor
        .predict_batch(&dataset.task.positives)
        .expect("predict");
    assert!(learned.seconds() >= 0.0);
}

#[test]
fn learned_clauses_use_similarity_literals_on_dirty_data() {
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 23);
    let engine = Engine::prepare(dataset.task.clone(), fast(4)).expect("valid task");
    let learned = engine.learn(Strategy::DLearn).expect("learn");
    // DLearn's definitions over heterogeneous data are expected to contain
    // similarity literals / MD repair literals in at least one clause when
    // the definition crosses sources.
    let crosses = learned.clauses().iter().any(|c| {
        c.body.iter().any(|l| {
            l.relation_name()
                .map(|n| n.starts_with("omdb"))
                .unwrap_or(false)
        })
    });
    if crosses {
        let has_similarity = learned.clauses().iter().any(|c| {
            !c.repairs.is_empty()
                || c.body
                    .iter()
                    .any(|l| matches!(l, dlearn::logic::Literal::Similar(_, _)))
        });
        assert!(
            has_similarity,
            "cross-source clause without similarity machinery:\n{}",
            learned.render()
        );
    }
}
