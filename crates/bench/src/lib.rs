//! Benchmark support crate; benchmarks live in benches/.
