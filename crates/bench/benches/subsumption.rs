//! θ-subsumption micro-benchmarks on the movie workload, with a
//! machine-readable baseline.
//!
//! Besides printing criterion-style numbers, this bench writes
//! `BENCH_subsumption.json` at the workspace root: median nanoseconds for
//! `GroundClause::new` (index construction) and `subsumes` (the matcher) on
//! bottom clauses of the synthetic IMDB+OMDB task. Later performance work
//! diffs against this file to prove a trajectory.

use std::time::Duration;

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dlearn_constraints::MdCatalog;
use dlearn_core::{BottomClauseBuilder, CoverageEngine, LearnerConfig, PreparedClause};
use dlearn_datagen::{generate_movie_dataset, MovieConfig};
use dlearn_logic::{subsumes, Clause, GroundClause, SubsumptionConfig};
use dlearn_similarity::{IndexConfig, SimilarityOperator};

fn bench_subsumption(c: &mut Criterion) {
    let dataset = generate_movie_dataset(&MovieConfig::tiny().with_violation_rate(0.1), 42);
    let task = &dataset.task;
    let config = LearnerConfig::fast().with_iterations(4);
    let index_config = IndexConfig {
        top_k: config.km,
        operator: SimilarityOperator::with_threshold(config.similarity_threshold),
    };
    let catalog = MdCatalog::build(
        &task.mds,
        &dlearn_core::augment_with_target(task),
        &index_config,
    );
    let builder = BottomClauseBuilder::new(task, &catalog, &config);

    // A realistic candidate (a bottom clause) against the ground bottom
    // clauses of the full positive set — the exact shape of the covering
    // loop's hot path.
    let mut rng = StdRng::seed_from_u64(7);
    let bottom: Clause = builder.build(&task.positives[0], &mut rng);
    let grounds: Vec<GroundClause> = task
        .positives
        .iter()
        .map(|e| {
            let mut rng = StdRng::seed_from_u64(11);
            GroundClause::new(&builder.build(e, &mut rng))
        })
        .collect();
    let sub_config = SubsumptionConfig::default();

    let mut group = c.benchmark_group("subsumption");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("ground_clause_new", |b| {
        b.iter(|| criterion::black_box(GroundClause::new(&bottom)))
    });
    group.bench_function("subsumes", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for g in &grounds {
                hits += subsumes(&bottom, g, &sub_config).is_some() as usize;
            }
            criterion::black_box(hits)
        })
    });
    group.bench_function("coverage_engine_counts", |b| {
        let engine = CoverageEngine::build(task, &builder, &config);
        let prepared = PreparedClause::prepare(bottom.clone(), &config);
        b.iter(|| criterion::black_box(engine.counts(&prepared)))
    });
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_subsumption(&mut criterion);

    // Machine-readable baseline at the workspace root.
    let results = criterion.take_results();
    let mut json = String::from("{\n  \"workload\": \"movies-tiny (IMDB+OMDB, p=0.1)\",\n");
    json.push_str("  \"unit\": \"ns (median per iteration)\",\n  \"benches\": {\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"median_ns\": {:.1}, \"samples\": {} }}{}\n",
            r.name,
            r.median_ns,
            r.samples,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_subsumption.json");
    std::fs::write(path, &json).expect("write BENCH_subsumption.json");
    println!("wrote {path}");
}
