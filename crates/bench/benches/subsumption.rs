//! θ-subsumption micro-benchmarks on the movie workload, with a
//! machine-readable baseline.
//!
//! Besides printing criterion-style numbers, this bench writes
//! `BENCH_subsumption.json` at the workspace root: median nanoseconds for
//! `GroundClause::new` (index construction), `subsumes` (the flat-
//! substitution matcher over a prepared-once numbering — the covering
//! loop's hot-path shape), full coverage counting, bottom-clause
//! construction and one generalization round on bottom clauses of the
//! synthetic IMDB+OMDB task — plus the `backtracking_heavy` adversarial
//! workload (an unsatisfiable chain over two disconnected graph
//! components, scrambled body order) measured under both adaptive and
//! static literal ordering, so the ordering win shows up in the committed
//! trajectory as a machine-independent ratio — plus `index_build`, the
//! similarity-index construction on a ~1k×1k dirty vocabulary (length
//! filter + top-k early exit + parallel fan-out) — plus the serving pair
//! `predict_loop`/`predict_batch`, per-example prediction vs the batched
//! `Predictor` entry point on a repetition-heavy trace.
//!
//! A second group, `scaling`, measures the hot paths at ~3 sizes each so
//! the committed baseline records curve *shape*, not just one point:
//! `index_build/vocab/{250,500,1000}` on the uniform benchmark vocabulary,
//! `index_build/zipf/{250,500,1000}` on a Zipf-skewed twin (the hot-key
//! blocking path), `coverage_engine_counts/examples/{24,48,96}`, and
//! `predict_batch/trace/{1,4,16}` repetitions of the training tuples.
//!
//! A fourth group, `delta_apply`, prices streaming maintenance: a 1-op and
//! a 3-op transaction round-tripped through `Engine::apply_delta` next to
//! the from-scratch `Engine::prepare` each transaction would otherwise
//! cost.
//!
//! A fifth group, `learn`, prices the extension learners on the
//! tree-shaped segments scenario: `foil_round` is one full FOIL covering
//! run (greedy information-gain specialization, clause by clause) and
//! `tilde_build` one TILDE tree build plus clause read-back, both over an
//! already-prepared engine — so the numbers isolate refinement search, not
//! preparation.
//!
//! Each JSON entry carries its own `tolerance` — the regression-gate slack
//! the entry is held to (`gate_tolerance` below is the committed table).
//! Later performance work diffs against this file to prove a trajectory; CI
//! parses it for structural integrity and runs a same-machine regression
//! gate (see `scripts/check_bench_json.py`).

use std::time::Duration;

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dlearn_constraints::MdCatalog;
use dlearn_core::{
    generalize_prepared, BottomClauseBuilder, CoverageEngine, LearnerConfig, PreparedClause,
};
use dlearn_datagen::{generate_movie_dataset, MovieConfig};
use dlearn_logic::{
    subsumes_numbered_decision, Clause, GroundClause, NumberedClause, SubsumptionConfig,
};
use dlearn_similarity::{IndexConfig, SimilarityIndex, SimilarityOperator};
use dlearn_test_support::backtracking_heavy_pair;
use dlearn_test_support::vocab::{dirty_vocabulary, VocabConfig};

fn bench_subsumption(c: &mut Criterion) {
    let dataset = generate_movie_dataset(&MovieConfig::tiny().with_violation_rate(0.1), 42);
    let task = &dataset.task;
    let config = LearnerConfig::fast().with_iterations(4);
    let index_config = IndexConfig {
        top_k: config.km,
        operator: SimilarityOperator::with_threshold(config.similarity_threshold),
        ..IndexConfig::default()
    };
    let catalog = MdCatalog::build(
        &task.mds,
        &dlearn_core::augment_with_target(task),
        &index_config,
    );
    let builder = BottomClauseBuilder::new(task, &catalog, &config);

    // A realistic candidate (a bottom clause) against the ground bottom
    // clauses of the full positive set — the exact shape of the covering
    // loop's hot path.
    let mut rng = StdRng::seed_from_u64(7);
    let bottom: Clause = builder.build(&task.positives[0], &mut rng);
    let grounds: Vec<GroundClause> = task
        .positives
        .iter()
        .map(|e| {
            let mut rng = StdRng::seed_from_u64(11);
            GroundClause::new(&builder.build(e, &mut rng))
        })
        .collect();
    let sub_config = SubsumptionConfig::default();

    let mut group = c.benchmark_group("subsumption");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("ground_clause_new", |b| {
        b.iter(|| criterion::black_box(GroundClause::new(&bottom)))
    });
    group.bench_function("subsumes", |b| {
        // The covering loop renumbers a candidate once and then tests it
        // against many ground clauses; measure exactly that shape.
        let numbered = NumberedClause::new(&bottom);
        b.iter(|| {
            let mut hits = 0usize;
            for g in &grounds {
                hits += subsumes_numbered_decision(&numbered, g, &sub_config).is_yes() as usize;
            }
            criterion::black_box(hits)
        })
    });
    let engine = CoverageEngine::build(task, &builder, &config);
    let prepared = PreparedClause::prepare(bottom.clone(), &config);
    group.bench_function("coverage_engine_counts", |b| {
        b.iter(|| criterion::black_box(engine.counts(&prepared)))
    });
    // Adversarial many-same-relation workload: the matcher must exhaust an
    // unsatisfiable search space. Adaptive ordering follows the bindings
    // through the chain and fail-fasts; the static twin pins the cost of
    // the order the pre-adaptive matcher would have used.
    let (heavy_c, heavy_d) = backtracking_heavy_pair();
    let heavy_ground = GroundClause::new(&heavy_d);
    let heavy_numbered = NumberedClause::new(&heavy_c);
    group.bench_function("backtracking_heavy", |b| {
        b.iter(|| {
            criterion::black_box(subsumes_numbered_decision(
                &heavy_numbered,
                &heavy_ground,
                &sub_config,
            ))
        })
    });
    let static_config = SubsumptionConfig {
        adaptive_ordering: false,
        ..sub_config
    };
    group.bench_function("backtracking_heavy_static", |b| {
        b.iter(|| {
            criterion::black_box(subsumes_numbered_decision(
                &heavy_numbered,
                &heavy_ground,
                &static_config,
            ))
        })
    });
    group.bench_function("bottom_clause_build", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            criterion::black_box(builder.build(&task.positives[0], &mut rng))
        })
    });
    // Similarity-index construction on a realistic dirty vocabulary
    // (~1k×1k distinct values): the layer the eval harness rebuilds per
    // cross-validation fold. Measures blocking + length filter + top-k
    // early exit + parallel fan-out together, at default thread count.
    let vocab = dirty_vocabulary(&VocabConfig::benchmark_1k(), 42);
    let vocab_config = IndexConfig {
        top_k: 5,
        operator: SimilarityOperator::with_threshold(0.65),
        ..IndexConfig::default()
    };
    group.bench_function("index_build", |b| {
        b.iter(|| {
            criterion::black_box(SimilarityIndex::build(
                &vocab.left,
                &vocab.right,
                &vocab_config,
            ))
        })
    });
    // Serving-shaped prediction on the movie workload: a trace of the
    // task's training tuples repeated 4x (serving traffic repeats queries).
    // `predict_loop` is the per-example baseline — one `Predictor::predict`
    // call per trace entry; `predict_batch` is the batched entry point,
    // which grounds each *distinct* tuple once behind one shared
    // bottom-clause builder and fans out across `coverage_threads` (a
    // single thread here; the fan-out multiplies on multicore).
    let serve_engine =
        dlearn_core::Engine::prepare(task.clone(), config.clone()).expect("valid task");
    let learned = serve_engine
        .learn(dlearn_core::Strategy::DLearn)
        .expect("learn");
    let predictor = serve_engine.predictor(&learned).expect("bind predictor");
    let trace: Vec<dlearn_relstore::Tuple> = (0..4)
        .flat_map(|_| task.positives.iter().chain(task.negatives.iter()).cloned())
        .collect();
    group.bench_function("predict_loop", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for e in &trace {
                hits += predictor.predict(e).expect("predict") as usize;
            }
            criterion::black_box(hits)
        })
    });
    group.bench_function("predict_batch", |b| {
        b.iter(|| criterion::black_box(predictor.predict_batch(&trace).expect("predict")))
    });
    group.bench_function("generalization_round", |b| {
        // One covering-loop round: generalize the current clause toward a
        // few sampled positives, prepare each candidate and score it.
        b.iter(|| {
            let mut best = i64::MIN;
            for ge in engine.positives().iter().take(4) {
                let Some(candidate) = generalize_prepared(
                    &bottom,
                    prepared.numbered(),
                    &ge.ground,
                    config.binding_cap,
                ) else {
                    continue;
                };
                if candidate.body.is_empty() {
                    continue;
                }
                let scored = PreparedClause::prepare(candidate, &config);
                best = best.max(engine.score(&scored));
            }
            criterion::black_box(best)
        })
    });
    group.finish();
}

/// Scaling curves: the same hot paths at ~3 sizes each, so the committed
/// baseline captures how cost *grows*, not just one operating point. The
/// curves are not regression-gated (small sizes are noisy); the per-size
/// medians exist so a super-linear blow-up shows up in the committed diff.
fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group
        .sample_size(12)
        .measurement_time(Duration::from_secs(2));

    // Index construction vs vocabulary size, on the uniform benchmark mix
    // and on a Zipf-skewed twin that concentrates values into a few huge
    // blocks (the hot-key posting path does the work there).
    for per_side in [250usize, 500, 1000] {
        let uniform = dirty_vocabulary(&VocabConfig::benchmark_sized(per_side), 42);
        let skewed = dirty_vocabulary(&VocabConfig::benchmark_sized(per_side).with_zipf_s(1.2), 42);
        let vocab_config = IndexConfig {
            top_k: 5,
            operator: SimilarityOperator::with_threshold(0.65),
            ..IndexConfig::default()
        };
        group.bench_function(format!("index_build/vocab/{per_side}"), |b| {
            b.iter(|| {
                criterion::black_box(SimilarityIndex::build(
                    &uniform.left,
                    &uniform.right,
                    &vocab_config,
                ))
            })
        });
        group.bench_function(format!("index_build/zipf/{per_side}"), |b| {
            b.iter(|| {
                criterion::black_box(SimilarityIndex::build(
                    &skewed.left,
                    &skewed.right,
                    &vocab_config,
                ))
            })
        });
    }

    // Coverage counting vs training-set size: tiny movie task with the
    // example count scaled 1x/2x/4x (named by total examples).
    for (positives, negatives) in [(8usize, 16usize), (16, 32), (32, 64)] {
        let dataset = generate_movie_dataset(
            &MovieConfig::tiny()
                .with_examples(positives, negatives)
                .with_violation_rate(0.1),
            42,
        );
        let task = &dataset.task;
        let config = LearnerConfig::fast().with_iterations(4);
        let index_config = IndexConfig {
            top_k: config.km,
            operator: SimilarityOperator::with_threshold(config.similarity_threshold),
            ..IndexConfig::default()
        };
        let catalog = MdCatalog::build(
            &task.mds,
            &dlearn_core::augment_with_target(task),
            &index_config,
        );
        let builder = BottomClauseBuilder::new(task, &catalog, &config);
        let mut rng = StdRng::seed_from_u64(7);
        let bottom: Clause = builder.build(&task.positives[0], &mut rng);
        let engine = CoverageEngine::build(task, &builder, &config);
        let prepared = PreparedClause::prepare(bottom, &config);
        group.bench_function(
            format!("coverage_engine_counts/examples/{}", positives + negatives),
            |b| b.iter(|| criterion::black_box(engine.counts(&prepared))),
        );
    }

    // Batched prediction vs trace length: the tiny task's training tuples
    // repeated 1x/4x/16x (serving traffic repeats queries, so the repeat
    // count is the real size axis — distinct tuples ground once).
    let dataset = generate_movie_dataset(&MovieConfig::tiny().with_violation_rate(0.1), 42);
    let task = dataset.task;
    let config = LearnerConfig::fast().with_iterations(4);
    let serve_engine = dlearn_core::Engine::prepare(task, config).expect("valid task");
    let learned = serve_engine
        .learn(dlearn_core::Strategy::DLearn)
        .expect("learn");
    let predictor = serve_engine.predictor(&learned).expect("bind predictor");
    for repeats in [1usize, 4, 16] {
        let trace: Vec<dlearn_relstore::Tuple> = (0..repeats)
            .flat_map(|_| {
                serve_engine
                    .task()
                    .positives
                    .iter()
                    .chain(serve_engine.task().negatives.iter())
                    .cloned()
            })
            .collect();
        group.bench_function(format!("predict_batch/trace/{repeats}"), |b| {
            b.iter(|| criterion::black_box(predictor.predict_batch(&trace).expect("predict")))
        });
    }
    group.finish();
}

/// Served throughput through the resilient `PredictorService` front-end:
/// the 4x-repeated training trace at 1/2/8 worker threads, cold cache
/// (cleared before every batch, so every serve re-grounds) vs warm cache
/// (primed once, so every serve hits the ground-example cache). Gated at a
/// widened per-entry tolerance (see `gate_tolerance`); returns the trace
/// length so `main` can report tuples/sec.
fn bench_service(c: &mut Criterion) -> usize {
    let dataset = generate_movie_dataset(&MovieConfig::tiny().with_violation_rate(0.1), 42);
    let task = dataset.task;
    let config = LearnerConfig::fast().with_iterations(4);
    let engine = dlearn_core::Engine::prepare(task, config).expect("valid task");
    let learned = engine.learn(dlearn_core::Strategy::DLearn).expect("learn");
    let trace: Vec<dlearn_relstore::Tuple> = (0..4)
        .flat_map(|_| {
            engine
                .task()
                .positives
                .iter()
                .chain(engine.task().negatives.iter())
                .cloned()
        })
        .collect();
    let mut group = c.benchmark_group("service");
    group
        .sample_size(12)
        .measurement_time(Duration::from_secs(2));
    for workers in [1usize, 2, 8] {
        let service = dlearn_core::PredictorService::new(
            engine.predictor(&learned).expect("bind predictor"),
            dlearn_core::ServiceConfig {
                worker_threads: workers,
                ..dlearn_core::ServiceConfig::default()
            },
        );
        group.bench_function(format!("cold/{workers}"), |b| {
            b.iter(|| {
                service.clear_cache();
                criterion::black_box(service.predict_batch(&trace))
            })
        });
        // Prime once; every serve afterwards hits the cache.
        service.clear_cache();
        let _ = service.predict_batch(&trace);
        group.bench_function(format!("warm/{workers}"), |b| {
            b.iter(|| criterion::black_box(service.predict_batch(&trace)))
        });
    }
    group.finish();
    trace.len()
}

/// Streaming-delta maintenance vs the rebuild it replaces: `small` round-
/// trips a 1-op transaction (insert a novel title, delete it back) through
/// `Engine::apply_delta`, `medium` round-trips a 3-op transaction touching
/// both MD-indexed relations, and `rebuild` measures the from-scratch
/// `Engine::prepare` an engine without incremental maintenance would pay per
/// transaction. Gated since graduation (0.30); the incremental/rebuild
/// ratio is additionally tracked through the committed trajectory.
fn bench_delta(c: &mut Criterion) {
    use dlearn_relstore::{tuple, DeltaTx, RelId, Value};

    let dataset = generate_movie_dataset(&MovieConfig::tiny().with_violation_rate(0.1), 42);
    let task = dataset.task;
    let config = LearnerConfig::fast().with_iterations(4);
    let imdb = RelId::intern("imdb_movies");
    let omdb = RelId::intern("omdb_movies");
    let mut group = c.benchmark_group("delta_apply");
    group
        .sample_size(12)
        .measurement_time(Duration::from_secs(2));

    let small_row = tuple(vec![
        Value::int(995_000),
        Value::str("Delta Bench: The Small Tx"),
        Value::int(2000),
    ]);
    let small_insert = DeltaTx::new().insert(imdb, small_row.clone());
    let small_delete = DeltaTx::new().delete(imdb, small_row);
    let mut engine =
        dlearn_core::Engine::prepare(task.clone(), config.clone()).expect("valid task");
    group.bench_function("small", |b| {
        b.iter(|| {
            criterion::black_box(engine.apply_delta(&small_insert).expect("insert"));
            criterion::black_box(engine.apply_delta(&small_delete).expect("delete"));
        })
    });

    let medium_rows = [
        (
            imdb,
            tuple(vec![
                Value::int(995_001),
                Value::str("Delta Bench: Medium One"),
                Value::int(2001),
            ]),
        ),
        (
            imdb,
            tuple(vec![
                Value::int(995_002),
                Value::str("Delta Bench: Medium Two"),
                Value::int(2002),
            ]),
        ),
        (
            omdb,
            tuple(vec![
                Value::int(995_003),
                Value::str("Delta Bench: Medium Three"),
                Value::int(2003),
            ]),
        ),
    ];
    let mut medium_insert = DeltaTx::new();
    let mut medium_delete = DeltaTx::new();
    for (rel, row) in &medium_rows {
        medium_insert = medium_insert.insert(*rel, row.clone());
        medium_delete = medium_delete.delete(*rel, row.clone());
    }
    let mut engine =
        dlearn_core::Engine::prepare(task.clone(), config.clone()).expect("valid task");
    group.bench_function("medium", |b| {
        b.iter(|| {
            criterion::black_box(engine.apply_delta(&medium_insert).expect("insert"));
            criterion::black_box(engine.apply_delta(&medium_delete).expect("delete"));
        })
    });

    group.bench_function("rebuild", |b| {
        b.iter(|| {
            criterion::black_box(
                dlearn_core::Engine::prepare(task.clone(), config.clone()).expect("valid task"),
            )
        })
    });
    group.finish();
}

/// Hot-swap and coalescing costs: `swap/publish` prices one full epoch
/// publication (re-bind the learned model, atomically install it in the
/// service's swap cell) — the pause-free alternative to tearing the service
/// down; `coalesced/{1,8,32}_callers` measure N concurrent callers pushing
/// 8 requests each through the queued `Coalescer` front-end (batcher drain,
/// per-budget grouping, per-caller fan-back included). Gated since
/// graduation (0.30 / 0.35), completing the path the service curves walked.
fn bench_swap(c: &mut Criterion) {
    use std::sync::Arc;

    let dataset = generate_movie_dataset(&MovieConfig::tiny().with_violation_rate(0.1), 42);
    let task = dataset.task;
    let config = LearnerConfig::fast().with_iterations(4);
    let engine = dlearn_core::Engine::prepare(task, config).expect("valid task");
    let learned = engine.learn(dlearn_core::Strategy::DLearn).expect("learn");
    let pool: Vec<dlearn_relstore::Tuple> = engine
        .task()
        .positives
        .iter()
        .chain(engine.task().negatives.iter())
        .cloned()
        .collect();

    let mut group = c.benchmark_group("swap");
    group
        .sample_size(12)
        .measurement_time(Duration::from_secs(2));
    let service = dlearn_core::PredictorService::new(
        engine.predictor(&learned).expect("bind predictor"),
        dlearn_core::ServiceConfig::default(),
    );
    // Keep the cache populated so each publish also pays the lazy
    // epoch-retirement bookkeeping a live service would.
    let _ = service.predict_batch(&pool);
    group.bench_function("publish", |b| {
        b.iter(|| {
            criterion::black_box(
                service
                    .publish(engine.predictor(&learned).expect("rebind"))
                    .expect("publish"),
            )
        })
    });
    group.finish();

    let mut group = c.benchmark_group("coalesced");
    group
        .sample_size(12)
        .measurement_time(Duration::from_secs(2));
    for callers in [1usize, 8, 32] {
        let service = Arc::new(dlearn_core::PredictorService::new(
            engine.predictor(&learned).expect("bind predictor"),
            dlearn_core::ServiceConfig::default(),
        ));
        let coalescer =
            dlearn_core::Coalescer::new(service, dlearn_core::CoalesceConfig::default());
        // Per-caller schedules: 8 requests each over the training tuples.
        let schedules: Vec<Vec<dlearn_relstore::Tuple>> = (0..callers)
            .map(|caller| {
                (0..8)
                    .map(|i| pool[(caller * 3 + i) % pool.len()].clone())
                    .collect()
            })
            .collect();
        group.bench_function(format!("{callers}_callers"), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = schedules
                        .iter()
                        .map(|schedule| {
                            let coalescer = &coalescer;
                            scope.spawn(move || {
                                for t in schedule {
                                    criterion::black_box(
                                        coalescer.submit(t.clone()).expect("serve"),
                                    );
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().expect("caller thread");
                    }
                })
            })
        });
    }
    group.finish();
}

/// Extension-learner refinement costs on the tree-shaped segments scenario
/// (the workload `learner_diversity` evaluates): `learn/foil_round` prices
/// one full FOIL covering run, `learn/tilde_build` one TILDE tree build
/// plus clause read-back/refinement, both against a prepared engine.
/// Committed EXPECTED (ungated) with their future tolerance in-JSON — the
/// same graduation policy every serving-era entry started under.
fn bench_learn(c: &mut Criterion) {
    let dataset =
        dlearn_datagen::generate_segment_dataset(&dlearn_datagen::SegmentConfig::tiny(), 91);
    let config = LearnerConfig {
        seed: 31,
        ..LearnerConfig::fast().with_iterations(2)
    };
    let engine = dlearn_core::Engine::prepare(dataset.task, config).expect("valid task");

    let mut group = c.benchmark_group("learn");
    group
        .sample_size(12)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("foil_round", |b| {
        b.iter(|| {
            criterion::black_box(
                engine
                    .learn(dlearn_core::Strategy::Foil)
                    .expect("foil learn"),
            )
        })
    });
    group.bench_function("tilde_build", |b| {
        b.iter(|| {
            criterion::black_box(
                engine
                    .learn(dlearn_core::Strategy::Tilde)
                    .expect("tilde learn"),
            )
        })
    });
    group.finish();
}

/// The committed per-entry regression tolerance written next to each median
/// (`scripts/check_bench_json.py` reads it back in `--gate` mode). The
/// serving pair and the generalization round carry wider slack than the
/// tight hot-path benches: their medians sit on learned-model behavior with
/// more run-to-run variance.
fn gate_tolerance(name: &str) -> f64 {
    if name.starts_with("service/") {
        // Thread-scaled and cache-primed: gated (since the delta work), but
        // at the widest slack in the table.
        return 0.35;
    }
    if name.starts_with("delta_apply/") {
        // Gated since graduation; maintenance cost tracks transaction shape.
        return 0.30;
    }
    if name.starts_with("swap/") {
        // Gated since graduation; a publish is dominated by predictor
        // re-binding, hence the wider slack.
        return 0.30;
    }
    if name.starts_with("coalesced/") {
        // Gated since graduation, at the widest slack: thread spawn/join
        // and batcher timer behavior dominate on small machines.
        return 0.35;
    }
    if name.starts_with("learn/") {
        // New and ungated: refinement search cost tracks the learned tree/
        // clause shapes; the tolerance rides along for graduation.
        return 0.30;
    }
    match name {
        "subsumption/generalization_round" => 0.30,
        "subsumption/predict_loop" | "subsumption/predict_batch" => 0.25,
        _ => 0.20,
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_subsumption(&mut criterion);
    bench_scaling(&mut criterion);
    let service_trace_len = bench_service(&mut criterion);
    bench_delta(&mut criterion);
    bench_swap(&mut criterion);
    bench_learn(&mut criterion);

    // Machine-readable baseline at the workspace root.
    let results = criterion.take_results();
    for r in &results {
        if r.name.starts_with("service/") && r.median_ns > 0.0 {
            let tuples_per_sec = service_trace_len as f64 / (r.median_ns * 1e-9);
            println!("{}: {:.0} tuples/sec", r.name, tuples_per_sec);
        }
    }
    let mut json = String::from(
        "{\n  \"workload\": \"movies-tiny (IMDB+OMDB, p=0.1); index_build on dirty-vocab ~1k x 1k; predict_* on a 4x-repeated training trace; scaling curves at ~3 sizes per axis\",\n",
    );
    json.push_str("  \"unit\": \"ns (median per iteration)\",\n  \"benches\": {\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"median_ns\": {:.1}, \"samples\": {}, \"tolerance\": {:.2} }}{}\n",
            r.name,
            r.median_ns,
            r.samples,
            gate_tolerance(&r.name),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_subsumption.json");
    std::fs::write(path, &json).expect("write BENCH_subsumption.json");
    println!("wrote {path}");
}
