//! Micro-benchmarks of the individual pipeline stages: similarity operator,
//! similarity-index construction, bottom-clause construction, repaired-clause
//! expansion and θ-subsumption. These are the ablation benches referenced in
//! DESIGN.md (similarity top-k vs full scan is governed by the index's
//! blocking, subsumption cost by the clause size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use dlearn_constraints::MdCatalog;
use dlearn_core::{BottomClauseBuilder, GroundExample, LearnerConfig, PreparedClause};
use dlearn_datagen::{generate_movie_dataset, MovieConfig};
use dlearn_logic::{subsumes, GroundClause, SubsumptionConfig};
use dlearn_relstore::Sym;
use dlearn_similarity::{swg_similarity, IndexConfig, SimilarityIndex};

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("swg_pair", |b| {
        b.iter(|| {
            std::hint::black_box(swg_similarity(
                "Star Wars: Episode IV - 1977",
                "Star Wars Episode Four",
            ))
        })
    });
    for n in [100usize, 400] {
        let left: Vec<Sym> = (0..n)
            .map(|i| Sym::intern(format!("Crimson Harbor Voyage {i}")))
            .collect();
        let right: Vec<Sym> = (0..n)
            .map(|i| Sym::intern(format!("Crimson Harbor Voyage {i} (1987)")))
            .collect();
        group.bench_with_input(BenchmarkId::new("index_build", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(SimilarityIndex::build(
                    &left,
                    &right,
                    &IndexConfig::top_k(5),
                ))
            })
        });
    }
    group.finish();
}

fn bench_learning_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("learning_stages");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(10));

    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 17);
    let task = &dataset.task;
    let config = LearnerConfig::fast();
    let index_config = IndexConfig::top_k(config.km);
    let catalog = MdCatalog::build(&task.mds, &task.database, &index_config);
    let builder = BottomClauseBuilder::new(task, &catalog, &config);

    group.bench_function("bottom_clause_construction", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            std::hint::black_box(builder.build(&task.positives[0], &mut rng))
        })
    });

    let mut rng = StdRng::seed_from_u64(3);
    let bottom = builder.build(&task.positives[0], &mut rng);
    group.bench_function("repaired_clause_expansion", |b| {
        b.iter(|| std::hint::black_box(PreparedClause::prepare(bottom.clone(), &config)))
    });

    let ground = GroundClause::new(&bottom);
    group.bench_function("theta_subsumption_self", |b| {
        b.iter(|| std::hint::black_box(subsumes(&bottom, &ground, &SubsumptionConfig::default())))
    });

    let example = GroundExample::from_clause(task.positives[0].clone(), &bottom, &config);
    group.bench_function("ground_example_preparation", |b| {
        b.iter(|| {
            std::hint::black_box(GroundExample::from_clause(
                example.example.clone(),
                &bottom,
                &config,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_similarity, bench_learning_stages);
criterion_main!(benches);
