//! Criterion benchmarks regenerating every table and figure of the paper's
//! evaluation at smoke scale, plus micro-benchmarks of the pipeline stages.
//!
//! Each benchmark group corresponds to one experiment of the paper:
//! `table4`, `table5`, `table6`, `table7`, `figure1_examples`,
//! `figure1_sample_size`. The absolute numbers differ from the paper (the
//! substrate is a synthetic in-memory database, not the authors' testbed);
//! the relative ordering of the systems is what the benches track.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use dlearn_core::{Engine, LearnerConfig, Strategy};
use dlearn_datagen::{generate_movie_dataset, MovieConfig};
use dlearn_eval::experiments::{self, Scale};

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_tables");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));

    group.bench_function("table4_smoke", |b| {
        b.iter(|| std::hint::black_box(experiments::table4(Scale::Smoke)))
    });
    group.bench_function("table5_smoke", |b| {
        b.iter(|| std::hint::black_box(experiments::table5(Scale::Smoke)))
    });
    group.bench_function("table6_smoke", |b| {
        b.iter(|| std::hint::black_box(experiments::table6(Scale::Smoke)))
    });
    group.bench_function("table7_smoke", |b| {
        b.iter(|| std::hint::black_box(experiments::table7(Scale::Smoke)))
    });
    group.bench_function("figure1_examples_smoke", |b| {
        b.iter(|| std::hint::black_box(experiments::figure1_examples(Scale::Smoke)))
    });
    group.bench_function("figure1_sample_size_smoke", |b| {
        b.iter(|| std::hint::black_box(experiments::figure1_sample_size(Scale::Smoke)))
    });
    group.finish();
}

/// Ablation / per-system micro-benchmarks: a single learning run per system
/// on the tiny movie dataset (the head-to-head that Table 4 aggregates),
/// against one prepared engine session — what the benchmark times is the
/// covering loop, not the (amortized) index construction and grounding.
fn bench_systems(c: &mut Criterion) {
    let mut group = c.benchmark_group("systems_single_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(15));
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 42);
    let engine = Engine::prepare(dataset.task.clone(), LearnerConfig::fast()).expect("valid task");
    for strategy in Strategy::all() {
        group.bench_function(strategy.name(), |b| {
            b.iter(|| std::hint::black_box(engine.learn(strategy).expect("learn")))
        });
    }
    group.finish();
}

/// Ablation: the cost of increasing km (the number of similarity matches per
/// value), the knob Table 4 sweeps. Each km is its own session (the index
/// depends on km), prepared once outside the timed loop.
fn bench_km_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("km_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(15));
    let dataset = generate_movie_dataset(&MovieConfig::tiny(), 7);
    for km in [1usize, 2, 5, 10] {
        group.bench_function(format!("km_{km}"), |b| {
            let engine = Engine::prepare(dataset.task.clone(), LearnerConfig::fast().with_km(km))
                .expect("valid task");
            b.iter(|| std::hint::black_box(engine.learn(Strategy::DLearn).expect("learn")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables, bench_systems, bench_km_ablation);
criterion_main!(benches);

#[allow(dead_code)]
fn unused(c: &mut Criterion) {
    configure(c);
}
