//! Consistency checking for sets of CFDs.
//!
//! Unlike plain FDs, a set of CFDs can be *inconsistent*: no non-empty
//! relation can satisfy all of them (Section 2.3, e.g. `(A → B, a1 || b1)`
//! and `(B → A, b1 || a2)` over `R(A, B)`). Cleaning only makes sense for a
//! consistent set, so the learner validates its input CFDs with this check.
//!
//! We implement the pairwise chase-style test from Bohannon et al. (2007) for
//! CFDs with constant patterns: two CFDs conflict when the constants forced
//! by one contradict the pattern required by the other on a hypothetical
//! single tuple.

use std::collections::HashMap;

use dlearn_relstore::{Sym, Value};

use crate::cfd::{Cfd, PatternValue};

/// A detected inconsistency between two CFDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistency {
    /// Name of the first CFD.
    pub first: String,
    /// Name of the second CFD.
    pub second: String,
    /// Attribute whose forced values conflict.
    pub attribute: String,
}

/// Check a set of CFDs for pairwise inconsistencies.
///
/// The test builds, for each ordered pair of CFDs over the same relation, a
/// hypothetical tuple that satisfies the first CFD's pattern with its forced
/// RHS constant, and checks whether the second CFD then forces a different
/// constant on an attribute that the first CFD pins. Only conflicts that are
/// certain (constant vs. different constant) are reported.
pub fn find_inconsistencies(cfds: &[Cfd]) -> Vec<Inconsistency> {
    let mut found = Vec::new();
    for (i, a) in cfds.iter().enumerate() {
        for b in cfds.iter().skip(i + 1) {
            if a.relation != b.relation {
                continue;
            }
            if let Some(attr) = conflicts(a, b).or_else(|| conflicts(b, a)) {
                found.push(Inconsistency {
                    first: a.name.clone(),
                    second: b.name.clone(),
                    attribute: attr,
                });
            }
        }
    }
    found
}

/// `true` when the set of CFDs is consistent (no pairwise conflict detected).
pub fn is_consistent(cfds: &[Cfd]) -> bool {
    find_inconsistencies(cfds).is_empty()
}

/// Does applying `a` (assuming its pattern) force a value that contradicts
/// what `b` requires?
fn conflicts(a: &Cfd, b: &Cfd) -> Option<String> {
    // Constants pinned by a's LHS pattern plus its RHS constant (if any).
    let mut pinned: HashMap<Sym, &Value> = HashMap::new();
    for (attr, pat) in a.lhs.iter().zip(a.lhs_pattern.iter()) {
        if let PatternValue::Const(v) = pat {
            pinned.insert(*attr, v);
        }
    }
    if let PatternValue::Const(v) = &a.rhs_pattern {
        pinned.insert(a.rhs, v);
    }
    if pinned.is_empty() {
        return None;
    }
    // b applies when its LHS pattern is compatible with the pinned values;
    // all of b's constant LHS attributes must be pinned to the same constant
    // for the conflict to be certain.
    let mut b_applies = true;
    for (attr, pat) in b.lhs.iter().zip(b.lhs_pattern.iter()) {
        if let PatternValue::Const(v) = pat {
            match pinned.get(attr) {
                Some(existing) if *existing == v => {}
                _ => {
                    b_applies = false;
                    break;
                }
            }
        }
    }
    if !b_applies {
        return None;
    }
    // b then forces its RHS pattern constant; conflict if a pins a different
    // constant on the same attribute.
    if let PatternValue::Const(forced) = &b.rhs_pattern {
        if let Some(existing) = pinned.get(&b.rhs) {
            if *existing != forced {
                return Some(b.rhs.as_str().to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's example: (A → B, a1 || b1) and (B → A, b1 || a2) are
    /// inconsistent.
    #[test]
    fn paper_inconsistency_example_is_detected() {
        let c1 = Cfd::with_pattern(
            "c1",
            "r",
            vec!["a"],
            "b",
            vec![PatternValue::Const(Value::str("a1"))],
            PatternValue::Const(Value::str("b1")),
        );
        let c2 = Cfd::with_pattern(
            "c2",
            "r",
            vec!["b"],
            "a",
            vec![PatternValue::Const(Value::str("b1"))],
            PatternValue::Const(Value::str("a2")),
        );
        let issues = find_inconsistencies(&[c1, c2]);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].attribute, "a");
        assert!(
            is_consistent(&[]),
            "the empty set of CFDs is trivially consistent"
        );
    }

    #[test]
    fn plain_fds_are_always_consistent() {
        let c1 = Cfd::fd("c1", "r", vec!["a"], "b");
        let c2 = Cfd::fd("c2", "r", vec!["b"], "a");
        assert!(is_consistent(&[c1, c2]));
    }

    #[test]
    fn cfds_over_different_relations_never_conflict() {
        let c1 = Cfd::with_pattern(
            "c1",
            "r",
            vec!["a"],
            "b",
            vec![PatternValue::Const(Value::str("a1"))],
            PatternValue::Const(Value::str("b1")),
        );
        let c2 = Cfd::with_pattern(
            "c2",
            "s",
            vec!["b"],
            "a",
            vec![PatternValue::Const(Value::str("b1"))],
            PatternValue::Const(Value::str("a2")),
        );
        assert!(is_consistent(&[c1, c2]));
    }

    #[test]
    fn compatible_constant_cfds_are_consistent() {
        let c1 = Cfd::with_pattern(
            "c1",
            "r",
            vec!["a"],
            "b",
            vec![PatternValue::Const(Value::str("a1"))],
            PatternValue::Const(Value::str("b1")),
        );
        let c2 = Cfd::with_pattern(
            "c2",
            "r",
            vec!["b"],
            "c",
            vec![PatternValue::Const(Value::str("b1"))],
            PatternValue::Const(Value::str("c1")),
        );
        assert!(is_consistent(&[c1, c2]));
    }
}
