//! Database repairs.
//!
//! Two repair procedures are provided:
//!
//! * [`minimal_cfd_repair`] — the *minimal repair* of CFD violations used by
//!   the DLearn-Repaired baseline (Section 6.1.3): every group of tuples that
//!   agrees on a CFD's left-hand side is forced to a single right-hand-side
//!   value (the pattern constant when the CFD specifies one, otherwise the
//!   most frequent value in the group), iterated to a fixpoint across CFDs.
//!   This commits to one repair and therefore loses the alternative repairs
//!   that DLearn itself keeps.
//! * [`enforce_md_best_match`] — the value unification performed by the
//!   Castor-Clean baseline: every value of the right-hand identified
//!   attribute of an MD is replaced by its single most similar left-hand
//!   value, producing a database where the heterogeneity has been resolved
//!   by a hard (and possibly wrong) choice.

use std::collections::HashMap;

use dlearn_relstore::{Database, RelId, Sym, Value};
use dlearn_similarity::{IndexConfig, SimilarityIndex};

use crate::cfd::{Cfd, PatternValue};
use crate::md::MatchingDependency;

/// Statistics about a repair pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Number of attribute values modified.
    pub values_changed: usize,
    /// Number of fixpoint iterations performed.
    pub iterations: usize,
}

/// Union-find over tuple ids, used to compute the connected components of
/// tuples whose right-hand-side values must be equalized.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Produce the minimal CFD repair of a database (value modifications only).
///
/// For every right-hand-side attribute, tuples connected through any CFD
/// group (same LHS value, matching LHS pattern) are equalized in one step:
/// each connected component takes the pattern constant when a CFD forces
/// one, otherwise its most frequent current value. The outer loop repeats
/// because repairing one CFD can change another CFD's grouping.
///
/// Returns the repaired database and statistics. The input is not modified.
pub fn minimal_cfd_repair(database: &Database, cfds: &[Cfd]) -> (Database, RepairStats) {
    let mut db = database.clone();
    let mut stats = RepairStats::default();
    let max_rounds = 16;
    for round in 0..max_rounds {
        stats.iterations = round + 1;
        let mut changed_this_round = 0usize;

        // Group the CFDs by (relation, rhs attribute): their repairs interact
        // directly, so they are equalized together through one union-find.
        let mut buckets: HashMap<(RelId, Sym), Vec<&Cfd>> = HashMap::new();
        for cfd in cfds {
            buckets
                .entry((cfd.relation, cfd.rhs))
                .or_default()
                .push(cfd);
        }

        for (&(relation_name, _rhs_attr), group_cfds) in &buckets {
            let Some(relation) = db.relation(relation_name) else {
                continue;
            };
            let rhs_index = group_cfds[0].rhs_index(relation);
            let n = relation.len();
            if n == 0 {
                continue;
            }
            let mut uf = UnionFind::new(n);
            // Forced constants per tuple (from constant RHS patterns).
            let mut forced: HashMap<usize, Value> = HashMap::new();

            for cfd in group_cfds {
                let lhs_indices = cfd.lhs_indices(relation);
                let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (id, tuple) in relation.iter() {
                    if !cfd.lhs_matches(tuple, &lhs_indices) {
                        continue;
                    }
                    let key: Vec<Value> = lhs_indices
                        .iter()
                        .map(|&i| tuple.value(i).cloned().unwrap_or(Value::Null))
                        .collect();
                    groups.entry(key).or_default().push(id);
                }
                for ids in groups.values() {
                    for w in ids.windows(2) {
                        uf.union(w[0], w[1]);
                    }
                    if let PatternValue::Const(c) = &cfd.rhs_pattern {
                        for &id in ids {
                            forced.insert(id, *c);
                        }
                    }
                }
            }

            // Collect components and choose a target value per component.
            let mut components: HashMap<usize, Vec<usize>> = HashMap::new();
            for id in 0..n {
                components.entry(uf.find(id)).or_default().push(id);
            }
            let mut updates: Vec<(usize, Value)> = Vec::new();
            for ids in components.values() {
                if ids.len() < 2 && !ids.iter().any(|id| forced.contains_key(id)) {
                    continue;
                }
                let target = if let Some(c) = ids.iter().find_map(|id| forced.get(id)) {
                    *c
                } else {
                    let mut counts: HashMap<Value, usize> = HashMap::new();
                    for &id in ids {
                        if let Some(v) = relation.tuple(id).and_then(|t| t.value(rhs_index)) {
                            *counts.entry(*v).or_default() += 1;
                        }
                    }
                    match counts
                        .into_iter()
                        .max_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
                    {
                        Some((v, _)) => v,
                        None => continue,
                    }
                };
                for &id in ids {
                    let current = relation.tuple(id).and_then(|t| t.value(rhs_index));
                    if current != Some(&target) {
                        updates.push((id, target));
                    }
                }
            }

            if updates.is_empty() {
                continue;
            }
            let rel_mut = db.relation_mut(relation_name).expect("relation exists");
            for (id, value) in updates {
                rel_mut
                    .update_value(id, rhs_index, value)
                    .expect("validated update");
                changed_this_round += 1;
            }
        }

        stats.values_changed += changed_this_round;
        if changed_this_round == 0 {
            break;
        }
    }
    (db, stats)
}

/// Verify that every CFD is satisfied by the database.
pub fn all_cfds_satisfied(database: &Database, cfds: &[Cfd]) -> bool {
    cfds.iter().all(|cfd| {
        database
            .relation(cfd.relation)
            .map(|r| cfd.satisfied_by(r))
            .unwrap_or(true)
    })
}

/// Replace every value of the MD's right-hand identified attribute by its
/// most similar value from the left-hand side (Castor-Clean's preprocessing).
///
/// Returns the rewritten database and the number of replaced values.
pub fn enforce_md_best_match(
    database: &Database,
    md: &MatchingDependency,
    index_config: &IndexConfig,
) -> (Database, usize) {
    let mut db = database.clone();
    let Some(left_rel) = database.relation(md.left_relation) else {
        return (db, 0);
    };
    let Some(right_rel) = database.relation(md.right_relation) else {
        return (db, 0);
    };
    let Some(left_idx) = left_rel.schema().attribute_pos(md.identify_left) else {
        return (db, 0);
    };
    let Some(right_idx) = right_rel.schema().attribute_pos(md.identify_right) else {
        return (db, 0);
    };

    let left_values: Vec<Sym> = left_rel
        .distinct_values(left_idx)
        .into_iter()
        .filter_map(Value::as_sym)
        .collect();
    let right_values: Vec<Sym> = right_rel
        .distinct_values(right_idx)
        .into_iter()
        .filter_map(Value::as_sym)
        .collect();

    // Best (single) match per right value against the left column.
    let index = SimilarityIndex::build(&right_values, &left_values, index_config);

    let mut replacements = 0usize;
    let updates: Vec<(usize, Value)> = {
        let right_rel = db.relation(md.right_relation).expect("relation exists");
        right_rel
            .iter()
            .filter_map(|(id, tuple)| {
                let current = tuple.value(right_idx)?.as_sym()?;
                let best = index.best_match_left(current)?;
                if best.value != current {
                    Some((id, Value::Str(best.value)))
                } else {
                    None
                }
            })
            .collect()
    };
    let right_mut = db.relation_mut(md.right_relation).expect("relation exists");
    for (id, value) in updates {
        right_mut
            .update_value(id, right_idx, value)
            .expect("validated update");
        replacements += 1;
    }
    (db, replacements)
}

/// [`enforce_md_best_match`] driven by a *prebuilt* MD index instead of a
/// fresh per-call similarity build: every value of the MD's right-hand
/// identified attribute is replaced by its best match recorded in the index
/// (the first entry of its right-to-left match list). Prepared sessions use
/// this so Castor-Clean preprocessing reuses the index built once at
/// `Engine::prepare` time.
///
/// Not pair-for-pair identical to [`enforce_md_best_match`]: the prebuilt
/// index's right-to-left lists are derived from the pairs that survived
/// each *left* value's top-k truncation, so a right value whose true best
/// left match was truncated out unifies with its best *stored* partner
/// (or stays unchanged when no pair survived). The dedicated build in
/// [`enforce_md_best_match`] probes from the right side and always finds
/// the true best left match.
pub fn enforce_md_best_match_with_index(
    database: &Database,
    md_index: &crate::md_index::MdIndex,
) -> (Database, usize) {
    let md = &md_index.md;
    let mut db = database.clone();
    let Some(right_rel) = database.relation(md.right_relation) else {
        return (db, 0);
    };
    let Some(right_idx) = right_rel.schema().attribute_pos(md.identify_right) else {
        return (db, 0);
    };
    let updates: Vec<(usize, Value)> = right_rel
        .iter()
        .filter_map(|(id, tuple)| {
            let current = tuple.value(right_idx)?.as_sym()?;
            let best = md_index.matches_from_right(current).first()?;
            if best.value != current {
                Some((id, Value::Str(best.value)))
            } else {
                None
            }
        })
        .collect();
    let replacements = updates.len();
    let right_mut = db.relation_mut(md.right_relation).expect("relation exists");
    for (id, value) in updates {
        right_mut
            .update_value(id, right_idx, value)
            .expect("validated update");
    }
    (db, replacements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_relstore::{DatabaseBuilder, RelationBuilder};

    fn dirty_locale_db() -> Database {
        DatabaseBuilder::new()
            .relation(
                RelationBuilder::new("mov2locale")
                    .str_attr("title")
                    .str_attr("language")
                    .str_attr("country")
                    .build(),
            )
            .row("mov2locale", vec!["Bait", "English", "USA"])
            .row("mov2locale", vec!["Bait", "English", "Ireland"])
            .row("mov2locale", vec!["Bait", "English", "USA"])
            .row("mov2locale", vec!["Rec", "Spanish", "Spain"])
            .build()
    }

    fn phi1() -> Cfd {
        Cfd::with_pattern(
            "phi1",
            "mov2locale",
            vec!["title", "language"],
            "country",
            vec![
                PatternValue::Any,
                PatternValue::Const(Value::str("English")),
            ],
            PatternValue::Any,
        )
    }

    #[test]
    fn minimal_repair_eliminates_violations() {
        let db = dirty_locale_db();
        let cfds = vec![phi1()];
        assert!(!all_cfds_satisfied(&db, &cfds));
        let (repaired, stats) = minimal_cfd_repair(&db, &cfds);
        assert!(all_cfds_satisfied(&repaired, &cfds));
        // The majority value (USA) wins, so exactly one tuple changes.
        assert_eq!(stats.values_changed, 1);
        let rel = repaired.relation("mov2locale").unwrap();
        let usa = rel
            .select_eq_by_name("country", &Value::str("USA"))
            .unwrap();
        assert_eq!(usa.len(), 3);
    }

    #[test]
    fn repair_is_idempotent() {
        let db = dirty_locale_db();
        let cfds = vec![phi1()];
        let (repaired, _) = minimal_cfd_repair(&db, &cfds);
        let (again, stats) = minimal_cfd_repair(&repaired, &cfds);
        assert_eq!(stats.values_changed, 0);
        assert_eq!(again.summary(), repaired.summary());
    }

    #[test]
    fn rhs_pattern_constant_forces_that_value() {
        let db = dirty_locale_db();
        let cfd = Cfd::with_pattern(
            "force_usa",
            "mov2locale",
            vec!["language"],
            "country",
            vec![PatternValue::Const(Value::str("English"))],
            PatternValue::Const(Value::str("USA")),
        );
        let (repaired, _) = minimal_cfd_repair(&db, std::slice::from_ref(&cfd));
        assert!(all_cfds_satisfied(&repaired, &[cfd]));
        let rel = repaired.relation("mov2locale").unwrap();
        assert_eq!(
            rel.select_eq_by_name("country", &Value::str("USA"))
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn untouched_relations_are_preserved() {
        let db = dirty_locale_db();
        let (repaired, _) = minimal_cfd_repair(&db, &[phi1()]);
        let rel = repaired.relation("mov2locale").unwrap();
        assert_eq!(
            rel.select_eq_by_name("country", &Value::str("Spain"))
                .unwrap()
                .len(),
            1,
            "the Spanish tuple does not participate in any violation"
        );
    }

    #[test]
    fn md_best_match_rewrites_right_values() {
        let db = DatabaseBuilder::new()
            .relation(
                RelationBuilder::new("movies")
                    .int_attr("id")
                    .str_attr("title")
                    .build(),
            )
            .relation(
                RelationBuilder::new("highBudgetMovies")
                    .str_attr("title")
                    .build(),
            )
            .row("movies", vec![Value::int(1), Value::str("Superbad (2007)")])
            .row(
                "movies",
                vec![Value::int(2), Value::str("Zoolander (2001)")],
            )
            .row("highBudgetMovies", vec![Value::str("Superbad")])
            .row("highBudgetMovies", vec![Value::str("Zoolander")])
            .build();
        let md =
            MatchingDependency::simple("titles", "movies", "title", "highBudgetMovies", "title");
        let config = IndexConfig {
            top_k: 1,
            ..IndexConfig::default()
        };
        let (clean, replaced) = enforce_md_best_match(&db, &md, &config);
        assert_eq!(replaced, 2);
        let rel = clean.relation("highBudgetMovies").unwrap();
        assert_eq!(
            rel.select_eq_by_name("title", &Value::str("Superbad (2007)"))
                .unwrap()
                .len(),
            1
        );
        // The original database is untouched.
        assert_eq!(
            db.relation("highBudgetMovies")
                .unwrap()
                .select_eq_by_name("title", &Value::str("Superbad"))
                .unwrap()
                .len(),
            1
        );
    }
}
