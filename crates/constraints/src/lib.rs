//! # dlearn-constraints — declarative data-quality constraints
//!
//! DLearn expresses the properties of clean data with two classes of
//! declarative constraints and reasons about their possible enforcements
//! during learning:
//!
//! * [`MatchingDependency`] — matching dependencies (Section 2.2), which say
//!   that sufficiently similar values of two relations refer to the same
//!   real-world value and should be identified.
//! * [`Cfd`] — conditional functional dependencies (Section 2.3), functional
//!   dependencies restricted by a tuple pattern, whose violations capture
//!   integrity errors inside a relation.
//!
//! The crate also provides CFD consistency checking
//! ([`consistency::find_inconsistencies`]), violation detection, the
//! *minimal repair* of a database ([`repair::minimal_cfd_repair`], used by
//! the DLearn-Repaired baseline), the best-match value unification used by
//! the Castor-Clean baseline ([`repair::enforce_md_best_match`]), and the
//! per-MD precomputed similarity catalogs ([`MdCatalog`]) consumed by
//! bottom-clause construction.

#![warn(missing_docs)]

pub mod cfd;
pub mod consistency;
pub mod md;
pub mod md_index;
pub mod repair;

pub use cfd::{Cfd, PatternValue};
pub use consistency::{find_inconsistencies, is_consistent, Inconsistency};
pub use md::{MatchingDependency, SimilarityPair};
pub use md_index::{sym_column, MdCatalog, MdIndex};
pub use repair::{
    all_cfds_satisfied, enforce_md_best_match, enforce_md_best_match_with_index,
    minimal_cfd_repair, RepairStats,
};

#[cfg(test)]
mod proptests {
    //! Property-style tests over seeded random relations (formerly
    //! `proptest` strategies; driven by the vendored deterministic RNG).

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use dlearn_relstore::{tuple, Attribute, Database, Relation, RelationSchema, Value};

    use crate::cfd::Cfd;
    use crate::repair::{all_cfds_satisfied, minimal_cfd_repair};

    const CASES: usize = 100;

    /// A short random string over a two-letter alphabet (dense collisions,
    /// so FD violations are common).
    fn short(rng: &mut StdRng, alphabet: [char; 2]) -> String {
        let len = rng.gen_range(1..3usize);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..2usize)])
            .collect()
    }

    fn random_db(rng: &mut StdRng, max_rows: usize) -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "r",
            vec![
                Attribute::str("a"),
                Attribute::str("b"),
                Attribute::str("c"),
            ],
        ))
        .unwrap();
        for _ in 0..rng.gen_range(0..max_rows) {
            let a = short(rng, ['a', 'b']);
            let b = short(rng, ['c', 'd']);
            let c = short(rng, ['e', 'f']);
            db.insert(
                "r",
                tuple(vec![Value::str(a), Value::str(b), Value::str(c)]),
            )
            .unwrap();
        }
        db
    }

    /// The minimal repair of any database w.r.t. a plain FD always satisfies
    /// the FD afterwards and never changes the tuple count.
    #[test]
    fn minimal_repair_reaches_a_consistent_instance() {
        let mut rng = StdRng::seed_from_u64(0x2e9a1);
        for _ in 0..CASES {
            let db = random_db(&mut rng, 20);
            let cfds = vec![
                Cfd::fd("fd", "r", vec!["a"], "c"),
                Cfd::fd("fd2", "r", vec!["b"], "c"),
            ];
            let (repaired, _) = minimal_cfd_repair(&db, &cfds);
            assert!(all_cfds_satisfied(&repaired, &cfds));
            assert_eq!(repaired.total_tuples(), db.total_tuples());
        }
    }

    /// Violation detection is symmetric in the pair and never reports a
    /// tuple violating with itself.
    #[test]
    fn violations_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(0x51c4);
        for _ in 0..CASES {
            let db = random_db(&mut rng, 16);
            let cfd = Cfd::fd("fd", "r", vec!["a"], "b");
            let rel: &Relation = db.relation("r").unwrap();
            for (i, j) in cfd.find_violations(rel) {
                assert!(i < j);
                assert!(rel.tuple(i).is_some() && rel.tuple(j).is_some());
            }
        }
    }
}
