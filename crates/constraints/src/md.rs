//! Matching dependencies (MDs).
//!
//! An MD `R1[A1..n] ≈ R2[B1..n] → R1[C] ⇌ R2[D]` states that whenever the
//! values of the attribute lists `A` and `B` of two tuples are pairwise
//! similar, the values of `C` and `D` refer to the same real-world value and
//! should be identified (Section 2.2 of the paper).

use std::fmt;

use dlearn_relstore::{RelId, Schema, StoreError, Sym};

/// One similarity comparison of an MD premise: `R1[left] ≈ R2[right]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimilarityPair {
    /// Attribute of the left relation (interned).
    pub left: Sym,
    /// Attribute of the right relation (interned).
    pub right: Sym,
}

/// A matching dependency.
///
/// Relation and attribute references are interned handles, so the
/// bottom-clause walk comparing frontier relations against MD sides does so
/// with integer equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingDependency {
    /// Human-readable name used in reports.
    pub name: String,
    /// Left relation (`R1`).
    pub left_relation: RelId,
    /// Right relation (`R2`).
    pub right_relation: RelId,
    /// The similarity premise `R1[A_i] ≈ R2[B_i]`.
    pub premises: Vec<SimilarityPair>,
    /// The identified attribute of the left relation (`C`).
    pub identify_left: Sym,
    /// The identified attribute of the right relation (`D`).
    pub identify_right: Sym,
}

impl MatchingDependency {
    /// Convenience constructor for the common single-attribute MD
    /// `R1[A] ≈ R2[B] → R1[A] ⇌ R2[B]` (e.g. matching titles).
    pub fn simple(
        name: impl Into<String>,
        left_relation: impl Into<RelId>,
        left_attr: impl AsRef<str>,
        right_relation: impl Into<RelId>,
        right_attr: impl AsRef<str>,
    ) -> Self {
        let left_attr = Sym::intern(left_attr);
        let right_attr = Sym::intern(right_attr);
        MatchingDependency {
            name: name.into(),
            left_relation: left_relation.into(),
            right_relation: right_relation.into(),
            premises: vec![SimilarityPair {
                left: left_attr,
                right: right_attr,
            }],
            identify_left: left_attr,
            identify_right: right_attr,
        }
    }

    /// Validate the MD against a database schema: relations and attributes
    /// must exist.
    pub fn validate(&self, schema: &Schema) -> Result<(), StoreError> {
        let left = schema.require_relation(self.left_relation)?;
        let right = schema.require_relation(self.right_relation)?;
        for p in &self.premises {
            left.require_attribute_index(p.left.as_str())?;
            right.require_attribute_index(p.right.as_str())?;
        }
        left.require_attribute_index(self.identify_left.as_str())?;
        right.require_attribute_index(self.identify_right.as_str())?;
        Ok(())
    }

    /// `true` when the MD's premise involves the given relation.
    pub fn involves(&self, relation: impl Into<RelId>) -> bool {
        let id = relation.into();
        self.left_relation == id || self.right_relation == id
    }
}

impl fmt::Display for MatchingDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let premise = self
            .premises
            .iter()
            .map(|p| {
                format!(
                    "{}[{}] ≈ {}[{}]",
                    self.left_relation, p.left, self.right_relation, p.right
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        write!(
            f,
            "{premise} → {}[{}] ⇌ {}[{}]",
            self.left_relation, self.identify_left, self.right_relation, self.identify_right
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_relstore::{Attribute, RelationSchema};

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation(RelationSchema::new(
            "movies",
            vec![
                Attribute::int("id"),
                Attribute::str("title"),
                Attribute::int("year"),
            ],
        ))
        .unwrap();
        s.add_relation(RelationSchema::new(
            "highBudgetMovies",
            vec![Attribute::str("title")],
        ))
        .unwrap();
        s
    }

    #[test]
    fn simple_md_validates_against_schema() {
        let md =
            MatchingDependency::simple("titles", "movies", "title", "highBudgetMovies", "title");
        assert!(md.validate(&schema()).is_ok());
        assert!(md.involves("movies"));
        assert!(md.involves("highBudgetMovies"));
        assert!(!md.involves("mov2genres"));
    }

    #[test]
    fn validation_rejects_unknown_attribute() {
        let md = MatchingDependency::simple("bad", "movies", "nope", "highBudgetMovies", "title");
        assert!(md.validate(&schema()).is_err());
        let md = MatchingDependency::simple("bad", "movies", "title", "missingRel", "title");
        assert!(md.validate(&schema()).is_err());
    }

    #[test]
    fn display_uses_paper_notation() {
        let md =
            MatchingDependency::simple("titles", "movies", "title", "highBudgetMovies", "title");
        let s = md.to_string();
        assert!(s.contains("movies[title] ≈ highBudgetMovies[title]"), "{s}");
        assert!(s.contains("⇌"), "{s}");
    }
}
