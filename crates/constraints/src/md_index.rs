//! Per-MD precomputed similarity match catalogs.
//!
//! For every matching dependency of a learning task, DLearn precomputes the
//! pairs of similar values between the MD's two sides (Section 5). The
//! [`MdCatalog`] owns one [`SimilarityIndex`] per MD, built from the distinct
//! values of the premise attributes in the database, and answers the
//! similarity-search probes (`ψ_{B ≈ M}(R2)`) issued by bottom-clause
//! construction.

use dlearn_relstore::{Database, RelId, Sym, Value};
use dlearn_similarity::{IndexConfig, Match, QuerySym, SimilarityIndex};

use crate::md::MatchingDependency;

/// The similarity index of a single MD.
#[derive(Debug, Clone)]
pub struct MdIndex {
    /// Position of the MD in the task's MD list.
    pub md_position: usize,
    /// The matching dependency.
    pub md: MatchingDependency,
    index: SimilarityIndex,
}

impl MdIndex {
    /// Build the index for one MD over a database.
    pub fn build(
        md_position: usize,
        md: &MatchingDependency,
        db: &Database,
        config: &IndexConfig,
    ) -> Self {
        // The premise of our MDs compares the identified attributes (the
        // common single-attribute case); we index the identified columns.
        let left_values = sym_column(db, md.left_relation, md.identify_left);
        let right_values = sym_column(db, md.right_relation, md.identify_right);
        let index = SimilarityIndex::build(&left_values, &right_values, config);
        MdIndex {
            md_position,
            md: md.clone(),
            index,
        }
    }

    /// Wrap an already-built similarity index (e.g. one maintained
    /// incrementally under deltas) as the index of the given MD.
    pub fn from_parts(md_position: usize, md: MatchingDependency, index: SimilarityIndex) -> Self {
        MdIndex {
            md_position,
            md,
            index,
        }
    }

    /// The underlying similarity index.
    pub fn index(&self) -> &SimilarityIndex {
        &self.index
    }

    /// Matches of a value of the left relation's identified attribute.
    pub fn matches_from_left(&self, value: impl QuerySym) -> &[Match] {
        self.index.matches_left(value)
    }

    /// Matches of a value of the right relation's identified attribute.
    pub fn matches_from_right(&self, value: impl QuerySym) -> &[Match] {
        self.index.matches_right(value)
    }

    /// Matches of a value appearing in the given relation (which must be one
    /// of the MD's two relations), looking across to the other side.
    pub fn matches_for(&self, relation: impl Into<RelId>, value: impl QuerySym) -> &[Match] {
        let relation = relation.into();
        if relation == self.md.left_relation {
            self.matches_from_left(value)
        } else if relation == self.md.right_relation {
            self.matches_from_right(value)
        } else {
            &[]
        }
    }

    /// Whether two values are similar according to this MD's index.
    pub fn are_matched(&self, left: impl QuerySym, right: impl QuerySym) -> bool {
        self.index.are_matched(left, right)
    }

    /// Total number of match pairs in the index.
    pub fn pair_count(&self) -> usize {
        self.index.pair_count()
    }

    /// Build an *exact-join* index for one MD over a database: values match
    /// iff their normalized strings are equal. No alignment is run.
    pub fn build_exact(
        md_position: usize,
        md: &MatchingDependency,
        db: &Database,
        top_k: usize,
    ) -> Self {
        let left_values = sym_column(db, md.left_relation, md.identify_left);
        let right_values = sym_column(db, md.right_relation, md.identify_right);
        MdIndex {
            md_position,
            md: md.clone(),
            index: SimilarityIndex::exact_normalized(&left_values, &right_values, top_k),
        }
    }

    /// Derive a stricter index keeping only pairs with `score >= min_score`
    /// (see [`SimilarityIndex::filter_min_score`] for when this equals a
    /// fresh build at the higher threshold).
    pub fn filter_min_score(&self, min_score: f64) -> Self {
        MdIndex {
            md_position: self.md_position,
            md: self.md.clone(),
            index: self.index.filter_min_score(min_score),
        }
    }
}

/// All MD indexes of a learning task.
#[derive(Debug, Clone, Default)]
pub struct MdCatalog {
    indexes: Vec<MdIndex>,
}

impl MdCatalog {
    /// Build the catalog for a list of MDs over a database.
    pub fn build(mds: &[MatchingDependency], db: &Database, config: &IndexConfig) -> Self {
        let indexes = mds
            .iter()
            .enumerate()
            .map(|(i, md)| MdIndex::build(i, md, db, config))
            .collect();
        MdCatalog { indexes }
    }

    /// Assemble a catalog from already-built per-MD indexes (e.g. indexes
    /// maintained incrementally under deltas).
    pub fn from_indexes(indexes: Vec<MdIndex>) -> Self {
        MdCatalog { indexes }
    }

    /// The per-MD indexes.
    pub fn indexes(&self) -> &[MdIndex] {
        &self.indexes
    }

    /// Indexes whose MD involves the given relation.
    pub fn involving(&self, relation: impl Into<RelId>) -> impl Iterator<Item = &MdIndex> {
        let id = relation.into();
        self.indexes.iter().filter(move |idx| idx.md.involves(id))
    }

    /// Number of MDs in the catalog.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// `true` when the catalog holds no MDs.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Build an exact-join catalog (normalized-string equality, no
    /// alignment) — the catalog shape the Castor-Clean baseline needs after
    /// unifying values across sources.
    pub fn build_exact(mds: &[MatchingDependency], db: &Database, top_k: usize) -> Self {
        MdCatalog {
            indexes: mds
                .iter()
                .enumerate()
                .map(|(i, md)| MdIndex::build_exact(i, md, db, top_k))
                .collect(),
        }
    }

    /// Derive a stricter catalog keeping only pairs with
    /// `score >= min_score`, without rebuilding any index.
    pub fn filter_min_score(&self, min_score: f64) -> Self {
        MdCatalog {
            indexes: self
                .indexes
                .iter()
                .map(|idx| idx.filter_min_score(min_score))
                .collect(),
        }
    }
}

/// The distinct string values of one relation attribute — the column a
/// similarity index is built over (empty when the relation or attribute is
/// missing, or the column is not string-typed).
pub fn sym_column(db: &Database, relation: RelId, attribute: Sym) -> Vec<Sym> {
    let Some(rel) = db.relation(relation) else {
        return Vec::new();
    };
    let Some(idx) = rel.schema().attribute_pos(attribute) else {
        return Vec::new();
    };
    rel.distinct_values(idx)
        .into_iter()
        .filter_map(Value::as_sym)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_relstore::{DatabaseBuilder, RelationBuilder};

    fn movie_db() -> Database {
        DatabaseBuilder::new()
            .relation(
                RelationBuilder::new("movies")
                    .int_attr("id")
                    .str_attr("title")
                    .build(),
            )
            .relation(
                RelationBuilder::new("highBudgetMovies")
                    .str_attr("title")
                    .build(),
            )
            .row(
                "movies",
                vec![Value::int(1), Value::str("Star Wars: Episode IV - 1977")],
            )
            .row(
                "movies",
                vec![Value::int(2), Value::str("Star Wars: Episode III - 2005")],
            )
            .row("movies", vec![Value::int(3), Value::str("Superbad (2007)")])
            .row("highBudgetMovies", vec![Value::str("Star Wars")])
            .row("highBudgetMovies", vec![Value::str("Superbad")])
            .build()
    }

    fn titles_md() -> MatchingDependency {
        MatchingDependency::simple("titles", "movies", "title", "highBudgetMovies", "title")
    }

    #[test]
    fn catalog_builds_one_index_per_md() {
        let db = movie_db();
        let catalog = MdCatalog::build(&[titles_md()], &db, &IndexConfig::top_k(5));
        assert_eq!(catalog.len(), 1);
        assert!(!catalog.is_empty());
        assert_eq!(catalog.involving("movies").count(), 1);
        assert_eq!(catalog.involving("unrelated").count(), 0);
    }

    #[test]
    fn star_wars_matches_both_episodes() {
        let db = movie_db();
        let catalog = MdCatalog::build(&[titles_md()], &db, &IndexConfig::top_k(5));
        let idx = &catalog.indexes()[0];
        let matches = idx.matches_from_right("Star Wars");
        assert_eq!(matches.len(), 2, "{matches:?}");
        assert!(idx.are_matched("Star Wars: Episode IV - 1977", "Star Wars"));
    }

    #[test]
    fn km_one_keeps_only_the_best_candidate() {
        let db = movie_db();
        let catalog = MdCatalog::build(&[titles_md()], &db, &IndexConfig::top_k(1));
        let idx = &catalog.indexes()[0];
        assert!(idx.matches_from_right("Star Wars").len() <= 1);
    }

    #[test]
    fn matches_for_dispatches_on_relation_side() {
        let db = movie_db();
        let catalog = MdCatalog::build(&[titles_md()], &db, &IndexConfig::top_k(5));
        let idx = &catalog.indexes()[0];
        assert!(!idx.matches_for("highBudgetMovies", "Superbad").is_empty());
        assert!(!idx.matches_for("movies", "Superbad (2007)").is_empty());
        assert!(idx.matches_for("other", "Superbad").is_empty());
    }
}
