//! Conditional functional dependencies (CFDs).
//!
//! A CFD `(X → A, tp)` over relation `R` extends the FD `X → A` with a tuple
//! pattern `tp` over `X ∪ {A}`: for every pair of tuples that agree on `X`
//! and match the pattern on `X`, their `A` values must be equal and match the
//! pattern on `A` (Section 2.3). We assume, as the paper does, that every CFD
//! has a single attribute on its right-hand side.

use std::fmt;

use dlearn_relstore::{RelId, Relation, Schema, StoreError, Sym, Tuple, TupleId, Value};

/// A pattern entry: a constant or the unnamed wildcard `-`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternValue {
    /// Any value (`-` in the paper's notation).
    Any,
    /// A specific constant.
    Const(Value),
}

impl PatternValue {
    /// The `≍` predicate of the paper: a value matches `-` or an equal
    /// constant.
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            PatternValue::Any => true,
            PatternValue::Const(c) => c == value,
        }
    }
}

impl fmt::Display for PatternValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternValue::Any => write!(f, "-"),
            PatternValue::Const(c) => write!(f, "{}", c.render()),
        }
    }
}

/// A conditional functional dependency with a single right-hand-side
/// attribute. Relation and attribute references are interned handles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfd {
    /// Human-readable name used in reports.
    pub name: String,
    /// Relation the CFD is defined over.
    pub relation: RelId,
    /// Left-hand-side attributes (`X`).
    pub lhs: Vec<Sym>,
    /// Right-hand-side attribute (`A`).
    pub rhs: Sym,
    /// Pattern over the left-hand side, aligned with `lhs`.
    pub lhs_pattern: Vec<PatternValue>,
    /// Pattern over the right-hand side.
    pub rhs_pattern: PatternValue,
}

impl Cfd {
    /// A plain FD `X → A` (all-wildcard pattern).
    pub fn fd(
        name: impl Into<String>,
        relation: impl Into<RelId>,
        lhs: Vec<&str>,
        rhs: impl AsRef<str>,
    ) -> Self {
        let lhs: Vec<Sym> = lhs.into_iter().map(Sym::intern).collect();
        let lhs_pattern = vec![PatternValue::Any; lhs.len()];
        Cfd {
            name: name.into(),
            relation: relation.into(),
            lhs,
            rhs: Sym::intern(rhs),
            lhs_pattern,
            rhs_pattern: PatternValue::Any,
        }
    }

    /// A CFD with an explicit pattern.
    pub fn with_pattern(
        name: impl Into<String>,
        relation: impl Into<RelId>,
        lhs: Vec<&str>,
        rhs: impl AsRef<str>,
        lhs_pattern: Vec<PatternValue>,
        rhs_pattern: PatternValue,
    ) -> Self {
        let lhs: Vec<Sym> = lhs.into_iter().map(Sym::intern).collect();
        assert_eq!(
            lhs.len(),
            lhs_pattern.len(),
            "pattern must align with the left-hand side"
        );
        Cfd {
            name: name.into(),
            relation: relation.into(),
            lhs,
            rhs: Sym::intern(rhs),
            lhs_pattern,
            rhs_pattern,
        }
    }

    /// Validate the CFD against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), StoreError> {
        let rel = schema.require_relation(self.relation)?;
        for a in &self.lhs {
            rel.require_attribute_index(a.as_str())?;
        }
        rel.require_attribute_index(self.rhs.as_str())?;
        Ok(())
    }

    /// Resolve the LHS attribute positions in the relation schema.
    pub fn lhs_indices(&self, relation: &Relation) -> Vec<usize> {
        self.lhs
            .iter()
            .map(|a| {
                relation
                    .schema()
                    .attribute_pos(*a)
                    .expect("validated attribute")
            })
            .collect()
    }

    /// Resolve the RHS attribute position in the relation schema.
    pub fn rhs_index(&self, relation: &Relation) -> usize {
        relation
            .schema()
            .attribute_pos(self.rhs)
            .expect("validated attribute")
    }

    /// `true` when the tuple's LHS values match the LHS pattern.
    pub fn lhs_matches(&self, tuple: &Tuple, lhs_indices: &[usize]) -> bool {
        lhs_indices
            .iter()
            .zip(self.lhs_pattern.iter())
            .all(|(&i, p)| tuple.value(i).map(|v| p.matches(v)).unwrap_or(false))
    }

    /// `true` when two tuples jointly violate this CFD: they agree on the
    /// LHS, match the LHS pattern, but disagree on the RHS or fail the RHS
    /// pattern.
    pub fn violates(
        &self,
        t1: &Tuple,
        t2: &Tuple,
        lhs_indices: &[usize],
        rhs_index: usize,
    ) -> bool {
        let agree_lhs = lhs_indices.iter().all(|&i| t1.value(i) == t2.value(i));
        if !agree_lhs || !self.lhs_matches(t1, lhs_indices) || !self.lhs_matches(t2, lhs_indices) {
            return false;
        }
        let r1 = t1.value(rhs_index);
        let r2 = t2.value(rhs_index);
        match (r1, r2) {
            (Some(a), Some(b)) => {
                a != b || !self.rhs_pattern.matches(a) || !self.rhs_pattern.matches(b)
            }
            _ => false,
        }
    }

    /// All violating tuple pairs `(id1, id2)` with `id1 < id2` in a relation
    /// instance. Pairs are grouped by LHS value via the relation's hash
    /// indexes, so the scan is linear in the number of tuples sharing an LHS
    /// value rather than quadratic in the relation.
    pub fn find_violations(&self, relation: &Relation) -> Vec<(TupleId, TupleId)> {
        let lhs_indices = self.lhs_indices(relation);
        let rhs_index = self.rhs_index(relation);
        let mut groups: std::collections::HashMap<Vec<Value>, Vec<TupleId>> =
            std::collections::HashMap::new();
        for (id, tuple) in relation.iter() {
            if !self.lhs_matches(tuple, &lhs_indices) {
                continue;
            }
            let key: Vec<Value> = lhs_indices
                .iter()
                .map(|&i| tuple.value(i).cloned().unwrap_or(Value::Null))
                .collect();
            groups.entry(key).or_default().push(id);
        }
        let mut violations = Vec::new();
        for ids in groups.values() {
            for (a, &id1) in ids.iter().enumerate() {
                for &id2 in ids.iter().skip(a + 1) {
                    let t1 = relation.tuple(id1).expect("valid id");
                    let t2 = relation.tuple(id2).expect("valid id");
                    if self.violates(t1, t2, &lhs_indices, rhs_index) {
                        violations.push((id1.min(id2), id1.max(id2)));
                    }
                }
            }
        }
        violations.sort();
        violations
    }

    /// `true` when the relation instance satisfies the CFD.
    pub fn satisfied_by(&self, relation: &Relation) -> bool {
        self.find_violations(relation).is_empty()
    }
}

impl fmt::Display for Cfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lhs = self
            .lhs
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(", ");
        let lhs_pat = self
            .lhs_pattern
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        write!(
            f,
            "{}: ({} → {}, ({} || {}))",
            self.relation, lhs, self.rhs, lhs_pat, self.rhs_pattern
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_relstore::{tuple, Attribute, RelationSchema};

    fn locale_relation() -> Relation {
        let mut r = Relation::new(RelationSchema::new(
            "mov2locale",
            vec![
                Attribute::str("title"),
                Attribute::str("language"),
                Attribute::str("country"),
            ],
        ));
        r.insert(tuple(vec!["Bait", "English", "USA"])).unwrap();
        r.insert(tuple(vec!["Bait", "English", "Ireland"])).unwrap();
        r.insert(tuple(vec!["Bait", "French", "France"])).unwrap();
        r.insert(tuple(vec!["Rec", "Spanish", "Spain"])).unwrap();
        r
    }

    /// The paper's ϕ1: (title, language → country, (-, English || -)).
    fn phi1() -> Cfd {
        Cfd::with_pattern(
            "phi1",
            "mov2locale",
            vec!["title", "language"],
            "country",
            vec![
                PatternValue::Any,
                PatternValue::Const(Value::str("English")),
            ],
            PatternValue::Any,
        )
    }

    #[test]
    fn paper_example_violation_is_detected() {
        let rel = locale_relation();
        let cfd = phi1();
        let violations = cfd.find_violations(&rel);
        assert_eq!(violations, vec![(0, 1)]);
        assert!(!cfd.satisfied_by(&rel));
    }

    #[test]
    fn pattern_restricts_the_scope_of_the_dependency() {
        // A plain FD title -> country (no language pattern) also flags the
        // French tuple pair.
        let rel = locale_relation();
        let fd = Cfd::fd("fd", "mov2locale", vec!["title"], "country");
        let violations = fd.find_violations(&rel);
        assert_eq!(violations.len(), 3, "{violations:?}");
    }

    #[test]
    fn satisfied_relation_has_no_violations() {
        let mut r = Relation::new(RelationSchema::new(
            "mov2locale",
            vec![
                Attribute::str("title"),
                Attribute::str("language"),
                Attribute::str("country"),
            ],
        ));
        r.insert(tuple(vec!["Bait", "English", "USA"])).unwrap();
        r.insert(tuple(vec!["Bait", "English", "USA"])).unwrap();
        assert!(phi1().satisfied_by(&r));
    }

    #[test]
    fn rhs_pattern_constant_must_match() {
        // (language -> country, (English || USA)): English movies must be
        // from the USA; two agreeing non-USA tuples violate via the pattern.
        let cfd = Cfd::with_pattern(
            "phi2",
            "mov2locale",
            vec!["language"],
            "country",
            vec![PatternValue::Const(Value::str("English"))],
            PatternValue::Const(Value::str("USA")),
        );
        let mut r = Relation::new(RelationSchema::new(
            "mov2locale",
            vec![
                Attribute::str("title"),
                Attribute::str("language"),
                Attribute::str("country"),
            ],
        ));
        r.insert(tuple(vec!["A", "English", "Ireland"])).unwrap();
        r.insert(tuple(vec!["B", "English", "Ireland"])).unwrap();
        assert!(!cfd.satisfied_by(&r));
    }

    #[test]
    fn validate_checks_schema() {
        let mut schema = Schema::new();
        schema
            .add_relation(RelationSchema::new(
                "mov2locale",
                vec![
                    Attribute::str("title"),
                    Attribute::str("language"),
                    Attribute::str("country"),
                ],
            ))
            .unwrap();
        assert!(phi1().validate(&schema).is_ok());
        let bad = Cfd::fd("bad", "mov2locale", vec!["title"], "missing");
        assert!(bad.validate(&schema).is_err());
        let bad = Cfd::fd("bad", "unknown", vec!["title"], "country");
        assert!(bad.validate(&schema).is_err());
    }

    #[test]
    fn display_renders_pattern() {
        let s = phi1().to_string();
        assert!(s.contains("title, language → country"), "{s}");
        assert!(s.contains("'English'"), "{s}");
    }
}
