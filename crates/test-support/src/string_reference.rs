//! Reference re-implementation of the **pre-interning string-based
//! subsumption matcher**: relation literals keyed by name `String`s,
//! candidate lists scanned linearly, θ cloned at every backtracking point,
//! no `(RelId, arity)` buckets and no per-position value indexes.
//!
//! Deliberately kept allocation-heavy and string-keyed: it documents the
//! representation the interning refactor replaced. One semantic update rode
//! along with the adaptive-ordering refactor: like the production matcher,
//! the reference now treats a relation mapping rejected by the constraint /
//! repair phase as a dead end to backtrack past, not as the end of the
//! search. That makes its boolean decision independent of literal order, so
//! it can stand next to the enumeration oracle ([`crate::OracleGround`]) as
//! a structurally different second reference — the exact-search-order
//! parity the old decision-parity tests pinned is retired.

use std::collections::{BTreeSet, HashMap};

use dlearn_logic::{Clause, Literal, RepairGroup, RepairOrigin, Substitution, Term};

/// String-keyed index side, as `GroundClause` was before interning.
pub struct StringGround {
    head: Literal,
    body: Vec<Literal>,
    by_relation: HashMap<String, Vec<usize>>,
    similar_pairs: BTreeSet<(Term, Term)>,
    equal_pairs: BTreeSet<(Term, Term)>,
    repair_facts: Vec<(RepairOrigin, Term, Term)>,
}

impl StringGround {
    /// Index a clause for repeated subsumption testing.
    pub fn new(clause: &Clause) -> Self {
        let mut by_relation: HashMap<String, Vec<usize>> = HashMap::new();
        let mut similar_pairs = BTreeSet::new();
        let mut equal_pairs = BTreeSet::new();
        for (i, l) in clause.body.iter().enumerate() {
            match l {
                Literal::Relation { .. } => {
                    by_relation
                        .entry(l.relation_name().expect("relation literal").to_string())
                        .or_default()
                        .push(i);
                }
                Literal::Similar(a, b) => {
                    similar_pairs.insert((*a, *b));
                    similar_pairs.insert((*b, *a));
                }
                Literal::Equal(a, b) => {
                    equal_pairs.insert((*a, *b));
                    equal_pairs.insert((*b, *a));
                }
                Literal::NotEqual(_, _) => {}
            }
        }
        let mut repair_facts = Vec::new();
        for g in &clause.repairs {
            for (v, t) in &g.replacements {
                repair_facts.push((g.origin, Term::Var(*v), *t));
            }
        }
        StringGround {
            head: clause.head.clone(),
            body: clause.body.clone(),
            by_relation,
            similar_pairs,
            equal_pairs,
            repair_facts,
        }
    }

    fn candidates(&self, relation: &str) -> &[usize] {
        static EMPTY: [usize; 0] = [];
        self.by_relation
            .get(relation)
            .map(|v| v.as_slice())
            .unwrap_or(&EMPTY)
    }
}

/// String-comparing literal match, extending the substitution.
fn match_literal(c_lit: &Literal, d_lit: &Literal, theta: &mut Substitution) -> bool {
    match (c_lit, d_lit) {
        (Literal::Relation { args: ac, .. }, Literal::Relation { args: ad, .. }) => {
            if c_lit.relation_name() != d_lit.relation_name() || ac.len() != ad.len() {
                return false;
            }
            for (a, b) in ac.iter().zip(ad.iter()) {
                if !match_term(a, b, theta) {
                    return false;
                }
            }
            true
        }
        _ => false,
    }
}

fn match_term(c_term: &Term, d_term: &Term, theta: &mut Substitution) -> bool {
    match c_term {
        Term::Const(v) => match d_term {
            Term::Const(w) => v == w,
            Term::Var(_) => false,
        },
        Term::Var(v) => theta.try_bind(*v, *d_term),
    }
}

struct State<'a> {
    theta: Substitution,
    constraint_lits: Vec<&'a Literal>,
    repairs: &'a [RepairGroup],
}

/// The string-keyed decision procedure (unbounded budget).
pub fn subsumes(c: &Clause, d: &StringGround) -> bool {
    let mut theta = Substitution::new();
    if !match_literal(&c.head, &d.head, &mut theta) {
        return false;
    }
    let mut relation_lits: Vec<&Literal> = c.body.iter().filter(|l| l.is_relation()).collect();
    relation_lits.sort_by_key(|l| {
        l.relation_name()
            .map(|n| d.candidates(n).len())
            .unwrap_or(0)
    });
    let constraint_lits: Vec<&Literal> = c.body.iter().filter(|l| !l.is_relation()).collect();

    let mut state = State {
        theta,
        constraint_lits,
        repairs: &c.repairs,
    };
    search(&relation_lits, 0, d, &mut state)
}

fn search(lits: &[&Literal], depth: usize, d: &StringGround, state: &mut State) -> bool {
    if depth == lits.len() {
        // A complete relation mapping: accept it only if the constraint and
        // repair phase does; otherwise roll θ back and let the caller try
        // the next mapping.
        let saved_theta = state.theta.clone();
        let constraint_lits = state.constraint_lits.clone();
        let repairs = state.repairs;
        if check_constraints(&constraint_lits, &mut state.theta, d)
            && match_repairs(repairs, 0, d, state)
        {
            return true;
        }
        state.theta = saved_theta;
        return false;
    }
    let lit = lits[depth];
    let Some(name) = lit.relation_name() else {
        return false;
    };
    let candidates: Vec<usize> = d.candidates(name).to_vec();
    for idx in candidates {
        let saved = state.theta.clone();
        if match_literal(lit, &d.body[idx], &mut state.theta) && search(lits, depth + 1, d, state) {
            return true;
        }
        state.theta = saved;
    }
    false
}

fn check_constraints(lits: &[&Literal], theta: &mut Substitution, d: &StringGround) -> bool {
    for lit in lits {
        match lit {
            Literal::Similar(a, b) => {
                if !check_pair(theta, d, a, b, true) {
                    return false;
                }
            }
            Literal::Equal(a, b) => {
                if !check_pair(theta, d, a, b, false) {
                    return false;
                }
            }
            Literal::NotEqual(a, b) => {
                let ta = theta.apply(a);
                let tb = theta.apply(b);
                if ta == tb || d.equal_pairs.contains(&(ta, tb)) {
                    return false;
                }
            }
            Literal::Relation { .. } => unreachable!(),
        }
    }
    true
}

fn check_pair(
    theta: &mut Substitution,
    d: &StringGround,
    a: &Term,
    b: &Term,
    similar: bool,
) -> bool {
    let pairs = if similar {
        &d.similar_pairs
    } else {
        &d.equal_pairs
    };
    let ta = theta.apply(a);
    let tb = theta.apply(b);
    let a_bound = ta.is_const() || a.as_var().map(|v| theta.get(v).is_some()).unwrap_or(true);
    let b_bound = tb.is_const() || b.as_var().map(|v| theta.get(v).is_some()).unwrap_or(true);
    match (a_bound, b_bound) {
        (true, true) => ta == tb || pairs.contains(&(ta, tb)),
        (true, false) => {
            for (x, y) in pairs.iter() {
                if *x == ta {
                    if let Some(vb) = b.as_var() {
                        if theta.try_bind(vb, *y) {
                            return true;
                        }
                    }
                }
            }
            if let Some(vb) = b.as_var() {
                return theta.try_bind(vb, ta);
            }
            false
        }
        (false, true) => check_pair(theta, d, b, a, similar),
        (false, false) => {
            if let (Some(va), Some(vb)) = (a.as_var(), b.as_var()) {
                if let Some((x, y)) = pairs.iter().next() {
                    return theta.try_bind(va, *x) && theta.try_bind(vb, *y);
                }
                return theta.try_bind(va, Term::var(u32::MAX))
                    && theta.try_bind(vb, Term::var(u32::MAX));
            }
            false
        }
    }
}

fn match_repairs(
    groups: &[RepairGroup],
    depth: usize,
    d: &StringGround,
    state: &mut State,
) -> bool {
    if depth == groups.len() {
        return true;
    }
    match_group(&groups[depth], 0, d, state) && match_repairs(groups, depth + 1, d, state)
}

fn match_group(group: &RepairGroup, ri: usize, d: &StringGround, state: &mut State) -> bool {
    if ri == group.replacements.len() {
        return true;
    }
    let (x, t) = &group.replacements[ri];
    let x_term = Term::Var(*x);
    for (origin, dx, dt) in &d.repair_facts {
        if *origin != group.origin {
            continue;
        }
        let saved = state.theta.clone();
        if match_term(&x_term, dx, &mut state.theta)
            && match_term(t, dt, &mut state.theta)
            && match_group(group, ri + 1, d, state)
        {
            return true;
        }
        state.theta = saved;
    }
    false
}
