//! Brute-force all-pairs reference similarity index.
//!
//! The production [`dlearn_similarity::SimilarityIndex`] earns its speed
//! three ways — token/trigram blocking, a length-derived score bound, and a
//! top-k early exit — and builds in parallel. This reference does none of
//! that: it scores **every** (left, right) pair with the operator, keeps
//! pairs at or above the threshold, sorts by (score descending, value
//! ascending) and truncates to `top_k`, mirroring the index's documented
//! semantics with the dumbest possible implementation. The differential
//! suite (`crates/similarity/tests/index_oracle.rs`) asserts the production
//! build equals this oracle entry for entry on seeded dirty vocabularies,
//! which proves no prune ever drops a pair that could reach the threshold.

use std::collections::BTreeMap;

use dlearn_relstore::Sym;
use dlearn_similarity::{IndexConfig, Match, SimilarityIndex};

/// The oracle's view of a built index: per-side sorted entry lists, one
/// `(value, matches)` pair per value with at least one stored match.
///
/// `Entries` is ordered by `Sym`'s lexicographic `Ord`, so two views compare
/// with `==` regardless of how they were produced.
pub type Entries = BTreeMap<Sym, Vec<Match>>;

/// A brute-force all-pairs reference index (no blocking, no length filter,
/// no early exit, strictly serial).
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceIndex {
    /// Left-side entries.
    pub left_to_right: Entries,
    /// Right-side entries.
    pub right_to_left: Entries,
}

impl ReferenceIndex {
    /// Build the reference by scoring all `|L| · |R|` pairs.
    pub fn build(left: &[Sym], right: &[Sym], config: &IndexConfig) -> Self {
        let left = dedup(left);
        let right = dedup(right);
        let mut left_to_right: Entries = BTreeMap::new();
        let mut right_to_left: Entries = BTreeMap::new();
        for &l in &left {
            let mut matches: Vec<Match> = Vec::new();
            for &r in &right {
                let score = config.operator.score(l.as_str(), r.as_str());
                if score >= config.operator.threshold {
                    matches.push(Match { value: r, score });
                }
            }
            sort_matches(&mut matches);
            matches.truncate(config.top_k);
            for m in &matches {
                right_to_left.entry(m.value).or_default().push(Match {
                    value: l,
                    score: m.score,
                });
            }
            if !matches.is_empty() {
                left_to_right.insert(l, matches);
            }
        }
        for matches in right_to_left.values_mut() {
            sort_matches(matches);
            matches.truncate(config.top_k);
        }
        ReferenceIndex {
            left_to_right,
            right_to_left,
        }
    }

    /// The production index's contents in the oracle's comparable shape.
    pub fn view_of(index: &SimilarityIndex) -> Self {
        ReferenceIndex {
            left_to_right: index.iter_left().map(|(k, v)| (k, v.to_vec())).collect(),
            right_to_left: index.iter_right().map(|(k, v)| (k, v.to_vec())).collect(),
        }
    }

    /// Total number of stored forward match pairs.
    pub fn pair_count(&self) -> usize {
        self.left_to_right.values().map(Vec::len).sum()
    }
}

/// The index's deterministic match order: descending score, ties broken by
/// the value's string order.
fn sort_matches(matches: &mut [Match]) {
    matches.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.value.cmp(&b.value))
    });
}

fn dedup(values: &[Sym]) -> Vec<Sym> {
    let mut v: Vec<Sym> = values.to_vec();
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_similarity::SimilarityOperator;

    fn syms(values: &[&str]) -> Vec<Sym> {
        values.iter().map(Sym::intern).collect()
    }

    #[test]
    fn oracle_finds_unblocked_pairs_too() {
        // "abcd" / "abxd" share no token or trigram, so the *blocked* index
        // cannot see the pair — but the all-pairs oracle must: that is the
        // difference that makes it a reference for blocking-complete
        // vocabularies rather than a re-implementation of the index.
        let left = syms(&["abcd"]);
        let right = syms(&["abxd"]);
        let config = IndexConfig {
            top_k: 5,
            operator: SimilarityOperator::with_threshold(0.7),
            ..IndexConfig::default()
        };
        let oracle = ReferenceIndex::build(&left, &right, &config);
        assert_eq!(oracle.pair_count(), 1, "{oracle:?}");
        let built = SimilarityIndex::build(&left, &right, &config);
        assert_eq!(built.pair_count(), 0, "blocking should hide this pair");
    }

    #[test]
    fn oracle_orders_and_truncates_like_the_index() {
        let left = syms(&["star wars"]);
        let right = syms(&[
            "star wars episode iv",
            "star wars episode iii",
            "star wars trilogy boxed set extended",
        ]);
        let config = IndexConfig {
            top_k: 2,
            operator: SimilarityOperator::with_threshold(0.5),
            ..IndexConfig::default()
        };
        let oracle = ReferenceIndex::build(&left, &right, &config);
        let entry = &oracle.left_to_right[&left[0]];
        assert_eq!(entry.len(), 2, "{entry:?}");
        assert!(entry[0].score >= entry[1].score);
        let built = ReferenceIndex::view_of(&SimilarityIndex::build(&left, &right, &config));
        assert_eq!(oracle, built);
    }

    #[test]
    fn view_of_round_trips_the_built_index() {
        let left = syms(&["golden harbor", "silent meadow"]);
        let right = syms(&["golden harbor (1984)", "unrelated"]);
        let config = IndexConfig::top_k(3);
        let built = SimilarityIndex::build(&left, &right, &config);
        let view = ReferenceIndex::view_of(&built);
        assert_eq!(view.pair_count(), built.pair_count());
    }
}
