//! Brute-force enumeration reference matcher and witness verifier.
//!
//! [`OracleGround`] answers θ-subsumption questions by *enumerating* every
//! assignment of the candidate clause's variables over the terms of `D`
//! (plus canonical fresh terms standing in for "any value not in `D`"),
//! instead of searching: the homomorphism-duality observation that small
//! random clauses have small witnesses makes this exhaustive check feasible
//! at differential-test sizes, and its obvious correctness is what makes it
//! an oracle — it shares no code and no search strategy with the production
//! matcher or the string-keyed reference.
//!
//! The enumeration is a plain backtracking sweep over variables in
//! first-appearance order. Each head/body literal and each repair
//! replacement is checked as soon as all of its variables are assigned;
//! that forward pruning discards assignment prefixes that already violate a
//! ground check, which changes nothing about exhaustiveness (every pruned
//! extension would fail the same check at the end).
//!
//! Semantics implemented (the lenient reading used by the learner; the
//! strict Definition 4.4 condition is out of scope here):
//!
//! * head: `σ(head_C) = head_D` syntactically;
//! * relation literal: `σ(l) ∈ body(D)`;
//! * `Similar(a, b)`: `σa = σb`, or `(σa, σb)` is a similarity pair of `D`
//!   (symmetrically closed);
//! * `Equal(a, b)`: likewise over `D`'s equality pairs;
//! * `NotEqual(a, b)`: `σa ≠ σb` and `(σa, σb)` is not an equality pair;
//! * repair group `g`: every replacement `(x, t)` of `g` matches some
//!   repair fact `(origin, dx, dt)` of `D` with `g`'s origin, `σx = dx`,
//!   `σt = dt` (facts may be reused; groups are checked independently).

use std::collections::{BTreeSet, HashSet};

use dlearn_logic::{Clause, Literal, RepairOrigin, Substitution, Term, Var};

/// A ground clause indexed for brute-force enumeration and witness
/// verification.
pub struct OracleGround {
    head: Literal,
    /// Relation literals of `D`'s body, as a set (mapping is membership).
    body_relations: HashSet<Literal>,
    similar_pairs: BTreeSet<(Term, Term)>,
    equal_pairs: BTreeSet<(Term, Term)>,
    /// Flattened repair facts `(origin, replaced variable, replacement)`.
    repair_facts: Vec<(RepairOrigin, Term, Term)>,
    /// Distinct terms occurring anywhere matchable in `D`.
    universe: Vec<Term>,
    /// Largest variable index in `D` (fresh terms stay clear of it).
    max_var: u32,
}

impl OracleGround {
    /// Index a ground clause.
    pub fn new(d: &Clause) -> Self {
        let mut body_relations = HashSet::new();
        let mut similar_pairs = BTreeSet::new();
        let mut equal_pairs = BTreeSet::new();
        let mut universe: BTreeSet<Term> = d.head.args().into_iter().copied().collect();
        for l in &d.body {
            for t in l.args() {
                universe.insert(*t);
            }
            match l {
                Literal::Relation { .. } => {
                    body_relations.insert(l.clone());
                }
                Literal::Similar(a, b) => {
                    similar_pairs.insert((*a, *b));
                    similar_pairs.insert((*b, *a));
                }
                Literal::Equal(a, b) => {
                    equal_pairs.insert((*a, *b));
                    equal_pairs.insert((*b, *a));
                }
                Literal::NotEqual(_, _) => {}
            }
        }
        let mut repair_facts = Vec::new();
        for g in &d.repairs {
            for (v, t) in &g.replacements {
                repair_facts.push((g.origin, Term::Var(*v), *t));
                universe.insert(Term::Var(*v));
                universe.insert(*t);
            }
        }
        OracleGround {
            head: d.head.clone(),
            body_relations,
            similar_pairs,
            equal_pairs,
            repair_facts,
            universe: universe.into_iter().collect(),
            max_var: d.max_var_index().unwrap_or(0),
        }
    }

    /// Check a single ground (fully substituted) requirement.
    fn check_item(&self, c: &Clause, item: CheckItem, sigma: &Substitution) -> bool {
        match item {
            CheckItem::Head => c.head.apply(sigma) == self.head,
            CheckItem::Body(i) => match &c.body[i] {
                l @ Literal::Relation { .. } => self.body_relations.contains(&l.apply(sigma)),
                Literal::Similar(a, b) => {
                    let (ta, tb) = (sigma.apply(a), sigma.apply(b));
                    ta == tb || self.similar_pairs.contains(&(ta, tb))
                }
                Literal::Equal(a, b) => {
                    let (ta, tb) = (sigma.apply(a), sigma.apply(b));
                    ta == tb || self.equal_pairs.contains(&(ta, tb))
                }
                Literal::NotEqual(a, b) => {
                    let (ta, tb) = (sigma.apply(a), sigma.apply(b));
                    ta != tb && !self.equal_pairs.contains(&(ta, tb))
                }
            },
            CheckItem::Replacement(gi, ri) => {
                let g = &c.repairs[gi];
                let (x, t) = &g.replacements[ri];
                let sx = sigma.apply(&Term::Var(*x));
                let st = sigma.apply(t);
                self.repair_facts
                    .iter()
                    .any(|(o, dx, dt)| *o == g.origin && sx == *dx && st == *dt)
            }
        }
    }

    /// Verify that `theta` embeds `c` into the indexed clause: every
    /// requirement listed in the module docs holds under `theta`. Variables
    /// `theta` leaves unbound are applied as themselves (the same convention
    /// the production matcher's `apply` uses), so a witness that relies on
    /// an unbound variable accidentally naming a term of `D` is rejected
    /// only if the ground checks fail — keep candidate and ground variable
    /// spaces disjoint, as the generators do.
    pub fn verify_witness(&self, c: &Clause, theta: &Substitution) -> bool {
        self.check_item(c, CheckItem::Head, theta)
            && (0..c.body.len()).all(|i| self.check_item(c, CheckItem::Body(i), theta))
            && c.repairs.iter().enumerate().all(|(gi, g)| {
                (0..g.replacements.len())
                    .all(|ri| self.check_item(c, CheckItem::Replacement(gi, ri), theta))
            })
    }

    /// Decide subsumption by exhaustive enumeration, returning a witnessing
    /// assignment (over all of `c`'s variables) when one exists. Feasible
    /// for small clauses only — cost is bounded by
    /// `(|terms(D)| + |vars(C)|) ^ |vars(C)|` before pruning.
    pub fn enumerate(&self, c: &Clause) -> Option<Substitution> {
        // Variables in first-appearance order (head, body, repairs), the
        // order that lets literal checks fire earliest.
        let mut vars: Vec<Var> = Vec::new();
        let mut seen: HashSet<Var> = HashSet::new();
        let mut note = |t: &Term| {
            if let Some(v) = t.as_var() {
                if seen.insert(v) {
                    vars.push(v);
                }
            }
        };
        for t in c.head.args() {
            note(t);
        }
        for l in &c.body {
            for t in l.args() {
                note(t);
            }
        }
        for g in &c.repairs {
            for (v, t) in &g.replacements {
                note(&Term::Var(*v));
                note(t);
            }
        }
        let slot_of = |v: Var| vars.iter().position(|w| *w == v);

        // Requirements become checkable at the slot of their last variable;
        // variable-free requirements are checked up front.
        let mut items: Vec<CheckItem> = vec![CheckItem::Head];
        items.extend((0..c.body.len()).map(CheckItem::Body));
        for (gi, g) in c.repairs.iter().enumerate() {
            items.extend((0..g.replacements.len()).map(|ri| CheckItem::Replacement(gi, ri)));
        }
        let mut ready_at: Vec<Vec<CheckItem>> = vec![Vec::new(); vars.len()];
        let mut sigma = Substitution::new();
        for item in items {
            let item_vars: BTreeSet<Var> = match item {
                CheckItem::Head => c.head.variables(),
                CheckItem::Body(i) => c.body[i].variables(),
                CheckItem::Replacement(gi, ri) => {
                    let (x, t) = &c.repairs[gi].replacements[ri];
                    let mut s = BTreeSet::new();
                    s.insert(*x);
                    if let Some(v) = t.as_var() {
                        s.insert(v);
                    }
                    s
                }
            };
            match item_vars.iter().filter_map(|v| slot_of(*v)).max() {
                Some(slot) => ready_at[slot].push(item),
                // Ground requirement: check once, before enumerating.
                None => {
                    if !self.check_item(c, item, &sigma) {
                        return None;
                    }
                }
            }
        }

        // Fresh terms canonically represent values outside D: slot `k` may
        // reuse the fresh term of any earlier slot (two variables mapping to
        // the same unknown value) or take its own. Any embedding maps onto
        // such an assignment by renaming its unknown values.
        let fresh_base = self
            .max_var
            .max(c.max_var_index().unwrap_or(0))
            .saturating_add(1);

        if self.assign(c, &vars, &ready_at, fresh_base, 0, &mut sigma) {
            Some(sigma)
        } else {
            None
        }
    }

    fn assign(
        &self,
        c: &Clause,
        vars: &[Var],
        ready_at: &[Vec<CheckItem>],
        fresh_base: u32,
        slot: usize,
        sigma: &mut Substitution,
    ) -> bool {
        if slot == vars.len() {
            return true;
        }
        let fresh = (0..=slot as u32).map(|j| Term::var(fresh_base.saturating_add(j)));
        for term in self.universe.iter().copied().chain(fresh) {
            sigma.bind(vars[slot], term);
            if ready_at[slot]
                .iter()
                .all(|item| self.check_item(c, *item, sigma))
                && self.assign(c, vars, ready_at, fresh_base, slot + 1, sigma)
            {
                return true;
            }
            sigma.remove(vars[slot]);
        }
        false
    }
}

/// `CheckItem` names one ground requirement of the embedding: the head
/// equation, a body literal, or one repair replacement of one group.
#[derive(Debug, Clone, Copy)]
enum CheckItem {
    Head,
    Body(usize),
    Replacement(usize, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_logic::{CondAtom, RepairGroup};

    fn ground() -> Clause {
        let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        d.push_unique(Literal::relation("r", vec![Term::var(1), Term::var(2)]));
        d.push_unique(Literal::relation("r", vec![Term::var(2), Term::var(3)]));
        d.push_unique(Literal::Similar(Term::var(0), Term::var(2)));
        d.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![CondAtom::Sim(Term::var(0), Term::var(2))],
            vec![(Var(0), Term::var(9)), (Var(2), Term::var(9))],
            vec![Literal::Similar(Term::var(0), Term::var(2))],
        ));
        d
    }

    #[test]
    fn enumeration_finds_chain_embedding() {
        let d = ground();
        let oracle = OracleGround::new(&d);
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(40)]));
        c.push_unique(Literal::relation("r", vec![Term::var(41), Term::var(42)]));
        c.push_unique(Literal::relation("r", vec![Term::var(42), Term::var(43)]));
        let sigma = oracle.enumerate(&c).expect("chain embeds");
        assert!(oracle.verify_witness(&c, &sigma));
    }

    #[test]
    fn enumeration_rejects_missing_relation() {
        let d = ground();
        let oracle = OracleGround::new(&d);
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(40)]));
        c.push_unique(Literal::relation("q", vec![Term::var(41)]));
        assert!(oracle.enumerate(&c).is_none());
    }

    #[test]
    fn constraints_and_repairs_are_enforced() {
        let d = ground();
        let oracle = OracleGround::new(&d);
        // Similar(head, x) with the repair group riding along.
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(40)]));
        c.push_unique(Literal::relation("r", vec![Term::var(42), Term::var(43)]));
        c.push_unique(Literal::Similar(Term::var(40), Term::var(42)));
        c.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![CondAtom::Sim(Term::var(40), Term::var(42))],
            vec![(Var(40), Term::var(50)), (Var(42), Term::var(50))],
            vec![Literal::Similar(Term::var(40), Term::var(42))],
        ));
        let sigma = oracle.enumerate(&c).expect("similar pair v0≈v2 exists");
        assert!(oracle.verify_witness(&c, &sigma));
        assert_eq!(sigma.apply(&Term::var(42)), Term::var(2));

        // A repair group from a different origin has no matching fact.
        let mut c2 = c.clone();
        c2.repairs[0].origin = RepairOrigin::Md(5);
        assert!(oracle.enumerate(&c2).is_none());
    }

    #[test]
    fn not_equal_uses_fresh_values_for_unconstrained_variables() {
        let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        d.push_unique(Literal::relation("r", vec![Term::var(0)]));
        let oracle = OracleGround::new(&d);
        // x ≠ y over two variables each bound by a relation literal that
        // only admits v0: unsatisfiable.
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(40)]));
        c.push_unique(Literal::relation("r", vec![Term::var(41)]));
        c.push_unique(Literal::relation("r", vec![Term::var(42)]));
        c.push_unique(Literal::NotEqual(Term::var(41), Term::var(42)));
        assert!(oracle.enumerate(&c).is_none());
    }

    #[test]
    fn verify_witness_rejects_non_embeddings() {
        let d = ground();
        let oracle = OracleGround::new(&d);
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(40)]));
        c.push_unique(Literal::relation("r", vec![Term::var(41), Term::var(42)]));
        let mut bogus = Substitution::new();
        bogus.bind(Var(40), Term::var(0));
        bogus.bind(Var(41), Term::var(3)); // r(v3, _) does not exist in D
        bogus.bind(Var(42), Term::var(1));
        assert!(!oracle.verify_witness(&c, &bogus));
    }
}
