//! Seeded script generators for the hot-swap / coalescing stress suite.
//!
//! The swap suite (`tests/swap_stress.rs` at the workspace root) needs two
//! kinds of seeded schedules:
//!
//! * [`swap_script`] — an interleaving of engine deltas, full model
//!   publications and serving bursts, with the deltas drawn from the same
//!   evolving-clone [`tx_script`] generator the
//!   delta oracle replays (so every delta is valid at its point in the
//!   script). The generator guarantees the script is non-vacuous: at least
//!   one delta, one publish and one serve burst each appear.
//! * [`coalesce_script`] — per-caller tuple-index sequences, so N
//!   concurrent callers submit a seeded but reproducible traffic mix to a
//!   coalescer while the main thread replays publications.
//!
//! Like the rest of this crate the generators are engine-agnostic (this
//! crate sits *below* `dlearn-core`); the replay drivers that bind the
//! scripts to an `Engine`/`PredictorService` live in the workspace test
//! tree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlearn_relstore::{Database, DeltaTx, RelId};

use crate::delta::{tx_script, TxScriptConfig};

/// One step of a [`swap_script`].
#[derive(Debug, Clone)]
pub enum SwapStep {
    /// Apply this transaction to the engine and publish the delta to the
    /// service ([`Engine::apply_delta`] → [`PredictorService::apply_delta`]
    /// in the replay driver).
    ///
    /// [`Engine::apply_delta`]: ../dlearn_core/struct.Engine.html
    /// [`PredictorService::apply_delta`]: ../dlearn_core/struct.PredictorService.html
    Delta(DeltaTx),
    /// Re-bind the current learned model and publish it as a fresh epoch.
    Publish,
    /// Serve this many concurrent batches against whatever epoch is
    /// installed.
    Serve {
        /// Number of batches the replay driver should issue for this step.
        batches: usize,
    },
}

/// Knobs of the seeded [`swap_script`] generator.
#[derive(Debug, Clone)]
pub struct SwapScriptConfig {
    /// Number of steps in the script.
    pub steps: usize,
    /// Probability a step is a [`SwapStep::Delta`] (while generated deltas
    /// remain).
    pub p_delta: f64,
    /// Probability a step is a [`SwapStep::Publish`] (evaluated after the
    /// delta draw).
    pub p_publish: f64,
    /// Generator knobs for the underlying delta transactions.
    pub tx: TxScriptConfig,
}

impl Default for SwapScriptConfig {
    fn default() -> Self {
        SwapScriptConfig {
            steps: 24,
            p_delta: 0.25,
            p_publish: 0.2,
            // One op per transaction: `tx_script` draws all ops of a tx
            // against the pre-tx snapshot, so multi-op txs can collide
            // (e.g. delete the same victim twice) on small relations. A
            // swap script generates far more txs than the delta suites, so
            // stay in the always-valid regime by default.
            tx: TxScriptConfig {
                max_ops_per_tx: 1,
                ..TxScriptConfig::default()
            },
        }
    }
}

/// Derive a seeded interleaving of deltas, publications and serving bursts.
///
/// Delta transactions come from [`tx_script`] against an evolving clone of
/// `db`, in order — so replaying the `Delta` steps in script order against
/// the real engine is valid by construction. The script always contains at
/// least one `Delta`, one `Publish` and one `Serve` step (a schedule that
/// never swaps, or never serves, would pin nothing).
pub fn swap_script(
    db: &Database,
    relations: &[RelId],
    config: &SwapScriptConfig,
    seed: u64,
) -> Vec<SwapStep> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5a0b_5c47);
    let tx_config = TxScriptConfig {
        txs: config.steps.max(1),
        ..config.tx.clone()
    };
    let mut deltas: std::collections::VecDeque<DeltaTx> =
        tx_script(db, relations, &tx_config, seed).into();

    let mut script = Vec::with_capacity(config.steps);
    for _ in 0..config.steps {
        if !deltas.is_empty() && rng.gen_bool(config.p_delta) {
            script.push(SwapStep::Delta(deltas.pop_front().expect("non-empty")));
        } else if rng.gen_bool(config.p_publish) {
            script.push(SwapStep::Publish);
        } else {
            script.push(SwapStep::Serve {
                batches: rng.gen_range(1..=3usize),
            });
        }
    }

    // Vacuity guards: force one of each step kind into the schedule if the
    // draws happened to miss it, at seeded positions.
    if !script.iter().any(|s| matches!(s, SwapStep::Delta(_))) {
        let at = rng.gen_range(0..script.len().max(1));
        script[at] = SwapStep::Delta(deltas.pop_front().expect("generator made one per step"));
    }
    if !script.iter().any(|s| matches!(s, SwapStep::Publish)) {
        let at = pick_non_delta(&script, &mut rng);
        script[at] = SwapStep::Publish;
    }
    if !script.iter().any(|s| matches!(s, SwapStep::Serve { .. })) {
        let at = pick_non_delta(&script, &mut rng);
        script[at] = SwapStep::Serve { batches: 1 };
    }
    script
}

/// A seeded index of a non-`Delta` step (replacing a delta would break the
/// evolving-clone validity chain of the remaining deltas).
fn pick_non_delta(script: &[SwapStep], rng: &mut StdRng) -> usize {
    let candidates: Vec<usize> = script
        .iter()
        .enumerate()
        .filter(|(_, s)| !matches!(s, SwapStep::Delta(_)))
        .map(|(i, _)| i)
        .collect();
    assert!(
        !candidates.is_empty(),
        "swap_script: schedule has no replaceable step"
    );
    candidates[rng.gen_range(0..candidates.len())]
}

/// Derive per-caller request schedules for a coalescing stress run: each
/// caller `c` submits `calls_per_caller` requests, each naming an index into
/// the test's shared tuple pool (`0..tuples`). Schedules differ per caller
/// (the seed folds the caller id in) but are reproducible per seed.
pub fn coalesce_script(
    tuples: usize,
    callers: usize,
    calls_per_caller: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(tuples > 0, "coalesce_script: empty tuple pool");
    (0..callers)
        .map(|c| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc0a1_e5ce ^ ((c as u64) << 32));
            (0..calls_per_caller)
                .map(|_| rng.gen_range(0..tuples))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_relstore::{tuple, DatabaseBuilder, RelationBuilder, Value};

    fn db() -> Database {
        let mut db = DatabaseBuilder::new()
            .relation(
                RelationBuilder::new("m")
                    .int_attr("id")
                    .str_attr("title")
                    .build(),
            )
            .build();
        for (i, t) in ["golden harbor", "silent meadow", "crimson summit"]
            .iter()
            .enumerate()
        {
            db.insert("m", tuple(vec![Value::int(i as i64), Value::str(*t)]))
                .unwrap();
        }
        db
    }

    #[test]
    fn swap_scripts_are_non_vacuous_and_deltas_replay_clean() {
        let db = db();
        let rels = [RelId::intern("m")];
        for seed in [1u64, 7, 42] {
            let script = swap_script(&db, &rels, &SwapScriptConfig::default(), seed);
            assert_eq!(script.len(), SwapScriptConfig::default().steps);
            assert!(script.iter().any(|s| matches!(s, SwapStep::Delta(_))));
            assert!(script.iter().any(|s| matches!(s, SwapStep::Publish)));
            assert!(script.iter().any(|s| matches!(s, SwapStep::Serve { .. })));
            // Deltas must stay valid when applied in script order.
            let mut replay = db.clone();
            for step in &script {
                if let SwapStep::Delta(tx) = step {
                    replay.apply_delta(tx).expect("script delta must be valid");
                }
            }
        }
    }

    #[test]
    fn swap_scripts_are_reproducible_per_seed() {
        let db = db();
        let rels = [RelId::intern("m")];
        let a = swap_script(&db, &rels, &SwapScriptConfig::default(), 9);
        let b = swap_script(&db, &rels, &SwapScriptConfig::default(), 9);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn coalesce_scripts_cover_callers_and_stay_in_range() {
        let script = coalesce_script(5, 3, 16, 11);
        assert_eq!(script.len(), 3);
        assert!(script.iter().all(|s| s.len() == 16));
        assert!(script.iter().flatten().all(|&i| i < 5));
        // Different callers get different schedules (vacuity guard).
        assert_ne!(script[0], script[1]);
        let again = coalesce_script(5, 3, 16, 11);
        assert_eq!(script, again);
    }
}
