//! Seeded delta-sequence generators and the incremental-vs-rebuild replay
//! driver.
//!
//! Two layers of the streaming-delta contract are exercised from here:
//!
//! * **Column level** — [`column_script`] derives a seeded sequence of
//!   [`ColumnDelta`]s over a pool of dirty-vocabulary values, and
//!   [`replay_and_compare`] drives a [`MaintainedIndex`] through it,
//!   pinning after *every* step that the maintained index is `==` (entry
//!   for entry, score bits included) to a fresh [`SimilarityIndex::build`]
//!   over the live columns **and** to the brute-force all-pairs
//!   [`ReferenceIndex`].
//! * **Tuple level** — [`tx_script`] derives a seeded sequence of valid
//!   [`DeltaTx`]s against an evolving database clone (deletes always name
//!   present tuples; inserts recombine and decorate values already in the
//!   column, so similarity blocking is actually exercised). The
//!   engine-level oracle (`tests/delta_oracle.rs` at the workspace root)
//!   replays these against `Engine::apply_delta` and a from-scratch
//!   `Engine::prepare` on the mutated store.
//!
//! The split mirrors the crate graph: this crate sits *below*
//! `dlearn-core` (core's fault-injection feature depends on it), so the
//! engine-side driver has to live in the workspace test tree; everything
//! seedable and engine-agnostic lives here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlearn_relstore::{Database, DeltaTx, RelId, Sym, Value, ValueType};
use dlearn_similarity::{ColumnDelta, IndexConfig, MaintainedIndex, SimilarityIndex};

use crate::index_oracle::ReferenceIndex;

/// Knobs of the seeded [`column_script`] generator.
#[derive(Debug, Clone)]
pub struct ColumnScriptConfig {
    /// Number of [`ColumnDelta`] steps in the script.
    pub steps: usize,
    /// Values added/removed per side per step are drawn from
    /// `0..=max_changes_per_side`.
    pub max_changes_per_side: usize,
    /// Probability that a drawn change is a removal (when the live side is
    /// non-empty) rather than an addition (when the spare pool is
    /// non-empty).
    pub p_remove: f64,
}

impl Default for ColumnScriptConfig {
    fn default() -> Self {
        ColumnScriptConfig {
            steps: 6,
            max_changes_per_side: 3,
            p_remove: 0.45,
        }
    }
}

/// The live column state a script evolves, plus the script itself.
#[derive(Debug, Clone)]
pub struct ColumnScript {
    /// Initial left column (the values live *before* the first delta).
    pub left: Vec<Sym>,
    /// Initial right column.
    pub right: Vec<Sym>,
    /// Delta steps, in application order.
    pub deltas: Vec<ColumnDelta>,
}

/// Derive a seeded delta script over two value pools.
///
/// Roughly half of each pool starts live; each step moves a few values per
/// side between the live set and the spare pool, so the script mixes
/// insertions of never-seen values, removals, and re-insertions of
/// previously removed values (the adopt-state must survive round trips).
pub fn column_script(
    left_pool: &[Sym],
    right_pool: &[Sym],
    config: &ColumnScriptConfig,
    seed: u64,
) -> ColumnScript {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_de17a);
    let (mut live_left, mut spare_left) = split_pool(left_pool, &mut rng);
    let (mut live_right, mut spare_right) = split_pool(right_pool, &mut rng);
    let left = live_left.clone();
    let right = live_right.clone();

    let mut deltas = Vec::with_capacity(config.steps);
    for _ in 0..config.steps {
        let mut delta = ColumnDelta::default();
        step_side(
            &mut live_left,
            &mut spare_left,
            &mut delta.added_left,
            &mut delta.removed_left,
            config,
            &mut rng,
        );
        step_side(
            &mut live_right,
            &mut spare_right,
            &mut delta.added_right,
            &mut delta.removed_right,
            config,
            &mut rng,
        );
        deltas.push(delta);
    }
    ColumnScript {
        left,
        right,
        deltas,
    }
}

/// Split a pool into (live, spare), keeping roughly half live and at least
/// one value on each side when the pool allows it.
fn split_pool(pool: &[Sym], rng: &mut StdRng) -> (Vec<Sym>, Vec<Sym>) {
    let mut live = Vec::new();
    let mut spare = Vec::new();
    for &v in pool {
        if rng.gen_bool(0.5) {
            live.push(v);
        } else {
            spare.push(v);
        }
    }
    if live.is_empty() && !spare.is_empty() {
        live.push(spare.pop().expect("non-empty"));
    }
    if spare.is_empty() && live.len() > 1 {
        spare.push(live.pop().expect("non-empty"));
    }
    (live, spare)
}

/// Draw one side's additions/removals for a step, keeping live/spare in
/// sync so later steps stay valid.
fn step_side(
    live: &mut Vec<Sym>,
    spare: &mut Vec<Sym>,
    added: &mut Vec<Sym>,
    removed: &mut Vec<Sym>,
    config: &ColumnScriptConfig,
    rng: &mut StdRng,
) {
    let changes = rng.gen_range(0..=config.max_changes_per_side);
    for _ in 0..changes {
        let remove = rng.gen_bool(config.p_remove);
        if remove && !live.is_empty() {
            let v = live.swap_remove(rng.gen_range(0..live.len()));
            removed.push(v);
            spare.push(v);
        } else if !spare.is_empty() {
            let v = spare.swap_remove(rng.gen_range(0..spare.len()));
            added.push(v);
            live.push(v);
        }
    }
}

/// Per-step statistics of one [`replay_and_compare`] run.
#[derive(Debug, Clone, Default)]
pub struct ReplayStats {
    /// Steps replayed (equals the script length).
    pub steps: usize,
    /// Total stored pairs across all post-step maintained indexes (a
    /// vacuity guard: a script whose every state is empty proves nothing).
    pub pairs_seen: usize,
    /// Total full re-scans the maintained index ran.
    pub rescored_lefts: usize,
    /// Total targeted single-entry patches the maintained index ran.
    pub patched_entries: usize,
}

/// Drive a [`MaintainedIndex`] through a script, pinning after every step
/// that it equals both a fresh [`SimilarityIndex::build`] and the
/// brute-force [`ReferenceIndex`] over the live columns.
///
/// Panics (via `assert_eq!`) on the first divergence, naming the step.
pub fn replay_and_compare(script: &ColumnScript, config: &IndexConfig) -> ReplayStats {
    let built = SimilarityIndex::build(&script.left, &script.right, config);
    let mut maintained = MaintainedIndex::adopt(built, &script.left, &script.right, config.clone());
    let mut live_left = script.left.clone();
    let mut live_right = script.right.clone();
    let mut stats = ReplayStats::default();

    for (step, delta) in script.deltas.iter().enumerate() {
        apply_to_live(&mut live_left, &delta.added_left, &delta.removed_left);
        apply_to_live(&mut live_right, &delta.added_right, &delta.removed_right);
        let outcome = maintained.apply(delta);
        stats.steps += 1;
        stats.rescored_lefts += outcome.rescored_lefts;
        stats.patched_entries += outcome.patched_entries;
        stats.pairs_seen += maintained.index().pair_count();

        let fresh = SimilarityIndex::build(&live_left, &live_right, config);
        assert_eq!(
            maintained.index(),
            &fresh,
            "maintained index diverged from fresh build after step {step} ({delta:?})"
        );
        let reference = ReferenceIndex::build(&live_left, &live_right, config);
        assert_eq!(
            ReferenceIndex::view_of(maintained.index()),
            reference,
            "maintained index diverged from brute-force reference after step {step}"
        );
    }
    stats
}

fn apply_to_live(live: &mut Vec<Sym>, added: &[Sym], removed: &[Sym]) {
    live.retain(|v| !removed.contains(v));
    live.extend_from_slice(added);
}

/// Knobs of the seeded [`tx_script`] generator.
#[derive(Debug, Clone)]
pub struct TxScriptConfig {
    /// Number of transactions in the script.
    pub txs: usize,
    /// Ops per transaction are drawn from `1..=max_ops_per_tx`.
    pub max_ops_per_tx: usize,
    /// Probability an op is an insert (otherwise a delete of a present
    /// tuple; falls back to insert when the relation is empty).
    pub p_insert: f64,
}

impl Default for TxScriptConfig {
    fn default() -> Self {
        TxScriptConfig {
            txs: 4,
            max_ops_per_tx: 3,
            p_insert: 0.55,
        }
    }
}

/// Decoration tags appended to recombined string values, so inserted
/// strings share blocking tokens with live values (near-duplicates, the
/// regime similarity indexes exist for) without colliding exactly.
const DECOR: &[&str] = &[
    "remastered",
    "unrated",
    "directors cut",
    "special edition",
    "vol 2",
    "redux",
];

/// Derive a seeded sequence of valid [`DeltaTx`]s against `db`.
///
/// Transactions are generated against an evolving clone, so deletes always
/// name tuples present *at that point of the script* (including tuples
/// inserted by earlier transactions). Inserted string values recombine a
/// live value of the same column with a decoration tag; inserted ints are
/// drawn near the column's existing range. Only `relations` are touched.
pub fn tx_script(
    db: &Database,
    relations: &[RelId],
    config: &TxScriptConfig,
    seed: u64,
) -> Vec<DeltaTx> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_7a61e);
    let mut working = db.clone();
    let mut script = Vec::with_capacity(config.txs);
    for _ in 0..config.txs {
        let mut tx = DeltaTx::new();
        let ops = rng.gen_range(1..=config.max_ops_per_tx);
        for _ in 0..ops {
            let rel_id = relations[rng.gen_range(0..relations.len())];
            let rel = working
                .relation(rel_id)
                .unwrap_or_else(|| panic!("tx_script: unknown relation '{rel_id}'"));
            let delete = !rel.is_empty() && !rng.gen_bool(config.p_insert);
            if delete {
                let victim = rel
                    .tuple(rng.gen_range(0..rel.len()))
                    .expect("in range")
                    .clone();
                tx = tx.delete(rel_id, victim);
            } else {
                let fresh = synthesize_tuple(rel, &mut rng);
                tx = tx.insert(rel_id, fresh);
            }
        }
        working
            .apply_delta(&tx)
            .expect("generated transactions are valid by construction");
        script.push(tx);
    }
    script
}

/// Build a schema-conforming tuple whose string values are decorated
/// recombinations of live values in the same column.
fn synthesize_tuple(rel: &dlearn_relstore::Relation, rng: &mut StdRng) -> dlearn_relstore::Tuple {
    let schema = rel.schema();
    let mut values = Vec::with_capacity(schema.arity());
    for attr in 0..schema.arity() {
        let ty = schema.attribute(attr).expect("in range").ty;
        values.push(match ty {
            ValueType::Int => {
                let base = rel
                    .tuples()
                    .iter()
                    .filter_map(|t| t.value(attr).and_then(Value::as_int))
                    .max()
                    .unwrap_or(0);
                Value::int(base + 1 + rng.gen_range(0..7i64))
            }
            ValueType::Str | ValueType::Null => {
                let stems: Vec<&str> = rel
                    .tuples()
                    .iter()
                    .filter_map(|t| t.value(attr).and_then(Value::as_str))
                    .collect();
                if stems.is_empty() {
                    Value::str(DECOR[rng.gen_range(0..DECOR.len())])
                } else {
                    let stem = stems[rng.gen_range(0..stems.len())];
                    let tag = DECOR[rng.gen_range(0..DECOR.len())];
                    Value::str(format!("{stem} {tag}"))
                }
            }
        });
    }
    dlearn_relstore::Tuple::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{dirty_vocabulary, VocabConfig};
    use dlearn_relstore::{DatabaseBuilder, RelationBuilder};
    use dlearn_similarity::SimilarityOperator;

    #[test]
    fn column_scripts_change_something_and_replay_clean() {
        let vocab = dirty_vocabulary(&VocabConfig::default(), 11);
        let config = IndexConfig {
            top_k: 4,
            operator: SimilarityOperator::with_threshold(0.7),
            threads: 1,
            ..IndexConfig::default()
        };
        let script = column_script(
            &vocab.left,
            &vocab.right,
            &ColumnScriptConfig::default(),
            11,
        );
        assert!(script.deltas.iter().any(|d| !d.is_empty()));
        let stats = replay_and_compare(&script, &config);
        assert_eq!(stats.steps, script.deltas.len());
        assert!(stats.pairs_seen > 0, "vacuous script: {stats:?}");
    }

    #[test]
    fn tx_scripts_are_valid_and_touch_the_store() {
        let mut db = DatabaseBuilder::new()
            .relation(
                RelationBuilder::new("m")
                    .int_attr("id")
                    .str_attr("title")
                    .build(),
            )
            .build();
        for (i, t) in ["golden harbor", "silent meadow", "crimson summit"]
            .iter()
            .enumerate()
        {
            db.insert(
                "m",
                dlearn_relstore::tuple(vec![Value::int(i as i64), Value::str(*t)]),
            )
            .unwrap();
        }
        let rels = [RelId::intern("m")];
        let script = tx_script(&db, &rels, &TxScriptConfig::default(), 3);
        assert_eq!(script.len(), TxScriptConfig::default().txs);
        let mut replay = db.clone();
        let mut touched = 0;
        for tx in &script {
            let changes = replay.apply_delta(tx).expect("script must stay valid");
            touched += usize::from(!changes.is_empty());
        }
        assert!(touched > 0, "script never touched the store");
        // Inserted strings decorate live stems, so blocking keys overlap.
        let decorated = replay
            .relation("m")
            .unwrap()
            .tuples()
            .iter()
            .filter_map(|t| t.value(1).and_then(Value::as_str))
            .filter(|s| DECOR.iter().any(|d| s.ends_with(d)))
            .count();
        assert!(decorated > 0 || script.iter().all(|tx| !tx.ops().is_empty()));
    }
}
