//! Seeded dirty-string vocabulary generators for similarity-index testing.
//!
//! The generators model the value heterogeneity DLearn's matching
//! dependencies are built for: the two sides of an MD hold *variants* of a
//! shared set of base entity names — decorated with years or edition tags,
//! typo'd inside a token, or with their tokens swapped — plus some values
//! private to one side.
//!
//! The generated vocabularies are **blocking-complete**: every (left,
//! right) pair whose combined score can reach `blocking_floor` shares at
//! least one blocking key of the production index
//! (`dlearn_similarity::tokenize::blocking_keys`: word tokens, plus
//! character trigrams for values of at most two tokens). Two mechanisms
//! cooperate:
//!
//! * the corruptions are designed to keep same-base variants in a common
//!   block — at most one token is typo'd per variant, typos only hit tokens
//!   of length ≥ 6 at char position ≥ 3 (leading trigrams survive), token
//!   swaps permute tokens without changing them, decorations only append;
//! * a final deterministic vetting pass *enforces* the contract: any left
//!   value still forming an above-floor pair with a key-disjoint right
//!   value (two sides of a base typo'd in different tokens, or short
//!   unrelated words aligning by chance) is dropped. The pass only removes
//!   values, so it cannot create a completeness violation, and the drop
//!   rate stays small (pinned by a test below).
//!
//! That makes brute-force all-pairs comparison a meaningful oracle for the
//! blocked index: on these vocabularies, blocking hides nothing above the
//! floor, so the only ways the built index could diverge from the oracle
//! are the length filter, the top-k early exit, or the parallel merge —
//! exactly what `crates/similarity/tests/index_oracle.rs` pins.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlearn_relstore::Sym;
use dlearn_similarity::tokenize::blocking_keys;
use dlearn_similarity::SimilarityOperator;

/// Adjective-like title words. All entries are at least 6 chars so any of
/// them is eligible for a trigram-preserving typo.
const WORDS_A: &[&str] = &[
    "crimson",
    "silent",
    "golden",
    "hidden",
    "broken",
    "electric",
    "midnight",
    "wandering",
    "obsidian",
    "restless",
    "scarlet",
    "twisted",
    "violet",
    "frozen",
    "burning",
    "distant",
    "gentle",
    "hollow",
    "emerald",
    "mystic",
];

/// Noun-like title words.
const WORDS_B: &[&str] = &[
    "harbor",
    "summit",
    "valley",
    "garden",
    "empire",
    "shadow",
    "canyon",
    "horizon",
    "meadow",
    "fortress",
    "lantern",
    "mirror",
    "orchard",
    "passage",
    "quarry",
    "sanctuary",
    "threshold",
    "voyage",
    "whisper",
    "beacon",
    "cascade",
    "dominion",
    "frontier",
    "glacier",
    "harvest",
];

/// Edition-style decoration tokens (appended, never corrupted).
const EDITIONS: &[&str] = &["remastered", "directors cut", "special edition", "unrated"];

/// Knobs of the dirty vocabulary generator.
#[derive(Debug, Clone)]
pub struct VocabConfig {
    /// Number of shared base entity names.
    pub bases: usize,
    /// Variants of each base emitted on the left side (`0..=left_variants`,
    /// drawn uniformly).
    pub left_variants: usize,
    /// Variants of each base emitted on the right side.
    pub right_variants: usize,
    /// Extra values private to each side (unrelated entities).
    pub noise_per_side: usize,
    /// Probability that a variant gets a char-level typo in one token.
    pub p_typo: f64,
    /// Probability that a variant gets a year/edition decoration.
    pub p_decorate: f64,
    /// Probability that a multi-token variant has two tokens swapped.
    pub p_swap: f64,
    /// Blocking-completeness floor: after generation, left values that form
    /// a pair scoring at least this value with a key-disjoint right value
    /// are dropped (see the module docs). Oracle suites must not test
    /// thresholds below this. `None` skips the vetting pass (benchmarks,
    /// where completeness is irrelevant and the all-pairs pass would cost
    /// as much as the workload itself).
    pub blocking_floor: Option<f64>,
    /// Zipf skew exponent of the word draws: rank `i` of a word list is
    /// drawn with weight `1 / (i + 1)^zipf_s`. `0.0` (the default) is the
    /// uniform draw — and takes the *identical* RNG path as before the knob
    /// existed, so seeded vocabularies (including the committed benchmark
    /// workloads) are unchanged. Realistic title vocabularies are heavily
    /// skewed; `zipf_s` ≈ 1 makes a handful of words dominate, which turns
    /// their blocking keys hot and exercises the index's skew-aware
    /// candidate generation.
    pub zipf_s: f64,
}

impl Default for VocabConfig {
    fn default() -> Self {
        VocabConfig {
            bases: 24,
            left_variants: 2,
            right_variants: 2,
            noise_per_side: 8,
            p_typo: 0.45,
            p_decorate: 0.5,
            p_swap: 0.25,
            blocking_floor: Some(0.65),
            zipf_s: 0.0,
        }
    }
}

impl VocabConfig {
    /// A configuration sized for the `index_build` benchmark: ~1k distinct
    /// values per side, no vetting pass.
    pub fn benchmark_1k() -> Self {
        VocabConfig {
            bases: 720,
            left_variants: 2,
            right_variants: 2,
            noise_per_side: 260,
            blocking_floor: None,
            ..VocabConfig::default()
        }
    }

    /// A benchmark configuration scaled to roughly `per_side` values per
    /// side, keeping the base/noise mix of [`VocabConfig::benchmark_1k`]
    /// (`benchmark_sized(1000)` *is* that configuration). Used by the
    /// scaling-curve benches, where curve shape across sizes is the signal.
    pub fn benchmark_sized(per_side: usize) -> Self {
        VocabConfig {
            bases: per_side * 72 / 100,
            noise_per_side: per_side * 26 / 100,
            ..VocabConfig::benchmark_1k()
        }
    }

    /// A default-shaped oracle configuration with Zipf-skewed word draws:
    /// hot stopword-ish tokens dominate, so the index's hot-key path is
    /// exercised while the vetting pass still guarantees
    /// blocking-completeness.
    pub fn skewed_oracle(zipf_s: f64) -> Self {
        VocabConfig {
            zipf_s,
            ..VocabConfig::default()
        }
    }

    /// Set the Zipf skew exponent (builder style).
    pub fn with_zipf_s(mut self, zipf_s: f64) -> Self {
        self.zipf_s = zipf_s;
        self
    }
}

/// A generated pair of dirty columns (the two sides of an MD).
#[derive(Debug, Clone)]
pub struct DirtyVocabulary {
    /// Left-column values (duplicates possible, as in a real column).
    pub left: Vec<Sym>,
    /// Right-column values.
    pub right: Vec<Sym>,
    /// Left values removed by the blocking-completeness vetting pass.
    pub dropped_left: usize,
}

/// A base entity name of 1–3 tokens drawn from the word lists.
fn base_title(rng: &mut StdRng, zipf_s: f64) -> String {
    match rng.gen_range(0..4u32) {
        // Single-token names exercise the trigram blocking path.
        0 => pick(rng, WORDS_B, zipf_s).to_string(),
        1 | 2 => format!(
            "{} {}",
            pick(rng, WORDS_A, zipf_s),
            pick(rng, WORDS_B, zipf_s)
        ),
        _ => format!(
            "{} {} {}",
            pick(rng, WORDS_A, zipf_s),
            pick(rng, WORDS_B, zipf_s),
            pick(rng, WORDS_B, zipf_s)
        ),
    }
}

/// Draw a word: uniformly for `zipf_s = 0` (one integer draw — the exact
/// pre-knob RNG stream), Zipf-weighted by list rank otherwise (one float
/// draw walking the cumulative mass).
fn pick<'a>(rng: &mut StdRng, items: &'a [&'a str], zipf_s: f64) -> &'a str {
    if zipf_s <= 0.0 {
        return items[rng.gen_range(0..items.len())];
    }
    let weight = |i: usize| 1.0 / ((i + 1) as f64).powf(zipf_s);
    let total: f64 = (0..items.len()).map(weight).sum();
    let mut draw = rng.gen_range(0.0..1.0) * total;
    for (i, item) in items.iter().enumerate() {
        draw -= weight(i);
        if draw <= 0.0 {
            return item;
        }
    }
    items[items.len() - 1]
}

/// Apply a char-level typo (substitution, deletion, or duplication) to one
/// eligible token: length ≥ 6, at char position ≥ 3, so the token's leading
/// trigrams — and with them at least one blocking key of short values —
/// survive.
fn typo_one_token(title: &str, rng: &mut StdRng) -> String {
    let mut tokens: Vec<String> = title.split(' ').map(str::to_string).collect();
    let eligible: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].chars().count() >= 6)
        .collect();
    if eligible.is_empty() {
        return title.to_string();
    }
    let ti = eligible[rng.gen_range(0..eligible.len())];
    let mut chars: Vec<char> = tokens[ti].chars().collect();
    let pos = rng.gen_range(3..chars.len());
    match rng.gen_range(0..3u32) {
        0 => chars[pos] = alphabet_char(rng),
        1 => {
            chars.remove(pos);
        }
        _ => chars.insert(pos, chars[pos - 1]),
    }
    tokens[ti] = chars.into_iter().collect();
    tokens.join(" ")
}

fn alphabet_char(rng: &mut StdRng) -> char {
    (b'a' + rng.gen_range(0..26u32) as u8) as char
}

/// One dirty variant of a base title. At most one token is typo'd; swaps
/// permute whole tokens; decorations append new tokens — so variant and
/// base always share a blocking key.
fn variant(base: &str, rng: &mut StdRng, config: &VocabConfig) -> String {
    let mut title = base.to_string();
    if rng.gen_bool(config.p_typo) {
        title = typo_one_token(&title, rng);
    }
    if rng.gen_bool(config.p_swap) {
        let mut tokens: Vec<&str> = title.split(' ').collect();
        if tokens.len() >= 2 {
            let i = rng.gen_range(0..tokens.len() - 1);
            tokens.swap(i, i + 1);
            title = tokens.join(" ");
        }
    }
    if rng.gen_bool(config.p_decorate) {
        title = match rng.gen_range(0..3u32) {
            0 => format!("{title} ({})", 1960 + rng.gen_range(0..60u32)),
            1 => format!("{title} {}", pick(rng, EDITIONS, config.zipf_s)),
            _ => format!("The {title}"),
        };
    }
    title
}

/// Generate a seeded dirty vocabulary pair. Deterministic per
/// `(config, seed)`.
pub fn dirty_vocabulary(config: &VocabConfig, seed: u64) -> DirtyVocabulary {
    let mut rng = StdRng::seed_from_u64(seed);
    let bases: Vec<String> = (0..config.bases)
        .map(|_| base_title(&mut rng, config.zipf_s))
        .collect();
    let mut left: Vec<Sym> = Vec::new();
    let mut right: Vec<Sym> = Vec::new();
    for base in &bases {
        for _ in 0..rng.gen_range(0..config.left_variants + 1) {
            left.push(Sym::intern(variant(base, &mut rng, config)));
        }
        for _ in 0..rng.gen_range(0..config.right_variants + 1) {
            right.push(Sym::intern(variant(base, &mut rng, config)));
        }
    }
    // Side-private noise: fresh bases that may still collide with shared
    // tokens (realistic, and it stresses the blocking candidate lists).
    for _ in 0..config.noise_per_side {
        left.push(Sym::intern(base_title(&mut rng, config.zipf_s)));
        right.push(Sym::intern(base_title(&mut rng, config.zipf_s)));
    }
    let dropped_left = match config.blocking_floor {
        Some(floor) => enforce_blocking_completeness(&mut left, &right, floor),
        None => 0,
    };
    DirtyVocabulary {
        left,
        right,
        dropped_left,
    }
}

/// Drop every left value that forms a pair scoring at least `floor` with a
/// right value it shares no blocking key with. Removing values can only
/// remove pairs, so the result is blocking-complete above `floor` by
/// construction. Returns the number of values dropped.
fn enforce_blocking_completeness(left: &mut Vec<Sym>, right: &[Sym], floor: f64) -> usize {
    let operator = SimilarityOperator::with_threshold(floor);
    let right_keys: Vec<HashSet<String>> = right
        .iter()
        .map(|r| blocking_keys(r.as_str()).into_iter().collect())
        .collect();
    let before = left.len();
    left.retain(|l| {
        let keys = blocking_keys(l.as_str());
        right.iter().zip(&right_keys).all(|(r, rk)| {
            keys.iter().any(|k| rk.contains(k)) || operator.score(l.as_str(), r.as_str()) < floor
        })
    });
    before - left.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = VocabConfig::default();
        let a = dirty_vocabulary(&config, 11);
        let b = dirty_vocabulary(&config, 11);
        assert_eq!(a.left, b.left);
        assert_eq!(a.right, b.right);
        let c = dirty_vocabulary(&config, 12);
        assert_ne!(
            (a.left, a.right),
            (c.left, c.right),
            "different seeds should differ"
        );
    }

    #[test]
    fn vocabularies_are_nonempty_and_dirty() {
        let config = VocabConfig::default();
        let v = dirty_vocabulary(&config, 3);
        assert!(v.left.len() >= config.noise_per_side);
        assert!(v.right.len() >= config.noise_per_side);
        // At least one decorated variant should appear across a few seeds.
        let any_decorated = (0..5).any(|seed| {
            dirty_vocabulary(&config, seed)
                .right
                .iter()
                .any(|s| s.as_str().contains('('))
        });
        assert!(any_decorated, "no decoration ever applied");
    }

    #[test]
    fn typos_preserve_leading_trigrams() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let t = typo_one_token("sanctuary", &mut rng);
            assert!(t.starts_with("san"), "typo clobbered the prefix: {t:?}");
        }
    }

    #[test]
    fn vetting_pass_drops_only_a_small_fraction() {
        // The corruption rules are supposed to keep same-base variants in a
        // common block on their own; the vetting pass is a backstop for the
        // residue (different tokens typo'd on the two sides, chance
        // alignments of short words). If it starts eating the vocabulary,
        // the oracle suite would be passing on trivial inputs.
        let config = VocabConfig::default();
        let mut total = 0usize;
        let mut dropped = 0usize;
        for seed in 0..30u64 {
            let v = dirty_vocabulary(&config, seed);
            total += v.left.len() + v.dropped_left;
            dropped += v.dropped_left;
        }
        assert!(total > 0);
        let rate = dropped as f64 / total as f64;
        assert!(
            rate < 0.15,
            "vetting pass dropped {dropped}/{total} left values (rate {rate:.2})"
        );
    }

    #[test]
    fn vetted_vocabularies_are_blocking_complete() {
        // Re-check the invariant the pass enforces, with independent code.
        let config = VocabConfig::default();
        let floor = config.blocking_floor.unwrap();
        let operator = SimilarityOperator::with_threshold(floor);
        for seed in 40..48u64 {
            let v = dirty_vocabulary(&config, seed);
            for &l in &v.left {
                let lk: HashSet<String> = blocking_keys(l.as_str()).into_iter().collect();
                for &r in &v.right {
                    if operator.score(l.as_str(), r.as_str()) >= floor {
                        assert!(
                            blocking_keys(r.as_str()).iter().any(|k| lk.contains(k)),
                            "seed {seed}: {:?} / {:?} reach the floor but share no key",
                            l.as_str(),
                            r.as_str()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn benchmark_config_reaches_about_1k_values_per_side() {
        let v = dirty_vocabulary(&VocabConfig::benchmark_1k(), 42);
        assert!(
            v.left.len() >= 850 && v.right.len() >= 850,
            "left {} right {}",
            v.left.len(),
            v.right.len()
        );
    }

    #[test]
    fn benchmark_sized_1000_is_benchmark_1k() {
        let a = dirty_vocabulary(&VocabConfig::benchmark_sized(1000), 42);
        let b = dirty_vocabulary(&VocabConfig::benchmark_1k(), 42);
        assert_eq!(a.left, b.left);
        assert_eq!(a.right, b.right);
        // Smaller sizes scale roughly proportionally.
        let small = dirty_vocabulary(&VocabConfig::benchmark_sized(250), 42);
        assert!(
            small.left.len() >= 180 && small.left.len() <= 330,
            "250-sized config produced {} left values",
            small.left.len()
        );
    }

    #[test]
    fn zipf_zero_keeps_the_legacy_rng_stream() {
        // The knob's uniform path must draw exactly what the pre-knob
        // generator drew, so every committed seeded workload is unchanged.
        // `with_zipf_s(0.0)` is a no-op by construction; the load-bearing
        // check is that a *tiny positive* skew changes the stream (i.e. the
        // skewed path really is taken) while 0.0 does not.
        let config = VocabConfig::default();
        let base = dirty_vocabulary(&config, 9);
        let zero = dirty_vocabulary(&config.clone().with_zipf_s(0.0), 9);
        assert_eq!((&base.left, &base.right), (&zero.left, &zero.right));
        let skewed = dirty_vocabulary(&config.clone().with_zipf_s(1.2), 9);
        assert_ne!(
            (&base.left, &base.right),
            (&skewed.left, &skewed.right),
            "skewed generation unexpectedly identical"
        );
    }

    #[test]
    fn zipf_skew_concentrates_word_mass() {
        // Under s = 1.2 the rank-0 noun must dominate the rank-last noun by
        // a wide margin; under the uniform draw they are comparable.
        let count = |v: &DirtyVocabulary, word: &str| -> usize {
            v.left
                .iter()
                .chain(&v.right)
                .filter(|s| s.as_str().split(' ').any(|t| t == word))
                .count()
        };
        let config = VocabConfig {
            bases: 200,
            noise_per_side: 40,
            blocking_floor: None,
            ..VocabConfig::default()
        };
        let first = WORDS_B[0];
        let last = WORDS_B[WORDS_B.len() - 1];
        let skewed = dirty_vocabulary(&config.clone().with_zipf_s(1.2), 17);
        let (hot, cold) = (count(&skewed, first), count(&skewed, last));
        assert!(
            hot >= 5 * cold.max(1),
            "rank-0 word not dominant under skew: {hot} vs {cold}"
        );
        let uniform = dirty_vocabulary(&config, 17);
        let (u_hot, u_cold) = (count(&uniform, first), count(&uniform, last));
        assert!(
            u_hot < 3 * u_cold.max(1),
            "uniform draw unexpectedly skewed: {u_hot} vs {u_cold}"
        );
    }

    #[test]
    fn skewed_oracle_vocabularies_stay_blocking_complete_and_nonempty() {
        // The vetting pass must survive the hot-token pileup: skewed
        // vocabularies still come out blocking-complete (re-checked with
        // independent code) and the pass must not eat the vocabulary.
        let config = VocabConfig::skewed_oracle(1.2);
        let floor = config.blocking_floor.unwrap();
        let operator = SimilarityOperator::with_threshold(floor);
        let mut total = 0usize;
        let mut dropped = 0usize;
        for seed in 60..66u64 {
            let v = dirty_vocabulary(&config, seed);
            total += v.left.len() + v.dropped_left;
            dropped += v.dropped_left;
            for &l in &v.left {
                let lk: HashSet<String> = blocking_keys(l.as_str()).into_iter().collect();
                for &r in &v.right {
                    if operator.score(l.as_str(), r.as_str()) >= floor {
                        assert!(
                            blocking_keys(r.as_str()).iter().any(|k| lk.contains(k)),
                            "seed {seed}: {:?} / {:?} reach the floor but share no key",
                            l.as_str(),
                            r.as_str()
                        );
                    }
                }
            }
        }
        assert!(total > 0);
        let rate = dropped as f64 / total as f64;
        assert!(
            rate < 0.35,
            "vetting pass dropped {dropped}/{total} skewed left values (rate {rate:.2})"
        );
    }
}
