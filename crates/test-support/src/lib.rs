//! # dlearn-test-support — differential-testing machinery
//!
//! This crate is the testing contract of the θ-subsumption engine, shared by
//! the `dlearn-logic` randomized differential suite, the workspace-level
//! end-to-end differential suite and the benches. It provides:
//!
//! * [`gen`] — seeded random clause / ground-clause generators producing
//!   *oracle-safe* candidate clauses (every constraint and repair variable
//!   occurs in the head or a relation literal — the shape bottom-clause
//!   construction emits), plus the deterministic `backtracking_heavy`
//!   adversarial pair used by the benches.
//! * [`oracle`] — a brute-force reference matcher that enumerates **all**
//!   variable→term assignments of a small candidate clause (over the terms
//!   of `D` plus canonical fresh terms) and a witness verifier checking that
//!   a returned θ really embeds `C` into `D`.
//! * [`string_reference`] — the string-keyed, allocation-heavy matcher the
//!   interning refactor replaced, kept as a second, structurally different
//!   reference implementation.
//! * [`vocab`] — seeded dirty-string vocabulary generators (typos, token
//!   swaps, decorations) whose corruptions always leave the two sides of a
//!   shared base in a common blocking block.
//! * [`index_oracle`] — a brute-force all-pairs reference similarity index
//!   (no blocking, no length filter, no early exit) that the similarity
//!   crate's differential suite compares the production
//!   `SimilarityIndex::build` against.
//! * `fault` (feature `fault-injection`) — deterministic seeded injection
//!   of panics, delays and forced budget exhaustion at named serving-tier
//!   checkpoints, driving the service robustness suite.
//!
//! The differential tests assert *soundness* (any θ the production matcher
//! returns verifies as an embedding) and *decision agreement* with both
//! references, instead of pinning the exact search order — which is what
//! frees the production matcher to re-order literals adaptively.

#![warn(missing_docs)]

pub mod delta;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod gen;
pub mod index_oracle;
pub mod oracle;
pub mod string_reference;
pub mod swap;
pub mod vocab;

pub use delta::{
    column_script, replay_and_compare, tx_script, ColumnScript, ColumnScriptConfig, ReplayStats,
    TxScriptConfig,
};
pub use gen::{
    backtracking_heavy_pair, derived_candidate, random_candidate, random_ground, GenConfig,
};
pub use index_oracle::ReferenceIndex;
pub use oracle::OracleGround;
pub use string_reference::StringGround;
pub use swap::{coalesce_script, swap_script, SwapScriptConfig, SwapStep};
pub use vocab::{dirty_vocabulary, DirtyVocabulary, VocabConfig};
