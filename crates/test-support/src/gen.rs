//! Seeded random clause generation for differential testing.
//!
//! [`random_ground`] produces "ground bottom clause"-shaped right-hand sides
//! `D`: relation literals mixing variables and constants, similarity and
//! equality literals, and MD repair groups over the similarity literals.
//! [`derived_candidate`] and [`random_candidate`] produce left-hand sides
//! `C` that are **oracle-safe**: every variable of a constraint literal or a
//! repair replacement's left side occurs in the head or in a relation
//! literal, and each repair group's replacement target is a variable private
//! to that group. For safe clauses the production matcher's greedy
//! constraint/repair phase decides exactly the ∃-semantics the brute-force
//! oracle enumerates (all constraint variables are bound by the time the
//! phase runs), so boolean decisions must agree — which is what the
//! differential suites assert. Bottom-clause construction only emits safe
//! clauses, so the restriction does not narrow the tested contract.

use rand::rngs::StdRng;
use rand::Rng;

use dlearn_logic::{Clause, CondAtom, Literal, RepairGroup, RepairOrigin, Substitution, Term, Var};

/// Knobs of the random clause generator. The defaults reproduce the clause
/// distribution of the original decision-parity differential (4 relations ×
/// arities 1–3 over 8 variables and 4 constants) with equality literals and
/// inequality candidates added on top.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Relation-name vocabulary for body literals.
    pub relations: &'static [&'static str],
    /// Constant vocabulary.
    pub constants: &'static [&'static str],
    /// Body literal count range `min_body..max_body` of `D`.
    pub min_body: usize,
    /// Exclusive upper bound of the body literal count of `D`.
    pub max_body: usize,
    /// Arities are drawn from `1..=max_arity`.
    pub max_arity: usize,
    /// Variables of `D` are drawn from `0..n_vars`.
    pub n_vars: u32,
    /// Probability that a relation argument is a constant.
    pub p_const: f64,
    /// Maximum number of similarity literals added to `D`.
    pub max_similar: usize,
    /// Maximum number of equality literals added to `D`.
    pub max_equal: usize,
    /// Maximum number of repair groups attached to `D` (capped by the
    /// number of similarity literals actually present).
    pub max_repairs: usize,
    /// Probability a body literal of `D` is kept in a derived candidate.
    pub p_keep_literal: f64,
    /// Probability a repair group of `D` is kept in a derived candidate.
    pub p_keep_repair: f64,
    /// Probability of adding one inequality literal between two bound
    /// variables of a derived candidate.
    pub p_not_equal: f64,
    /// Offset added to every candidate variable, so candidate and ground
    /// variable spaces never collide.
    pub rename_offset: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            relations: &["r0", "r1", "r2", "r3"],
            constants: &["alpha", "beta", "gamma", "delta"],
            min_body: 2,
            max_body: 8,
            max_arity: 3,
            n_vars: 8,
            p_const: 0.3,
            max_similar: 3,
            max_equal: 2,
            max_repairs: 2,
            p_keep_literal: 0.6,
            p_keep_repair: 0.4,
            p_not_equal: 0.3,
            rename_offset: 40,
        }
    }
}

/// Variable index base for the fresh per-group repair replacement targets of
/// generated ground clauses (kept clear of `0..n_vars`).
const REPAIR_TARGET_BASE: u32 = 20;

fn random_term(rng: &mut StdRng, cfg: &GenConfig) -> Term {
    if rng.gen_bool(cfg.p_const) {
        Term::constant(cfg.constants[rng.gen_range(0..cfg.constants.len())])
    } else {
        Term::var(rng.gen_range(0..cfg.n_vars))
    }
}

/// A random "ground bottom" style clause: relation literals (mixing
/// variables and constants), similarity and equality literals, and MD repair
/// groups over the similarity literals.
pub fn random_ground(rng: &mut StdRng, cfg: &GenConfig) -> Clause {
    let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
    let n_lits = rng.gen_range(cfg.min_body..cfg.max_body);
    for _ in 0..n_lits {
        let name = cfg.relations[rng.gen_range(0..cfg.relations.len())];
        let arity = rng.gen_range(1..=cfg.max_arity);
        let args: Vec<Term> = (0..arity).map(|_| random_term(rng, cfg)).collect();
        d.push_unique(Literal::relation(name, args));
    }
    for _ in 0..rng.gen_range(0..=cfg.max_similar) {
        let a = Term::var(rng.gen_range(0..cfg.n_vars));
        let b = Term::var(rng.gen_range(0..cfg.n_vars));
        if a != b {
            d.push_unique(Literal::Similar(a, b));
        }
    }
    for _ in 0..rng.gen_range(0..=cfg.max_equal) {
        let a = Term::var(rng.gen_range(0..cfg.n_vars));
        let b = Term::var(rng.gen_range(0..cfg.n_vars));
        if a != b {
            d.push_unique(Literal::Equal(a, b));
        }
    }
    // Repair groups over existing similarity literals, each replacing the
    // similar pair by a target variable private to the group.
    let sims: Vec<(Term, Term)> = d
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Similar(a, b) => Some((*a, *b)),
            _ => None,
        })
        .collect();
    for (gi, (a, b)) in sims.iter().enumerate().take(cfg.max_repairs) {
        let fresh = Term::var(REPAIR_TARGET_BASE + gi as u32);
        let (Some(va), Some(vb)) = (a.as_var(), b.as_var()) else {
            continue;
        };
        d.push_repair(RepairGroup::new(
            RepairOrigin::Md(gi),
            vec![CondAtom::Sim(*a, *b)],
            vec![(va, fresh), (vb, fresh)],
            vec![Literal::Similar(*a, *b)],
        ));
    }
    d
}

/// Restrict a candidate clause to its oracle-safe core: drop constraint
/// literals mentioning a variable bound by no relation literal (and not by
/// the head), and repair groups whose replaced variables are not all bound.
/// See the module docs for why safety makes greedy constraint checking
/// complete.
fn make_safe(c: &mut Clause) {
    let mut bound: std::collections::BTreeSet<Var> = c.head.variables();
    for l in c.body.iter().filter(|l| l.is_relation()) {
        bound.extend(l.variables());
    }
    c.body
        .retain(|l| l.is_relation() || l.variables().iter().all(|v| bound.contains(v)));
    c.repairs
        .retain(|g| g.replacements.iter().all(|(x, _)| bound.contains(x)));
}

/// Rename every variable of `c` by `cfg.rename_offset`, so the candidate's
/// variable space is disjoint from the ground clause's.
fn rename(c: &Clause, cfg: &GenConfig) -> Clause {
    let renaming: Substitution = c
        .variables()
        .into_iter()
        .map(|v| (v, Term::var(v.0 + cfg.rename_offset)))
        .collect();
    c.apply(&renaming)
}

/// Derive a candidate `C` from `D`: keep a random subset of literals and
/// repair groups, restrict to the oracle-safe core, optionally add an
/// inequality literal, then rename variables. By construction these
/// frequently (but not always — repair groups may lose their consumed
/// literals, inequalities may be unsatisfiable) subsume `D`, giving the
/// differential both positive and negative cases.
pub fn derived_candidate(rng: &mut StdRng, d: &Clause, cfg: &GenConfig) -> Clause {
    let mut c = Clause::new(d.head.clone());
    for l in &d.body {
        if rng.gen_bool(cfg.p_keep_literal) {
            c.push_unique(l.clone());
        }
    }
    for g in &d.repairs {
        if rng.gen_bool(cfg.p_keep_repair) {
            c.push_repair(g.clone());
        }
    }
    make_safe(&mut c);
    if rng.gen_bool(cfg.p_not_equal) {
        let bound: Vec<Var> = {
            let mut vars = c.head.variables();
            for l in c.body.iter().filter(|l| l.is_relation()) {
                vars.extend(l.variables());
            }
            vars.into_iter().collect()
        };
        if bound.len() >= 2 {
            let i = rng.gen_range(0..bound.len());
            let j = rng.gen_range(0..bound.len());
            if i != j {
                c.push_unique(Literal::NotEqual(Term::Var(bound[i]), Term::Var(bound[j])));
            }
        }
    }
    rename(&c, cfg)
}

/// A fully random candidate (mostly negative cases), restricted to its
/// oracle-safe core and renamed clear of the ground clause's variables.
pub fn random_candidate(rng: &mut StdRng, cfg: &GenConfig) -> Clause {
    let mut c = random_ground(rng, cfg);
    make_safe(&mut c);
    // Rename twice the offset so independently generated candidates do not
    // collide with derived candidates either.
    let renaming: Substitution = c
        .variables()
        .into_iter()
        .map(|v| (v, Term::var(v.0 + 2 * cfg.rename_offset)))
        .collect();
    c.apply(&renaming)
}

/// The deterministic adversarial workload behind the `backtracking_heavy`
/// bench entry: a candidate chain `edge(x1,x2), …, edge(x5,x6)` that must
/// start in graph component A (`start(x1)`) and end in component B
/// (`end(x6)`) of a ground clause whose `edge` relation never crosses the
/// two components — so the clause does **not** subsume, and the matcher has
/// to exhaust the search space to say so.
///
/// The chain literals are deliberately listed in a scrambled body order:
/// a static fewest-candidates-first order (all `edge` literals tie on
/// bucket size) degenerates to that scrambled order and repeatedly matches
/// literals none of whose variables are bound yet, while adaptive ordering
/// follows the bindings through the chain and fail-fasts as soon as the
/// component-B endpoint makes some remaining literal candidate-free.
///
/// Returns `(candidate, ground)`.
pub fn backtracking_heavy_pair() -> (Clause, Clause) {
    const COMPONENT: usize = 20;
    let name = |prefix: &str, i: usize| format!("{prefix}{i}");

    let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
    // Two disconnected digraph components over constants, out-degree 3.
    for (prefix, base) in [("a", 0usize), ("b", 1000usize)] {
        for i in 0..COMPONENT {
            let src = Term::constant(name(prefix, base + i));
            for step in [1usize, 7, 11] {
                let dst = Term::constant(name(prefix, base + (i + step) % COMPONENT));
                d.push_unique(Literal::relation("edge", vec![src, dst]));
            }
        }
    }
    d.push_unique(Literal::relation(
        "start",
        vec![Term::constant(name("a", 0))],
    ));
    d.push_unique(Literal::relation(
        "end",
        vec![Term::constant(name("b", 1000 + 5))],
    ));

    let mut c = Clause::new(Literal::relation("t", vec![Term::var(100)]));
    c.push_unique(Literal::relation("start", vec![Term::var(1)]));
    c.push_unique(Literal::relation("end", vec![Term::var(6)]));
    // Scrambled chain order: consecutive listed literals share no variable.
    for (s, t) in [(3u32, 4u32), (1, 2), (5, 6), (2, 3), (4, 5)] {
        c.push_unique(Literal::relation("edge", vec![Term::var(s), Term::var(t)]));
    }
    (c, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_candidates_are_safe() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(0x5afe);
        for case in 0..200 {
            let d = random_ground(&mut rng, &cfg);
            let c = if case % 2 == 0 {
                derived_candidate(&mut rng, &d, &cfg)
            } else {
                random_candidate(&mut rng, &cfg)
            };
            let mut bound = c.head.variables();
            for l in c.body.iter().filter(|l| l.is_relation()) {
                bound.extend(l.variables());
            }
            for l in c.body.iter().filter(|l| !l.is_relation()) {
                assert!(
                    l.variables().iter().all(|v| bound.contains(v)),
                    "unsafe constraint literal {l} in {c}"
                );
            }
            for g in &c.repairs {
                assert!(g.replacements.iter().all(|(x, _)| bound.contains(x)));
            }
        }
    }

    #[test]
    fn backtracking_heavy_pair_is_well_formed() {
        let (c, d) = backtracking_heavy_pair();
        assert_eq!(c.body.len(), 7);
        // 2 components × 20 nodes × out-degree 3, plus start and end.
        assert_eq!(d.body.len(), 2 * 20 * 3 + 2);
    }
}
