//! Deterministic fault injection for the serving tier (feature
//! `fault-injection`).
//!
//! The robustness suite needs to *prove* that one poisoned or slow example
//! cannot take down a batch — which requires making examples poisoned or
//! slow on demand, deterministically, at the exact pipeline stages the
//! service guards. This module provides named checkpoints
//! ([`Site::Grounding`], [`Site::Coverage`], [`Site::Alignment`]) that
//! production code compiles in only under the `fault-injection` feature; a
//! [`FaultPlan`] installed via [`install`] decides, from a seed and the
//! checkpoint's key, whether to panic, sleep, or force the caller's step
//! budget to zero at each visit.
//!
//! Decisions are a pure function of `(seed, rule index, site, key)` — no
//! global RNG state — so a plan injects the same faults at every thread
//! count and on every rerun. [`install`] holds a global lock for the
//! lifetime of the returned [`FaultGuard`], serializing tests that inject
//! faults against each other; dropping the guard clears the plan.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Duration;

/// Marker embedded in every injected panic's message, so panic hooks and
/// assertions can tell injected panics from real bugs.
pub const PANIC_MARKER: &str = "fault-injection: injected panic";

/// A named pipeline stage where faults can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Bottom-clause grounding of one served example (key: the tuple's
    /// display form).
    Grounding,
    /// The per-example coverage test (key: the tuple's display form).
    Coverage,
    /// MD similarity-catalog construction at prepare time (key: the target
    /// relation's name).
    Alignment,
    /// Incremental delta application — index maintenance and grounding
    /// patching (key: the target relation's name).
    Delta,
    /// Model publication on the serving tier — the epoch swap in
    /// `PredictorService::publish` / `PredictorService::apply_delta` (key:
    /// `"publish@<epoch>"` / `"delta@<epoch>"`).
    Swap,
    /// Refinement search in `Engine::learn` — any strategy's refiner over
    /// the prepared plan (key: the strategy's display name).
    Learn,
}

impl Site {
    fn index(self) -> usize {
        match self {
            Site::Grounding => 0,
            Site::Coverage => 1,
            Site::Alignment => 2,
            Site::Delta => 3,
            Site::Swap => 4,
            Site::Learn => 5,
        }
    }

    /// Stable name used in hashes and messages.
    pub fn name(self) -> &'static str {
        match self {
            Site::Grounding => "grounding",
            Site::Coverage => "coverage",
            Site::Alignment => "alignment",
            Site::Delta => "delta",
            Site::Swap => "swap",
            Site::Learn => "learn",
        }
    }
}

/// What an activated rule does at its checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Panic with a message containing [`PANIC_MARKER`].
    Panic,
    /// Sleep for the given duration, then proceed.
    Delay(Duration),
    /// Tell the caller to act as if its step budget were already exhausted.
    ExhaustBudget,
}

/// What the caller of [`checkpoint`] should do next. Panics and delays are
/// executed *inside* the checkpoint; budget exhaustion cannot be (only the
/// caller knows its budget), so it is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a checkpoint may demand budget exhaustion"]
pub enum Action {
    /// No fault (or the fault was already executed in the checkpoint).
    Proceed,
    /// Run the guarded computation with a zeroed step budget.
    ExhaustBudget,
}

/// One injection rule: fire `fault` at `site`, for keys containing
/// `key_contains` (all keys when `None`), with the given probability.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// The checkpoint this rule applies to.
    pub site: Site,
    /// Substring filter over the checkpoint key; `None` matches every key.
    pub key_contains: Option<String>,
    /// Activation probability in `[0, 1]`, evaluated deterministically from
    /// the plan seed, the rule's position, the site and the key.
    pub probability: f64,
    /// The fault to execute when the rule activates.
    pub fault: Fault,
}

/// A deterministic, seeded set of injection rules. First matching rule wins.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add a rule that always fires at `site` for keys containing `key`.
    pub fn on_key(mut self, site: Site, key: &str, fault: Fault) -> FaultPlan {
        self.rules.push(FaultRule {
            site,
            key_contains: Some(key.to_string()),
            probability: 1.0,
            fault,
        });
        self
    }

    /// Add a rule that fires at `site` for every key with `probability`.
    pub fn with_probability(mut self, site: Site, probability: f64, fault: Fault) -> FaultPlan {
        self.rules.push(FaultRule {
            site,
            key_contains: None,
            probability,
            fault,
        });
        self
    }

    /// Add an arbitrary rule.
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// First rule matching `(site, key)` whose seeded coin flip comes up.
    fn decide(&self, site: Site, key: &str) -> Option<&Fault> {
        for (idx, rule) in self.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            if let Some(needle) = &rule.key_contains {
                if !key.contains(needle.as_str()) {
                    continue;
                }
            }
            if rule.probability >= 1.0 || hash01(self.seed, idx, site, key) < rule.probability {
                return Some(&rule.fault);
            }
        }
        None
    }
}

/// Deterministic hash of `(seed, rule, site, key)` into `[0, 1)`.
fn hash01(seed: u64, rule_idx: usize, site: Site, key: &str) -> f64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    rule_idx.hash(&mut h);
    site.name().hash(&mut h);
    key.hash(&mut h);
    (h.finish() >> 11) as f64 / (1u64 << 53) as f64
}

struct Registry {
    plan: RwLock<Option<FaultPlan>>,
    install_lock: Mutex<()>,
    injected: [AtomicU64; 6],
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        plan: RwLock::new(None),
        install_lock: Mutex::new(()),
        injected: [
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
        ],
    })
}

/// Keeps a [`FaultPlan`] installed; dropping it clears the plan and releases
/// the install lock.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let reg = registry();
        *reg.plan.write().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Install a plan globally. The returned guard holds a process-wide lock, so
/// concurrent installers (other `#[test]` threads) queue; counters are reset
/// on each install. Also installs (once per process) a panic hook that
/// swallows the default stderr backtrace for injected panics — they are
/// expected and caught — while delegating every other panic to the previous
/// hook.
pub fn install(plan: FaultPlan) -> FaultGuard {
    install_quiet_hook();
    let reg = registry();
    let lock = reg.install_lock.lock().unwrap_or_else(|e| e.into_inner());
    for counter in &reg.injected {
        counter.store(0, Ordering::Relaxed);
    }
    *reg.plan.write().unwrap_or_else(|e| e.into_inner()) = Some(plan);
    FaultGuard { _lock: lock }
}

fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(PANIC_MARKER))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains(PANIC_MARKER))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Number of faults injected at `site` since the current plan was installed.
pub fn injected(site: Site) -> u64 {
    registry().injected[site.index()].load(Ordering::Relaxed)
}

/// Production checkpoint: consult the installed plan (if any) for `(site,
/// key)`. Panics and delays execute here — after the plan lock is released,
/// so a panicking checkpoint never poisons the registry; budget exhaustion
/// is returned for the caller to honor.
pub fn checkpoint(site: Site, key: &str) -> Action {
    let reg = registry();
    let fault = {
        let plan = reg.plan.read().unwrap_or_else(|e| e.into_inner());
        match plan.as_ref().and_then(|p| p.decide(site, key)) {
            Some(f) => f.clone(),
            None => return Action::Proceed,
        }
    };
    reg.injected[site.index()].fetch_add(1, Ordering::Relaxed);
    match fault {
        Fault::Panic => panic!("{PANIC_MARKER} at {} for `{key}`", site.name()),
        Fault::Delay(d) => {
            std::thread::sleep(d);
            Action::Proceed
        }
        Fault::ExhaustBudget => Action::ExhaustBudget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_key_scoped() {
        let plan = FaultPlan::new(42)
            .on_key(Site::Grounding, "bad", Fault::Panic)
            .with_probability(Site::Coverage, 0.5, Fault::ExhaustBudget);
        assert_eq!(
            plan.decide(Site::Grounding, "a bad tuple"),
            Some(&Fault::Panic)
        );
        assert_eq!(plan.decide(Site::Grounding, "a good tuple"), None);
        assert_eq!(plan.decide(Site::Alignment, "bad"), None);
        // Probabilistic rules are pure functions of (seed, rule, site, key).
        for key in ["k1", "k2", "k3", "k4"] {
            assert_eq!(
                plan.decide(Site::Coverage, key).is_some(),
                plan.decide(Site::Coverage, key).is_some()
            );
        }
    }

    #[test]
    fn probability_roughly_splits_keys() {
        let plan = FaultPlan::new(7).with_probability(Site::Coverage, 0.5, Fault::Panic);
        let hits = (0..1000)
            .filter(|i| plan.decide(Site::Coverage, &format!("key-{i}")).is_some())
            .count();
        assert!((300..700).contains(&hits), "hits={hits}");
    }

    #[test]
    fn install_checkpoint_and_counters_round_trip() {
        let guard = install(FaultPlan::new(1).on_key(Site::Coverage, "x", Fault::ExhaustBudget));
        assert_eq!(checkpoint(Site::Coverage, "tuple x"), Action::ExhaustBudget);
        assert_eq!(checkpoint(Site::Coverage, "other"), Action::Proceed);
        assert_eq!(injected(Site::Coverage), 1);
        drop(guard);
        assert_eq!(checkpoint(Site::Coverage, "tuple x"), Action::Proceed);
    }
}
