//! Seeded property tests: the flat-vector substitution against the
//! hash-keyed [`Substitution`] as a reference model.
//!
//! A `FlatSubstitution` over `n` dense variables must behave exactly like a
//! `HashMap`-backed substitution restricted to the domain `Var(0..n)`:
//! random sequences of `bind` / `try_bind` / `remove` / `get` / `apply`
//! round-trip identically, and the full binding sets stay equal after every
//! operation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlearn_logic::{FlatSubstitution, Substitution, Term, Var};

const VARS: u32 = 12;
const OPS: usize = 600;

fn random_term(rng: &mut StdRng) -> Term {
    match rng.gen_range(0..3u32) {
        // Range terms are unrestricted: D-side variables with indices far
        // outside the numbering, including the pair-checker sentinel.
        0 => Term::var(rng.gen_range(0..200u32)),
        1 => Term::var(u32::MAX),
        _ => Term::constant(["alpha", "beta", "gamma"][rng.gen_range(0..3usize)]),
    }
}

/// The two representations agree on every observable after every operation.
fn assert_equivalent(flat: &FlatSubstitution, reference: &Substitution) {
    assert_eq!(flat.len(), reference.len());
    assert_eq!(flat.is_empty(), reference.is_empty());
    for i in 0..VARS {
        assert_eq!(flat.get(Var(i)), reference.get(Var(i)), "binding of v{i}");
        let probe = Term::var(i);
        assert_eq!(flat.apply(&probe), reference.apply(&probe));
    }
    // Constants always pass through.
    let c = Term::constant("untouched");
    assert_eq!(flat.apply(&c), c);
    assert_eq!(reference.apply(&c), c);
}

#[test]
fn flat_substitution_matches_hashmap_reference_under_random_ops() {
    for seed in [0x5eed1u64, 0x5eed2, 0x5eed3] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flat = FlatSubstitution::new(VARS as usize);
        let mut reference = Substitution::new();
        for step in 0..OPS {
            let v = Var(rng.gen_range(0..VARS));
            match rng.gen_range(0..4u32) {
                0 => {
                    let t = random_term(&mut rng);
                    flat.bind(v, t);
                    reference.bind(v, t);
                }
                1 => {
                    let t = random_term(&mut rng);
                    let a = flat.try_bind(v, t);
                    let b = reference.try_bind(v, t);
                    assert_eq!(a, b, "seed {seed:#x} step {step}: try_bind diverged");
                }
                2 => {
                    let a = flat.remove(v);
                    let b = reference.remove(v);
                    assert_eq!(a, b, "seed {seed:#x} step {step}: remove diverged");
                }
                _ => {
                    assert_eq!(flat.get(v), reference.get(v));
                }
            }
            assert_equivalent(&flat, &reference);
        }
    }
}

#[test]
fn apply_iter_round_trips_through_both_representations() {
    let mut rng = StdRng::seed_from_u64(0xab5e);
    for _ in 0..50 {
        let mut flat = FlatSubstitution::new(VARS as usize);
        let mut reference = Substitution::new();
        for _ in 0..rng.gen_range(0..VARS as usize) {
            let v = Var(rng.gen_range(0..VARS));
            let t = random_term(&mut rng);
            flat.bind(v, t);
            reference.bind(v, t);
        }
        let terms: Vec<Term> = (0..VARS)
            .map(|i| {
                if rng.gen_bool(0.5) {
                    Term::var(i)
                } else {
                    random_term(&mut rng)
                }
            })
            .collect();
        let via_flat: Vec<Term> = flat.apply_iter(&terms).collect();
        let via_reference: Vec<Term> = reference.apply_iter(&terms).collect();
        assert_eq!(via_flat, via_reference);
        assert_eq!(via_reference, reference.apply_all(&terms));
    }
}

#[test]
fn trail_style_unwind_restores_previous_state() {
    // The subsumption search relies on remove() exactly undoing bind() in
    // reverse trail order; replay random bind/unwind rounds against the
    // reference.
    let mut rng = StdRng::seed_from_u64(0x7a11);
    let mut flat = FlatSubstitution::new(VARS as usize);
    let mut reference = Substitution::new();
    for _ in 0..100 {
        let mut trail: Vec<Var> = Vec::new();
        for _ in 0..rng.gen_range(1..6usize) {
            let v = Var(rng.gen_range(0..VARS));
            let t = random_term(&mut rng);
            if flat.get(v).is_none() {
                flat.bind(v, t);
                reference.bind(v, t);
                trail.push(v);
            }
        }
        assert_equivalent(&flat, &reference);
        if rng.gen_bool(0.7) {
            // Backtrack: unwind this round's bindings from both.
            for v in trail.drain(..).rev() {
                assert_eq!(flat.remove(v), reference.remove(v));
            }
            assert_equivalent(&flat, &reference);
        }
    }
}

#[test]
fn out_of_numbering_gets_are_unbound() {
    let flat = FlatSubstitution::new(3);
    assert_eq!(flat.get(Var(3)), None);
    assert_eq!(flat.get(Var(u32::MAX)), None);
    let probe = Term::var(999);
    assert_eq!(flat.apply(&probe), probe);
}
