//! Differential tests of the θ-subsumption engine against two independent
//! references, under the soundness/decision contract that replaced the old
//! decision-parity pin:
//!
//! * **Soundness** — any witness substitution the production matcher
//!   returns must *verify*: applying it to `C` really lands inside `D`
//!   (head, relation literals, constraints and repair replacements), as
//!   checked by `dlearn_test_support::OracleGround::verify_witness`.
//! * **Decision agreement** — the boolean decision must agree with both the
//!   string-keyed reference matcher (`dlearn_test_support::string_reference`)
//!   and the brute-force enumeration oracle
//!   (`dlearn_test_support::OracleGround::enumerate`), on ≥ 500 seeded
//!   random cases.
//! * **Ordering invariance** — adaptive and static literal ordering, and
//!   the renumber-per-call vs prepared-numbering entry points, must all
//!   decide identically (which witness is found first may differ; each must
//!   verify).
//!
//! The generated candidates are *oracle-safe* (see
//! `dlearn_test_support::gen`): every constraint/repair variable occurs in
//! the head or a relation literal, the shape bottom-clause construction
//! emits. This is what makes the greedy constraint phase complete, so the
//! three matchers are deciding the same ∃-question.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dlearn_logic::{
    subsumes, subsumes_numbered, subsumes_numbered_decision, Clause, GroundClause, Literal,
    NumberedClause, SubsumptionConfig, Term, Var,
};
use dlearn_test_support::{
    backtracking_heavy_pair, derived_candidate, random_candidate, random_ground, string_reference,
    GenConfig, OracleGround, StringGround,
};

fn unbounded() -> SubsumptionConfig {
    SubsumptionConfig {
        // The references have no budget; give the production matcher one it
        // cannot hit at these clause sizes.
        max_steps: usize::MAX,
        ..SubsumptionConfig::default()
    }
}

fn static_order() -> SubsumptionConfig {
    SubsumptionConfig {
        adaptive_ordering: false,
        ..unbounded()
    }
}

/// The main contract: 600 seeded random cases (≥ 500 required), half
/// derived from `D` (positive-leaning), half independent (negative-leaning).
#[test]
fn decisions_agree_with_both_references_and_witnesses_verify() {
    let cfg = GenConfig::default();
    let mut rng = StdRng::seed_from_u64(0xd1ff);
    let mut positives = 0usize;
    for case in 0..600 {
        let d = random_ground(&mut rng, &cfg);
        let c = if case % 2 == 0 {
            derived_candidate(&mut rng, &d, &cfg)
        } else {
            random_candidate(&mut rng, &cfg)
        };
        let ground = GroundClause::new(&d);
        let oracle = OracleGround::new(&d);
        let string_ground = StringGround::new(&d);

        let witness = subsumes(&c, &ground, &unbounded());
        let decision = witness.is_some();

        // Soundness: the returned θ embeds C into D.
        if let Some(theta) = &witness {
            assert!(
                oracle.verify_witness(&c, theta),
                "unsound witness on case {case}:\n  C = {c}\n  D = {d}\n  θ does not embed"
            );
        }

        // Decision agreement with the string-keyed reference.
        assert_eq!(
            decision,
            string_reference::subsumes(&c, &string_ground),
            "string-reference divergence on case {case}:\n  C = {c}\n  D = {d}"
        );

        // Decision agreement with the enumeration oracle, and the oracle's
        // own assignment must verify (self-consistency).
        let enumerated = oracle.enumerate(&c);
        assert_eq!(
            decision,
            enumerated.is_some(),
            "oracle divergence on case {case}:\n  C = {c}\n  D = {d}"
        );
        if let Some(sigma) = &enumerated {
            assert!(oracle.verify_witness(&c, sigma));
        }

        // Ordering invariance: static ordering and the prepared-numbering
        // entry points decide identically, and their witnesses verify.
        let numbered = NumberedClause::new(&c);
        assert_eq!(
            subsumes_numbered_decision(&numbered, &ground, &unbounded()).is_yes(),
            decision,
            "numbered decision diverged on case {case}:\n  C = {c}\n  D = {d}"
        );
        if let Some(theta) = subsumes_numbered(&numbered, &ground, &unbounded()) {
            assert!(
                oracle.verify_witness(&c, &theta),
                "unsound numbered witness on case {case}:\n  C = {c}\n  D = {d}"
            );
        }
        let static_witness = subsumes(&c, &ground, &static_order());
        assert_eq!(
            static_witness.is_some(),
            decision,
            "static-ordering divergence on case {case}:\n  C = {c}\n  D = {d}"
        );
        if let Some(theta) = &static_witness {
            assert!(oracle.verify_witness(&c, theta));
        }

        positives += decision as usize;
    }
    // The generator must exercise both outcomes or the suite is vacuous.
    assert!(positives > 75, "too few positive cases: {positives}");
    assert!(
        positives < 525,
        "too few negative cases: {}",
        600 - positives
    );
}

/// The adversarial bench workload is a *hard negative*: every matcher must
/// reject it, however its literals are ordered.
#[test]
fn backtracking_heavy_pair_is_rejected_by_everyone() {
    let (c, d) = backtracking_heavy_pair();
    let ground = GroundClause::new(&d);
    assert!(subsumes(&c, &ground, &unbounded()).is_none());
    assert!(subsumes(&c, &ground, &static_order()).is_none());
    assert!(!string_reference::subsumes(&c, &StringGround::new(&d)));
    assert!(OracleGround::new(&d).enumerate(&c).is_none());
}

/// Budget exhaustion must report "does not subsume" (never panic), at every
/// budget size, and a positive answer under a small budget must be sound —
/// it agrees with the unbounded decision and its witness verifies.
#[test]
fn budget_exhaustion_is_a_clean_no() {
    let cfg = GenConfig::default();
    let mut rng = StdRng::seed_from_u64(0xb4d9);
    for _ in 0..50 {
        let d = random_ground(&mut rng, &cfg);
        let c = derived_candidate(&mut rng, &d, &cfg);
        let ground = GroundClause::new(&d);
        let oracle = OracleGround::new(&d);
        let full = subsumes(&c, &ground, &unbounded()).is_some();
        for budget in [0usize, 1, 2, 5, 20] {
            let tiny = SubsumptionConfig {
                max_steps: budget,
                ..SubsumptionConfig::default()
            };
            if let Some(theta) = subsumes(&c, &ground, &tiny) {
                // A budgeted yes must be a real yes; a budgeted no is allowed.
                assert!(full, "budget {budget} invented a subsumption");
                assert!(oracle.verify_witness(&c, &theta));
            }
        }
    }
}

/// `Var(u32::MAX)` is used as a sentinel by the pair checker; make sure the
/// trail/unwind machinery copes with adversarial variable indices near it.
#[test]
fn extreme_variable_indices_do_not_break_matching() {
    let mut c = Clause::new(Literal::relation("t", vec![Term::var(u32::MAX - 1)]));
    c.push_unique(Literal::relation("r0", vec![Term::var(u32::MAX - 1)]));
    let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
    d.push_unique(Literal::relation("r0", vec![Term::var(0)]));
    let ground = GroundClause::new(&d);
    assert!(subsumes(&c, &ground, &SubsumptionConfig::default()).is_some());
    let _ = Var(u32::MAX); // the sentinel itself stays constructible
}
