//! Differential test: the interned, position-indexed subsumption engine
//! against a reference re-implementation of the **pre-refactor string-based
//! matcher** (see `support/reference_impl.rs`).
//!
//! The reference preserves the old path's semantics — same literal ordering
//! heuristic (candidate count per relation *name*), same first-found-mapping
//! constraint checking, same repair-group matching — so any decision
//! difference on randomized clauses (including clauses with repair literals)
//! is a bug in the new index or trail logic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlearn_logic::{
    subsumes, subsumes_numbered, subsumes_numbered_decision, Clause, CondAtom, GroundClause,
    Literal, NumberedClause, RepairGroup, RepairOrigin, Substitution, SubsumptionConfig, Term, Var,
};

#[path = "support/reference_impl.rs"]
mod reference;

// ---------------------------------------------------------------------------
// Randomized clause generation
// ---------------------------------------------------------------------------

const RELATIONS: [&str; 4] = ["r0", "r1", "r2", "r3"];
const CONSTANTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn random_term(rng: &mut StdRng, max_var: u32) -> Term {
    if rng.gen_bool(0.3) {
        Term::constant(CONSTANTS[rng.gen_range(0..CONSTANTS.len())])
    } else {
        Term::var(rng.gen_range(0..max_var))
    }
}

/// A random "ground bottom" style clause: relation literals (mixing vars and
/// constants), similarity literals, and MD repair groups over them.
fn random_d(rng: &mut StdRng) -> Clause {
    let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
    let n_lits = rng.gen_range(2..8usize);
    for _ in 0..n_lits {
        let name = RELATIONS[rng.gen_range(0..RELATIONS.len())];
        let arity = rng.gen_range(1..4usize);
        let args: Vec<Term> = (0..arity).map(|_| random_term(rng, 8)).collect();
        d.push_unique(Literal::relation(name, args));
    }
    for _ in 0..rng.gen_range(0..3usize) {
        let a = Term::var(rng.gen_range(0..8u32));
        let b = Term::var(rng.gen_range(0..8u32));
        if a != b {
            d.push_unique(Literal::Similar(a, b));
        }
    }
    // Repair groups over existing similarity literals.
    let sims: Vec<(Term, Term)> = d
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Similar(a, b) => Some((*a, *b)),
            _ => None,
        })
        .collect();
    for (gi, (a, b)) in sims.iter().enumerate().take(2) {
        let fresh = Term::var(20 + gi as u32);
        let (Some(va), Some(vb)) = (a.as_var(), b.as_var()) else {
            continue;
        };
        d.push_repair(RepairGroup::new(
            RepairOrigin::Md(gi),
            vec![CondAtom::Sim(*a, *b)],
            vec![(va, fresh), (vb, fresh)],
            vec![Literal::Similar(*a, *b)],
        ));
    }
    d
}

/// Derive a candidate `C` from `D`: keep a random subset of literals and
/// repair groups, then rename variables. By construction these frequently
/// (but not always — repair groups may lose their consumed literals)
/// subsume `D`, giving the differential both positive and negative cases.
fn derived_c(rng: &mut StdRng, d: &Clause) -> Clause {
    let mut c = Clause::new(d.head.clone());
    for l in &d.body {
        if rng.gen_bool(0.6) {
            c.push_unique(l.clone());
        }
    }
    for g in &d.repairs {
        if rng.gen_bool(0.4) {
            c.push_repair(g.clone());
        }
    }
    let renaming: Substitution = c
        .variables()
        .into_iter()
        .map(|v| (v, Term::var(v.0 + 40)))
        .collect();
    c.apply(&renaming)
}

/// A fully random candidate (mostly negative cases).
fn random_c(rng: &mut StdRng) -> Clause {
    let c = random_d(rng);
    let renaming: Substitution = c
        .variables()
        .into_iter()
        .map(|v| (v, Term::var(v.0 + 60)))
        .collect();
    c.apply(&renaming)
}

// ---------------------------------------------------------------------------
// The differential properties
// ---------------------------------------------------------------------------

/// Interned decisions match the string-based reference on randomized clause
/// pairs, including clauses with repair literals.
#[test]
fn interned_path_matches_string_reference_on_random_clauses() {
    let mut rng = StdRng::seed_from_u64(0xd1ff);
    // Effectively unbounded: the reference has no budget, so give the new
    // path one it cannot hit at this clause size.
    let config = SubsumptionConfig {
        max_steps: usize::MAX,
        ..SubsumptionConfig::default()
    };
    let mut positives = 0usize;
    for case in 0..400 {
        let d = random_d(&mut rng);
        let c = if case % 2 == 0 {
            derived_c(&mut rng, &d)
        } else {
            random_c(&mut rng)
        };
        let ground = GroundClause::new(&d);
        let string_ground = reference::StringGround::new(&d);
        let new_decision = subsumes(&c, &ground, &config).is_some();
        let old_decision = reference::subsumes(&c, &string_ground);
        assert_eq!(
            new_decision, old_decision,
            "divergence on case {case}:\n  C = {c}\n  D = {d}"
        );
        // The prepared-numbering entry points (what the covering loop uses)
        // must agree with the renumber-per-call wrapper.
        let numbered = NumberedClause::new(&c);
        assert_eq!(
            subsumes_numbered_decision(&numbered, &ground, &config),
            new_decision,
            "numbered decision diverged on case {case}:\n  C = {c}\n  D = {d}"
        );
        assert_eq!(
            subsumes_numbered(&numbered, &ground, &config),
            subsumes(&c, &ground, &config),
            "numbered witness diverged on case {case}:\n  C = {c}\n  D = {d}"
        );
        positives += new_decision as usize;
    }
    // The generator must exercise both outcomes or the test is vacuous.
    assert!(positives > 50, "too few positive cases: {positives}");
    assert!(
        positives < 350,
        "too few negative cases: {}",
        400 - positives
    );
}

/// The witness substitution returned by the interned path is a real witness:
/// applying it to C's relation literals lands inside D's body.
#[test]
fn witness_substitutions_are_sound() {
    let mut rng = StdRng::seed_from_u64(0x50d4);
    let config = SubsumptionConfig {
        max_steps: usize::MAX,
        ..SubsumptionConfig::default()
    };
    for _ in 0..200 {
        let d = random_d(&mut rng);
        let c = derived_c(&mut rng, &d);
        let ground = GroundClause::new(&d);
        if let Some(theta) = subsumes(&c, &ground, &config) {
            for lit in c.body.iter().filter(|l| l.is_relation()) {
                let mapped = lit.apply(&theta);
                assert!(
                    d.body.contains(&mapped),
                    "mapped literal {mapped} not in D = {d}"
                );
            }
        }
    }
}

/// Budget exhaustion must report "does not subsume" (never panic), at every
/// budget size, and a positive answer under a small budget must agree with
/// the unbounded decision.
#[test]
fn budget_exhaustion_is_a_clean_no() {
    let mut rng = StdRng::seed_from_u64(0xb4d9);
    let unbounded = SubsumptionConfig {
        max_steps: usize::MAX,
        ..SubsumptionConfig::default()
    };
    for _ in 0..50 {
        let d = random_d(&mut rng);
        let c = derived_c(&mut rng, &d);
        let ground = GroundClause::new(&d);
        let full = subsumes(&c, &ground, &unbounded).is_some();
        for budget in [0usize, 1, 2, 5, 20] {
            let tiny = SubsumptionConfig {
                max_steps: budget,
                ..SubsumptionConfig::default()
            };
            let decision = subsumes(&c, &ground, &tiny).is_some();
            // A budgeted yes must be a real yes; a budgeted no is allowed.
            assert!(!decision || full, "budget {budget} invented a subsumption");
        }
    }
}

/// `Var(u32::MAX)` is used as a sentinel by the pair checker; make sure the
/// trail/unwind machinery copes with adversarial variable indices near it.
#[test]
fn extreme_variable_indices_do_not_break_matching() {
    let mut c = Clause::new(Literal::relation("t", vec![Term::var(u32::MAX - 1)]));
    c.push_unique(Literal::relation("r0", vec![Term::var(u32::MAX - 1)]));
    let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
    d.push_unique(Literal::relation("r0", vec![Term::var(0)]));
    let ground = GroundClause::new(&d);
    assert!(subsumes(&c, &ground, &SubsumptionConfig::default()).is_some());
    let _ = Var(u32::MAX); // the sentinel itself stays constructible
}
