//! Variable substitutions (θ in θ-subsumption).

use std::collections::HashMap;

use crate::term::{Term, Var};

/// A substitution maps variables to terms.
///
/// Applying a substitution to a term replaces mapped variables; constants and
/// unmapped variables are left untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: HashMap<Var, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Substitution::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The binding of a variable, if any.
    pub fn get(&self, var: Var) -> Option<&Term> {
        self.map.get(&var)
    }

    /// Bind `var` to `term`, overwriting any previous binding.
    pub fn bind(&mut self, var: Var, term: Term) {
        self.map.insert(var, term);
    }

    /// Remove the binding of `var`, returning it. Used by the subsumption
    /// search to unwind its binding trail instead of cloning the whole
    /// substitution at every backtracking point.
    pub fn remove(&mut self, var: Var) -> Option<Term> {
        self.map.remove(&var)
    }

    /// Try to bind `var` to `term`; fails (returns `false`) when the variable
    /// is already bound to a different term.
    pub fn try_bind(&mut self, var: Var, term: Term) -> bool {
        match self.map.get(&var) {
            Some(existing) => *existing == term,
            None => {
                self.map.insert(var, term);
                true
            }
        }
    }

    /// Apply the substitution to a term.
    pub fn apply(&self, term: &Term) -> Term {
        match term {
            Term::Var(v) => self.map.get(v).cloned().unwrap_or(*term),
            Term::Const(_) => *term,
        }
    }

    /// Apply the substitution to a slice of terms.
    pub fn apply_all(&self, terms: &[Term]) -> Vec<Term> {
        terms.iter().map(|t| self.apply(t)).collect()
    }

    /// Iterate over the bindings in an unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Term)> {
        self.map.iter()
    }

    /// Variables bound by this substitution.
    pub fn domain(&self) -> impl Iterator<Item = Var> + '_ {
        self.map.keys().copied()
    }

    /// Terms in the range of this substitution.
    pub fn range(&self) -> impl Iterator<Item = &Term> {
        self.map.values()
    }
}

impl FromIterator<(Var, Term)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        Substitution {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_replaces_bound_variables_only() {
        let mut s = Substitution::new();
        s.bind(Var(0), Term::constant("a"));
        assert_eq!(s.apply(&Term::var(0)), Term::constant("a"));
        assert_eq!(s.apply(&Term::var(1)), Term::var(1));
        assert_eq!(s.apply(&Term::constant(3i64)), Term::constant(3i64));
    }

    #[test]
    fn try_bind_is_consistent() {
        let mut s = Substitution::new();
        assert!(s.try_bind(Var(0), Term::constant("a")));
        assert!(s.try_bind(Var(0), Term::constant("a")));
        assert!(!s.try_bind(Var(0), Term::constant("b")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn from_iterator_collects_bindings() {
        let s: Substitution = vec![(Var(0), Term::var(5)), (Var(1), Term::constant(7i64))]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.apply_all(&[Term::var(0), Term::var(1)]),
            vec![Term::var(5), Term::constant(7i64)]
        );
    }
}
