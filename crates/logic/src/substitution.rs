//! Variable substitutions (θ in θ-subsumption).

use std::collections::HashMap;

use crate::term::{Term, Var};

/// A substitution maps variables to terms.
///
/// Applying a substitution to a term replaces mapped variables; constants and
/// unmapped variables are left untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: HashMap<Var, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Substitution::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The binding of a variable, if any.
    pub fn get(&self, var: Var) -> Option<&Term> {
        self.map.get(&var)
    }

    /// Bind `var` to `term`, overwriting any previous binding.
    pub fn bind(&mut self, var: Var, term: Term) {
        self.map.insert(var, term);
    }

    /// Remove the binding of `var`, returning it. Used by the subsumption
    /// search to unwind its binding trail instead of cloning the whole
    /// substitution at every backtracking point.
    pub fn remove(&mut self, var: Var) -> Option<Term> {
        self.map.remove(&var)
    }

    /// Try to bind `var` to `term`; fails (returns `false`) when the variable
    /// is already bound to a different term.
    pub fn try_bind(&mut self, var: Var, term: Term) -> bool {
        match self.map.get(&var) {
            Some(existing) => *existing == term,
            None => {
                self.map.insert(var, term);
                true
            }
        }
    }

    /// Apply the substitution to a term.
    pub fn apply(&self, term: &Term) -> Term {
        match term {
            Term::Var(v) => self.map.get(v).cloned().unwrap_or(*term),
            Term::Const(_) => *term,
        }
    }

    /// Apply the substitution to a slice of terms.
    pub fn apply_all(&self, terms: &[Term]) -> Vec<Term> {
        self.apply_iter(terms).collect()
    }

    /// Apply the substitution to a slice of terms lazily. Use this instead of
    /// [`Substitution::apply_all`] wherever the result is consumed by
    /// iteration (or collected into an existing buffer): it performs no
    /// intermediate allocation.
    pub fn apply_iter<'a>(&'a self, terms: &'a [Term]) -> impl Iterator<Item = Term> + 'a {
        terms.iter().map(|t| self.apply(t))
    }

    /// Iterate over the bindings in an unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Term)> {
        self.map.iter()
    }

    /// Variables bound by this substitution.
    pub fn domain(&self) -> impl Iterator<Item = Var> + '_ {
        self.map.keys().copied()
    }

    /// Terms in the range of this substitution.
    pub fn range(&self) -> impl Iterator<Item = &Term> {
        self.map.values()
    }
}

impl FromIterator<(Var, Term)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        Substitution {
            map: iter.into_iter().collect(),
        }
    }
}

/// A substitution over a clause-local **dense** variable numbering: variable
/// `Var(i)` is bound by writing slot `i` of a flat `Vec<Option<Term>>`.
///
/// This is the θ representation of the subsumption matcher's inner loop:
/// `get`/`bind`/`remove` are direct array accesses (no hashing), and the
/// trail-based backtracking of the search unwinds bindings with `O(1)` slot
/// writes. It is only valid for clauses whose variables have been renumbered
/// to `0..n` (see [`crate::numbering::NumberedClause`]); the hash-keyed
/// [`Substitution`] remains the general-purpose representation for arbitrary
/// variable indices (renamings, repair application, witnesses).
///
/// Terms in the *range* of the substitution are unrestricted — they may be
/// constants or variables of the right-hand clause with arbitrary indices
/// (including the `Var(u32::MAX)` sentinel used by the pair checker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatSubstitution {
    slots: Vec<Option<Term>>,
    bound: usize,
}

impl FlatSubstitution {
    /// The empty substitution over a clause with `var_count` variables.
    pub fn new(var_count: usize) -> Self {
        FlatSubstitution {
            slots: vec![None; var_count],
            bound: 0,
        }
    }

    /// Number of slots (the clause's variable count), bound or not.
    pub fn var_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bound
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.bound == 0
    }

    /// The binding of a variable, if any. Variables outside the numbering
    /// are unbound by definition.
    pub fn get(&self, var: Var) -> Option<&Term> {
        self.slots
            .get(var.0 as usize)
            .and_then(|slot| slot.as_ref())
    }

    /// Bind `var` to `term`, overwriting any previous binding.
    ///
    /// # Panics
    /// Panics when `var` is outside the clause-local numbering — binding a
    /// foreign variable is always a bug in the caller.
    pub fn bind(&mut self, var: Var, term: Term) {
        let slot = &mut self.slots[var.0 as usize];
        if slot.is_none() {
            self.bound += 1;
        }
        *slot = Some(term);
    }

    /// Remove the binding of `var`, returning it. This is the `O(1)` trail
    /// unwind of the subsumption search.
    pub fn remove(&mut self, var: Var) -> Option<Term> {
        let taken = self
            .slots
            .get_mut(var.0 as usize)
            .and_then(|slot| slot.take());
        if taken.is_some() {
            self.bound -= 1;
        }
        taken
    }

    /// Try to bind `var` to `term`; fails (returns `false`) when the variable
    /// is already bound to a different term.
    pub fn try_bind(&mut self, var: Var, term: Term) -> bool {
        match &mut self.slots[var.0 as usize] {
            Some(existing) => *existing == term,
            slot @ None => {
                *slot = Some(term);
                self.bound += 1;
                true
            }
        }
    }

    /// Apply the substitution to a term.
    pub fn apply(&self, term: &Term) -> Term {
        match term {
            Term::Var(v) => self.get(*v).copied().unwrap_or(*term),
            Term::Const(_) => *term,
        }
    }

    /// Apply the substitution to a slice of terms lazily (no allocation).
    pub fn apply_iter<'a>(&'a self, terms: &'a [Term]) -> impl Iterator<Item = Term> + 'a {
        terms.iter().map(|t| self.apply(t))
    }

    /// Iterate over the bindings in slot (variable-index) order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Term)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|t| (Var(i as u32), t)))
    }

    /// Terms in the range of this substitution.
    pub fn range(&self) -> impl Iterator<Item = &Term> {
        self.slots.iter().filter_map(|slot| slot.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_replaces_bound_variables_only() {
        let mut s = Substitution::new();
        s.bind(Var(0), Term::constant("a"));
        assert_eq!(s.apply(&Term::var(0)), Term::constant("a"));
        assert_eq!(s.apply(&Term::var(1)), Term::var(1));
        assert_eq!(s.apply(&Term::constant(3i64)), Term::constant(3i64));
    }

    #[test]
    fn try_bind_is_consistent() {
        let mut s = Substitution::new();
        assert!(s.try_bind(Var(0), Term::constant("a")));
        assert!(s.try_bind(Var(0), Term::constant("a")));
        assert!(!s.try_bind(Var(0), Term::constant("b")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn from_iterator_collects_bindings() {
        let s: Substitution = vec![(Var(0), Term::var(5)), (Var(1), Term::constant(7i64))]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.apply_all(&[Term::var(0), Term::var(1)]),
            vec![Term::var(5), Term::constant(7i64)]
        );
    }
}
