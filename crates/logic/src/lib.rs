//! # dlearn-logic — first-order logic machinery for relational learning
//!
//! This crate provides the clause language of DLearn: terms, literals
//! (relation, similarity, equality, inequality), Horn clauses and
//! definitions, *repair groups* (the clause-level form of the paper's repair
//! literals), the expansion of a clause into its repaired clauses, and the
//! θ-subsumption engine extended to repair literals (Definition 4.4) that
//! underpins both generalization and coverage testing.
//!
//! * [`Term`], [`Var`] — terms.
//! * [`Literal`] — body/head literals.
//! * [`RepairGroup`], [`CondAtom`], [`RepairOrigin`] — repair literals.
//! * [`Clause`], [`Definition`] — Horn clauses / definitions.
//! * [`repaired_clauses`] — expansion into repaired clauses (Section 3.2).
//! * [`subsumes`], [`GroundClause`] — θ-subsumption (Section 4.2/4.3).

#![warn(missing_docs)]

pub mod clause;
pub mod expand;
pub mod literal;
pub mod repair;
pub mod substitution;
pub mod subsumption;
pub mod term;

pub use clause::{Clause, Definition};
pub use expand::{repaired_clauses, ExpandLimits};
pub use literal::Literal;
pub use repair::{CondAtom, RepairGroup, RepairOrigin};
pub use substitution::Substitution;
pub use subsumption::{extend_bindings, head_bindings, subsumes, GroundClause, SubsumptionConfig};
pub use term::{Term, Var};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::clause::Clause;
    use crate::expand::{repaired_clauses, ExpandLimits};
    use crate::literal::Literal;
    use crate::repair::{CondAtom, RepairGroup, RepairOrigin};
    use crate::substitution::Substitution;
    use crate::subsumption::{subsumes, GroundClause, SubsumptionConfig};
    use crate::term::{Term, Var};

    /// Generate a small random clause over a fixed vocabulary of relations.
    fn arb_clause() -> impl Strategy<Value = Clause> {
        let lit = (0usize..4, proptest::collection::vec(0u32..6, 1..3)).prop_map(|(r, vars)| {
            let names = ["r0", "r1", "r2", "r3"];
            Literal::relation(names[r], vars.into_iter().map(Term::var).collect())
        });
        proptest::collection::vec(lit, 0..6).prop_map(|body| {
            let mut c = Clause::new(Literal::relation("t", vec![Term::var(0)]));
            for l in body {
                c.push_unique(l);
            }
            c
        })
    }

    proptest! {
        /// Reflexivity: every clause θ-subsumes itself (identity substitution).
        #[test]
        fn subsumption_is_reflexive(c in arb_clause()) {
            let d = GroundClause::new(&c);
            prop_assert!(subsumes(&c, &d, &SubsumptionConfig::default()).is_some());
        }

        /// Dropping body literals generalizes: the reduced clause still
        /// subsumes the original.
        #[test]
        fn dropping_literals_preserves_subsumption(c in arb_clause(), keep in proptest::collection::vec(any::<bool>(), 6)) {
            let mut reduced = c.clone();
            let mut idx = 0;
            reduced.body.retain(|_| {
                let k = keep.get(idx).copied().unwrap_or(true);
                idx += 1;
                k
            });
            let d = GroundClause::new(&c);
            prop_assert!(subsumes(&reduced, &d, &SubsumptionConfig::default()).is_some());
        }

        /// Variable renaming does not affect subsumption of the original.
        #[test]
        fn renamed_clause_subsumes_original(c in arb_clause(), offset in 10u32..20) {
            let renaming: Substitution = c
                .variables()
                .into_iter()
                .map(|v| (v, Term::var(v.0 + offset)))
                .collect();
            let renamed = c.apply(&renaming);
            let d = GroundClause::new(&c);
            prop_assert!(subsumes(&renamed, &d, &SubsumptionConfig::default()).is_some());
        }

        /// Repaired-clause expansion always yields at least one repaired
        /// clause, every result is free of repair groups, and the count obeys
        /// the configured cap.
        #[test]
        fn expansion_yields_repaired_clauses(c in arb_clause(), n_repairs in 0usize..3, cap in 1usize..8) {
            let mut clause = c;
            let base = clause.max_var_index().unwrap_or(0) + 1;
            for i in 0..n_repairs {
                let a = Term::var(i as u32 % 3);
                let b = Term::var((i as u32 + 1) % 3);
                clause.push_unique(Literal::Similar(a.clone(), b.clone()));
                clause.push_repair(RepairGroup::new(
                    RepairOrigin::Md(i),
                    vec![CondAtom::Sim(a.clone(), b.clone())],
                    vec![
                        (Var(i as u32 % 3), Term::var(base + i as u32)),
                        (Var((i as u32 + 1) % 3), Term::var(base + i as u32)),
                    ],
                    vec![Literal::Similar(a, b)],
                ));
            }
            let repaired = repaired_clauses(&clause, ExpandLimits { max_repairs: cap, max_steps: 512 });
            prop_assert!(!repaired.is_empty());
            prop_assert!(repaired.len() <= cap);
            for r in &repaired {
                prop_assert!(r.is_repaired());
            }
        }
    }
}
