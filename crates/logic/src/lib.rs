//! # dlearn-logic — first-order logic machinery for relational learning
//!
//! This crate provides the clause language of DLearn: terms, literals
//! (relation, similarity, equality, inequality), Horn clauses and
//! definitions, *repair groups* (the clause-level form of the paper's repair
//! literals), the expansion of a clause into its repaired clauses, and the
//! θ-subsumption engine extended to repair literals (Definition 4.4) that
//! underpins both generalization and coverage testing.
//!
//! * [`Term`], [`Var`] — terms.
//! * [`Literal`] — body/head literals.
//! * [`RepairGroup`], [`CondAtom`], [`RepairOrigin`] — repair literals.
//! * [`Clause`], [`Definition`] — Horn clauses / definitions.
//! * [`repaired_clauses`] — expansion into repaired clauses (Section 3.2).
//! * [`subsumes`], [`GroundClause`] — θ-subsumption (Section 4.2/4.3).

#![warn(missing_docs)]

pub mod clause;
pub mod expand;
pub mod literal;
pub mod numbering;
pub mod repair;
pub mod substitution;
pub mod subsumption;
pub mod term;

pub use clause::{Clause, Definition};
pub use expand::{repaired_clauses, ExpandLimits};
pub use literal::Literal;
pub use numbering::{NumberedClause, VarNumbering};
pub use repair::{CondAtom, RepairGroup, RepairOrigin};
pub use substitution::{FlatSubstitution, Substitution};
pub use subsumption::{
    extend_bindings, extend_bindings_flat, head_bindings, head_bindings_numbered, subsumes,
    subsumes_numbered, subsumes_numbered_decision, subsumes_numbered_decision_controlled,
    CancelToken, Decision, GroundClause, SubsumptionConfig, CANCEL_CHECK_INTERVAL,
};
pub use term::{Term, Var};

#[cfg(test)]
mod proptests {
    //! Property-style tests over seeded random clauses. These used to be
    //! `proptest` strategies; the vendored deterministic RNG (see
    //! `vendor/README.md`) drives the same properties over a fixed number of
    //! random cases per seed instead.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use crate::clause::Clause;
    use crate::expand::{repaired_clauses, ExpandLimits};
    use crate::literal::Literal;
    use crate::repair::{CondAtom, RepairGroup, RepairOrigin};
    use crate::substitution::Substitution;
    use crate::subsumption::{subsumes, GroundClause, SubsumptionConfig};
    use crate::term::{Term, Var};

    const CASES: usize = 200;

    /// Generate a small random clause over a fixed vocabulary of relations.
    pub(crate) fn random_clause(rng: &mut StdRng) -> Clause {
        let names = ["r0", "r1", "r2", "r3"];
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        for _ in 0..rng.gen_range(0..6usize) {
            let name = names[rng.gen_range(0..names.len())];
            let arity = rng.gen_range(1..3usize);
            let args: Vec<Term> = (0..arity)
                .map(|_| Term::var(rng.gen_range(0..6u32)))
                .collect();
            c.push_unique(Literal::relation(name, args));
        }
        c
    }

    /// Reflexivity: every clause θ-subsumes itself (identity substitution).
    #[test]
    fn subsumption_is_reflexive() {
        let mut rng = StdRng::seed_from_u64(0xa11ce);
        for _ in 0..CASES {
            let c = random_clause(&mut rng);
            let d = GroundClause::new(&c);
            assert!(
                subsumes(&c, &d, &SubsumptionConfig::default()).is_some(),
                "clause failed reflexivity: {c}"
            );
        }
    }

    /// Dropping body literals generalizes: the reduced clause still subsumes
    /// the original.
    #[test]
    fn dropping_literals_preserves_subsumption() {
        let mut rng = StdRng::seed_from_u64(0xd20f);
        for _ in 0..CASES {
            let c = random_clause(&mut rng);
            let mut reduced = c.clone();
            reduced.body.retain(|_| rng.gen_bool(0.5));
            let d = GroundClause::new(&c);
            assert!(
                subsumes(&reduced, &d, &SubsumptionConfig::default()).is_some(),
                "reduced clause {reduced} must subsume {c}"
            );
        }
    }

    /// Variable renaming does not affect subsumption of the original.
    #[test]
    fn renamed_clause_subsumes_original() {
        let mut rng = StdRng::seed_from_u64(0x7e4a);
        for _ in 0..CASES {
            let c = random_clause(&mut rng);
            let offset = rng.gen_range(10..20u32);
            let renaming: Substitution = c
                .variables()
                .into_iter()
                .map(|v| (v, Term::var(v.0 + offset)))
                .collect();
            let renamed = c.apply(&renaming);
            let d = GroundClause::new(&c);
            assert!(
                subsumes(&renamed, &d, &SubsumptionConfig::default()).is_some(),
                "renamed clause {renamed} must subsume {c}"
            );
        }
    }

    /// Repaired-clause expansion always yields at least one repaired clause,
    /// every result is free of repair groups, and the count obeys the
    /// configured cap.
    #[test]
    fn expansion_yields_repaired_clauses() {
        let mut rng = StdRng::seed_from_u64(0xe9a2);
        for _ in 0..CASES {
            let mut clause = random_clause(&mut rng);
            let n_repairs = rng.gen_range(0..3usize);
            let cap = rng.gen_range(1..8usize);
            let base = clause.max_var_index().unwrap_or(0) + 1;
            for i in 0..n_repairs {
                let a = Term::var(i as u32 % 3);
                let b = Term::var((i as u32 + 1) % 3);
                clause.push_unique(Literal::Similar(a, b));
                clause.push_repair(RepairGroup::new(
                    RepairOrigin::Md(i),
                    vec![CondAtom::Sim(a, b)],
                    vec![
                        (Var(i as u32 % 3), Term::var(base + i as u32)),
                        (Var((i as u32 + 1) % 3), Term::var(base + i as u32)),
                    ],
                    vec![Literal::Similar(a, b)],
                ));
            }
            let repaired = repaired_clauses(
                &clause,
                ExpandLimits {
                    max_repairs: cap,
                    max_steps: 512,
                },
            );
            assert!(!repaired.is_empty());
            assert!(repaired.len() <= cap);
            for r in &repaired {
                assert!(r.is_repaired());
            }
        }
    }
}
