//! Literals of the extended Horn-clause language.
//!
//! Besides ordinary relation literals the language contains the similarity
//! literal `x ≈ y`, equality / inequality literals (restriction and induced
//! equality literals of Section 3.2), all over [`Term`]s. Repair literals are
//! represented separately as [`crate::repair::RepairGroup`]s attached to the
//! clause, because a repair is applied as a unit (a substitution plus the
//! removal of its induced literals); the rendering still shows them in the
//! paper's `V_c(x, v_x)` notation.
//!
//! Relation literals carry an interned [`RelId`] rather than an owned
//! `String`: constructing, cloning and comparing literals never touches
//! string data, which is what the θ-subsumption matcher depends on.

use std::collections::BTreeSet;
use std::fmt;

use dlearn_relstore::RelId;

use crate::substitution::Substitution;
use crate::term::{Term, Var};

/// A body or head literal (excluding repair literals).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Literal {
    /// A schema relation literal `R(t1, ..., tn)`.
    Relation {
        /// Interned relation name.
        relation: RelId,
        /// Argument terms.
        args: Vec<Term>,
    },
    /// Similarity literal `x ≈ y`.
    Similar(Term, Term),
    /// Equality literal `x = y`.
    Equal(Term, Term),
    /// Inequality literal `x ≠ y`.
    NotEqual(Term, Term),
}

impl Literal {
    /// Build a relation literal (interning the name when given as a string).
    pub fn relation(relation: impl Into<RelId>, args: Vec<Term>) -> Self {
        Literal::Relation {
            relation: relation.into(),
            args,
        }
    }

    /// `true` when this is a relation literal.
    pub fn is_relation(&self) -> bool {
        matches!(self, Literal::Relation { .. })
    }

    /// Name of the relation for relation literals.
    pub fn relation_name(&self) -> Option<&'static str> {
        self.relation_id().map(RelId::as_str)
    }

    /// Interned relation id for relation literals.
    pub fn relation_id(&self) -> Option<RelId> {
        match self {
            Literal::Relation { relation, .. } => Some(*relation),
            _ => None,
        }
    }

    /// Argument terms of the literal.
    pub fn args(&self) -> Vec<&Term> {
        match self {
            Literal::Relation { args, .. } => args.iter().collect(),
            Literal::Similar(a, b) | Literal::Equal(a, b) | Literal::NotEqual(a, b) => {
                vec![a, b]
            }
        }
    }

    /// Variables occurring in the literal.
    pub fn variables(&self) -> BTreeSet<Var> {
        self.args().into_iter().filter_map(|t| t.as_var()).collect()
    }

    /// Apply a substitution, producing a new literal.
    pub fn apply(&self, subst: &Substitution) -> Literal {
        match self {
            Literal::Relation { relation, args } => Literal::Relation {
                relation: *relation,
                args: subst.apply_iter(args).collect(),
            },
            Literal::Similar(a, b) => Literal::Similar(subst.apply(a), subst.apply(b)),
            Literal::Equal(a, b) => Literal::Equal(subst.apply(a), subst.apply(b)),
            Literal::NotEqual(a, b) => Literal::NotEqual(subst.apply(a), subst.apply(b)),
        }
    }

    /// `true` when the literal mentions the variable.
    pub fn mentions(&self, var: Var) -> bool {
        self.args().into_iter().any(|t| t.as_var() == Some(var))
    }

    /// A sort key used to keep clause bodies in a deterministic order:
    /// relation literals sort before constraint literals, then by name/args.
    pub fn ordering_key(&self) -> (u8, String) {
        match self {
            Literal::Relation { relation, args } => (0, format!("{relation}/{}", args.len())),
            Literal::Similar(_, _) => (1, "~".to_string()),
            Literal::Equal(_, _) => (2, "=".to_string()),
            Literal::NotEqual(_, _) => (3, "!=".to_string()),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Relation { relation, args } => {
                write!(f, "{relation}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Literal::Similar(a, b) => write!(f, "{a} ≈ {b}"),
            Literal::Equal(a, b) => write!(f, "{a} = {b}"),
            Literal::NotEqual(a, b) => write!(f, "{a} ≠ {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_literal_accessors() {
        let l = Literal::relation("movies", vec![Term::var(0), Term::constant("Superbad")]);
        assert!(l.is_relation());
        assert_eq!(l.relation_name(), Some("movies"));
        assert_eq!(l.relation_id(), Some(RelId::intern("movies")));
        assert_eq!(l.args().len(), 2);
        assert_eq!(l.variables().len(), 1);
        assert!(l.mentions(Var(0)));
        assert!(!l.mentions(Var(1)));
    }

    #[test]
    fn apply_substitutes_arguments() {
        let mut s = Substitution::new();
        s.bind(Var(0), Term::constant(7i64));
        let l = Literal::relation("r", vec![Term::var(0), Term::var(1)]);
        assert_eq!(
            l.apply(&s),
            Literal::relation("r", vec![Term::constant(7i64), Term::var(1)])
        );
        let sim = Literal::Similar(Term::var(0), Term::var(1)).apply(&s);
        assert_eq!(sim, Literal::Similar(Term::constant(7i64), Term::var(1)));
    }

    #[test]
    fn display_uses_datalog_notation() {
        let l = Literal::relation("mov2genres", vec![Term::var(1), Term::constant("comedy")]);
        assert_eq!(l.to_string(), "mov2genres(v1, 'comedy')");
        assert_eq!(
            Literal::Equal(Term::var(0), Term::var(2)).to_string(),
            "v0 = v2"
        );
        assert_eq!(
            Literal::Similar(Term::var(0), Term::var(2)).to_string(),
            "v0 ≈ v2"
        );
    }

    #[test]
    fn ordering_key_puts_relations_first() {
        let r = Literal::relation("r", vec![]);
        let s = Literal::Similar(Term::var(0), Term::var(1));
        assert!(r.ordering_key() < s.ordering_key());
    }
}
