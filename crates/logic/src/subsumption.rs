//! θ-subsumption between clauses, extended to repair literals.
//!
//! Clause `C` θ-subsumes clause `D` iff there is a substitution θ such that
//! `Cθ ⊆ D` (Section 4.2). Definition 4.4 extends this to clauses with repair
//! literals: repair literals are matched like ordinary literals, and —
//! optionally (see [`SubsumptionConfig::strict_repair_mapping`]) — every
//! repair literal of `D` connected to a mapped literal must itself be mapped.
//!
//! θ-subsumption is NP-hard, so the matcher is a backtracking search over the
//! relation literals of `C` with a global step budget. Literal order is
//! chosen **dynamically**: at every search node the matcher picks the
//! still-unmatched literal with the fewest candidate literals of `D` *after
//! pruning under the current θ* (most-constrained-literal-first), and fails
//! the node immediately when any unmatched literal has no candidate left.
//! Bindings made early therefore shrink the branching factor of every later
//! choice, which is where the remaining backtracking in the covering loop
//! goes. Setting [`SubsumptionConfig::adaptive_ordering`] to `false` falls
//! back to a static fewest-candidates-first order fixed before the search
//! (one pruning pass under the head bindings); as long as the search
//! completes within [`SubsumptionConfig::max_steps`], the *decision* is
//! identical either way — ordering only affects which witness is found
//! first and how much of the step budget a search consumes. (When the
//! budget binds, the cheaper adaptive search may answer "yes" where the
//! static order exhausts its steps first.)
//!
//! Similarity, equality and inequality literals are checked as constraints
//! once a full relation mapping is found, and repair groups are matched
//! against `D`'s repair facts after that; when the constraint or repair
//! phase rejects a mapping, the search resumes and tries the next relation
//! mapping rather than giving up. Decisions are therefore independent of
//! the literal order for clauses whose constraint variables all occur in
//! the head or a relation literal (the shape bottom-clause construction
//! produces), which is exactly the property the brute-force enumeration
//! oracle in `test-support` pins.
//!
//! ## Indexing
//!
//! [`GroundClause`] is the index side: candidate literals are bucketed by
//! `(RelId, arity)` and, within a bucket, by the term at every argument
//! position. When the search reaches a literal of `C` whose argument at
//! position `p` is already determined (a constant, or a variable bound by
//! θ), the candidate list shrinks to the bucket entries carrying exactly
//! that term at `p` — no string is hashed or compared anywhere, and no
//! linear scan over same-name literals happens. Bindings are undone through
//! a trail instead of cloning θ at every backtracking point.
//!
//! ## Flat substitutions
//!
//! The search binds only variables of the candidate clause `C`. `C` is
//! renumbered once to the dense variable range `0..n` (see
//! [`crate::numbering::NumberedClause`]), so θ is a [`FlatSubstitution`] —
//! a `Vec<Option<Term>>` indexed by variable number. Every `get`/`bind`/
//! `remove` in the inner loop is a direct slot access and trail unwinding is
//! `O(1)` per binding; no hashing happens anywhere in the search. The
//! hash-keyed [`Substitution`] path ([`head_bindings`], [`extend_bindings`])
//! is kept as the general-purpose reference implementation over the same
//! generic matcher internals; [`subsumes`] renumbers on the fly, while
//! [`subsumes_numbered`] / [`subsumes_numbered_decision`] reuse a
//! prepared-once numbering (the covering loop's hot path).

use std::collections::{BTreeSet, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use dlearn_relstore::{FxHashMap, RelId};

use crate::clause::Clause;
use crate::literal::Literal;
use crate::numbering::NumberedClause;
use crate::repair::{RepairGroup, RepairOrigin};
use crate::substitution::{FlatSubstitution, Substitution};
use crate::term::{Term, Var};

/// The θ interface the matcher internals are generic over: implemented by
/// the flat, clause-locally-numbered [`FlatSubstitution`] (the hot path) and
/// by the hash-keyed [`Substitution`] (the arbitrary-variable reference
/// path). Monomorphization keeps the flat instantiation allocation- and
/// hash-free.
trait Theta {
    fn binding(&self, v: Var) -> Option<&Term>;
    fn bind(&mut self, v: Var, t: Term);
    fn unbind(&mut self, v: Var);
    fn try_bind(&mut self, v: Var, t: Term) -> bool;
    fn apply(&self, t: &Term) -> Term;
}

impl Theta for Substitution {
    fn binding(&self, v: Var) -> Option<&Term> {
        self.get(v)
    }
    fn bind(&mut self, v: Var, t: Term) {
        Substitution::bind(self, v, t);
    }
    fn unbind(&mut self, v: Var) {
        self.remove(v);
    }
    fn try_bind(&mut self, v: Var, t: Term) -> bool {
        Substitution::try_bind(self, v, t)
    }
    fn apply(&self, t: &Term) -> Term {
        Substitution::apply(self, t)
    }
}

impl Theta for FlatSubstitution {
    fn binding(&self, v: Var) -> Option<&Term> {
        self.get(v)
    }
    fn bind(&mut self, v: Var, t: Term) {
        FlatSubstitution::bind(self, v, t);
    }
    fn unbind(&mut self, v: Var) {
        self.remove(v);
    }
    fn try_bind(&mut self, v: Var, t: Term) -> bool {
        FlatSubstitution::try_bind(self, v, t)
    }
    fn apply(&self, t: &Term) -> Term {
        FlatSubstitution::apply(self, t)
    }
}

/// The outcome of a θ-subsumption decision.
///
/// The search is budgeted (NP-hard worst case) and cooperatively
/// cancellable, so "no witness found" has three distinct causes that callers
/// must be able to tell apart: the space was exhausted (a real **No**), the
/// step budget ran out first (**BudgetExhausted** — the answer is unknown,
/// and serving layers surface it as a *degraded* negative instead of
/// silently collapsing it to "no"), or an external [`CancelToken`] fired
/// (**Cancelled** — typically a per-call deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// A witnessing substitution exists (and was found within budget).
    Yes,
    /// The full search space was explored: no witness exists.
    No,
    /// The step budget ([`SubsumptionConfig::max_steps`]) ran out before the
    /// search finished; whether a witness exists is unknown.
    BudgetExhausted,
    /// The [`CancelToken`] fired (deadline passed or explicit cancel) before
    /// the search finished; whether a witness exists is unknown.
    Cancelled,
}

impl Decision {
    /// `true` only for [`Decision::Yes`] — the legacy boolean collapse,
    /// where an inconclusive search counts as "does not subsume".
    pub fn is_yes(self) -> bool {
        matches!(self, Decision::Yes)
    }

    /// `true` when the search actually finished ([`Decision::Yes`] or
    /// [`Decision::No`]); `false` for the two inconclusive outcomes.
    pub fn is_conclusive(self) -> bool {
        matches!(self, Decision::Yes | Decision::No)
    }
}

/// Cooperative cancellation handle for long-running subsumption searches.
///
/// The search polls the token every [`CANCEL_CHECK_INTERVAL`] steps —
/// alongside the `steps > max_steps` budget test — so a pathological clause
/// pair cannot pin a worker thread past its deadline. A token is either
/// cancelled explicitly ([`CancelToken::cancel`], e.g. from another thread)
/// or implicitly when its optional deadline passes. Once cancelled it stays
/// cancelled (the deadline check latches into the atomic flag, so at most
/// one clock read happens after expiry).
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// How many search steps pass between [`CancelToken`] polls. A step is a
/// handful of slot accesses, so this bounds the cancellation latency to
/// microseconds while keeping the clock read off the per-step path.
pub const CANCEL_CHECK_INTERVAL: usize = 1024;

impl CancelToken {
    /// A token that only cancels explicitly.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that cancels itself once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: Some(deadline),
        }
    }

    /// Cancel the token: every search polling it stops at its next check.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once the token was cancelled or its deadline passed.
    pub fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// Budget and strictness knobs for the subsumption search.
#[derive(Debug, Clone, Copy)]
pub struct SubsumptionConfig {
    /// Maximum number of candidate-extension steps before giving up (a
    /// failed budget counts as "does not subsume").
    pub max_steps: usize,
    /// Enforce the second condition of Definition 4.4: every repair literal
    /// of `D` whose replaced variables are touched by the mapping must be
    /// matched by a repair literal of `C`. This is the strict reading; it is
    /// off by default because ground bottom clauses built with `km > 1`
    /// routinely carry alternative-match repair literals that a learned
    /// clause has no reason to mention.
    pub strict_repair_mapping: bool,
    /// Re-select the most constrained literal (fewest pruned candidates
    /// under the current θ) at every search node instead of fixing a
    /// fewest-candidates-first order up front. On by default; within the
    /// step budget the decision is the same either way — only search
    /// effort and the identity of the first-found witness differ (a
    /// budget-bound search can say "no" under the costlier static order
    /// where the adaptive one still finds a witness).
    pub adaptive_ordering: bool,
}

impl Default for SubsumptionConfig {
    fn default() -> Self {
        SubsumptionConfig {
            max_steps: 200_000,
            strict_repair_mapping: false,
            adaptive_ordering: true,
        }
    }
}

/// Candidate literals of one `(relation, arity)` signature, with a value
/// index per argument position.
#[derive(Debug, Clone, Default)]
struct RelBucket {
    /// Body indices of the literals with this signature, in body order.
    lits: Vec<usize>,
    /// One map per argument position: the term at that position in `D` →
    /// body indices carrying it (in body order). Fx-hashed: probed once per
    /// determined argument at every search node, and only ever *looked up*
    /// (iteration order is never observed), so the cheap hasher cannot
    /// affect decisions.
    by_pos: Vec<FxHashMap<Term, Vec<usize>>>,
}

/// A clause indexed for use as the right-hand side (`D`) of subsumption
/// tests. Ground bottom clauses are wrapped in this once and tested against
/// many candidate clauses.
#[derive(Debug, Clone)]
pub struct GroundClause {
    head: Literal,
    body: Vec<Literal>,
    /// Candidate index keyed by `(RelId, arity)`. This is also what the
    /// literal-ordering heuristic reads (via [`Self::candidates_pruned`]):
    /// the last name-keyed remnant of the pre-interning matcher is gone now
    /// that parity with it is established by the enumeration oracle instead
    /// of by replaying its search order.
    buckets: FxHashMap<(RelId, usize), RelBucket>,
    similar_pairs: BTreeSet<(Term, Term)>,
    equal_pairs: BTreeSet<(Term, Term)>,
    /// Flattened repair literals: `(origin, replaced variable as a term,
    /// replacement term, group index)`.
    repair_facts: Vec<(RepairOrigin, Term, Term, usize)>,
    repairs: Vec<RepairGroup>,
}

static EMPTY_IDS: [usize; 0] = [];

impl GroundClause {
    /// Index a clause for repeated subsumption testing.
    pub fn new(clause: &Clause) -> Self {
        let mut buckets: FxHashMap<(RelId, usize), RelBucket> = FxHashMap::default();
        let mut similar_pairs = BTreeSet::new();
        let mut equal_pairs = BTreeSet::new();
        for (i, l) in clause.body.iter().enumerate() {
            match l {
                Literal::Relation { relation, args } => {
                    let bucket = buckets.entry((*relation, args.len())).or_default();
                    if bucket.by_pos.len() < args.len() {
                        bucket.by_pos.resize_with(args.len(), FxHashMap::default);
                    }
                    bucket.lits.push(i);
                    for (p, t) in args.iter().enumerate() {
                        bucket.by_pos[p].entry(*t).or_default().push(i);
                    }
                }
                Literal::Similar(a, b) => {
                    similar_pairs.insert((*a, *b));
                    similar_pairs.insert((*b, *a));
                }
                Literal::Equal(a, b) => {
                    equal_pairs.insert((*a, *b));
                    equal_pairs.insert((*b, *a));
                }
                // NotEqual literals of D constrain nothing the matcher
                // checks (C's inequality literals are verified against D's
                // equal_pairs), so they are not indexed.
                Literal::NotEqual(_, _) => {}
            }
        }
        let mut repair_facts = Vec::new();
        for (gi, g) in clause.repairs.iter().enumerate() {
            for (v, t) in &g.replacements {
                repair_facts.push((g.origin, Term::Var(*v), *t, gi));
            }
        }
        GroundClause {
            head: clause.head.clone(),
            body: clause.body.clone(),
            buckets,
            similar_pairs,
            equal_pairs,
            repair_facts,
            repairs: clause.repairs.clone(),
        }
    }

    /// The head literal.
    pub fn head(&self) -> &Literal {
        &self.head
    }

    /// The body literals.
    pub fn body(&self) -> &[Literal] {
        &self.body
    }

    /// The repair groups attached to the underlying clause.
    pub fn repairs(&self) -> &[RepairGroup] {
        &self.repairs
    }

    /// Number of body literals.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// `true` when the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// The smallest candidate list for a literal of `C` under the current
    /// substitution: starts from the `(RelId, arity)` bucket and shrinks it
    /// through the per-position value indexes for every argument that is
    /// already determined (a constant, or a θ-bound variable). Every literal
    /// skipped by the pruning could not have matched.
    fn candidates_pruned<T: Theta>(&self, relation: RelId, args: &[Term], theta: &T) -> &[usize] {
        let Some(bucket) = self.buckets.get(&(relation, args.len())) else {
            return &EMPTY_IDS;
        };
        let mut best: &[usize] = &bucket.lits;
        for (p, arg) in args.iter().enumerate() {
            let determined = match arg {
                Term::Const(_) => Some(*arg),
                Term::Var(v) => theta.binding(*v).copied(),
            };
            if let Some(term) = determined {
                match bucket.by_pos[p].get(&term) {
                    None => return &EMPTY_IDS,
                    Some(ids) => {
                        if ids.len() < best.len() {
                            best = ids;
                        }
                    }
                }
            }
        }
        best
    }
}

/// Try to unify (match) a literal of `C` against a concrete literal of `D`,
/// extending the substitution and recording fresh bindings on `trail`.
fn match_literal<T: Theta>(
    c_lit: &Literal,
    d_lit: &Literal,
    theta: &mut T,
    trail: &mut Vec<Var>,
) -> bool {
    match (c_lit, d_lit) {
        (
            Literal::Relation {
                relation: rc,
                args: ac,
            },
            Literal::Relation {
                relation: rd,
                args: ad,
            },
        ) => {
            if rc != rd || ac.len() != ad.len() {
                return false;
            }
            for (a, b) in ac.iter().zip(ad.iter()) {
                if !match_term(a, b, theta, trail) {
                    return false;
                }
            }
            true
        }
        _ => false,
    }
}

/// Match a term of `C` against a term of `D` under the current substitution,
/// recording any fresh binding on `trail`.
fn match_term<T: Theta>(c_term: &Term, d_term: &Term, theta: &mut T, trail: &mut Vec<Var>) -> bool {
    match c_term {
        Term::Const(v) => match d_term {
            Term::Const(w) => v == w,
            Term::Var(_) => false,
        },
        Term::Var(v) => match theta.binding(*v) {
            Some(existing) => existing == d_term,
            None => {
                theta.bind(*v, *d_term);
                trail.push(*v);
                true
            }
        },
    }
}

/// Undo every binding recorded past `mark`.
fn unwind<T: Theta>(theta: &mut T, trail: &mut Vec<Var>, mark: usize) {
    for var in trail.drain(mark..) {
        theta.unbind(var);
    }
}

/// Why an inconclusive search stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopCause {
    Budget,
    Cancelled,
}

/// Mutable state of the matching search. θ is a flat substitution over the
/// candidate clause's dense numbering; `used_repair_groups` is a dense mask
/// over `d`'s repair groups for the same reason.
struct SearchState {
    theta: FlatSubstitution,
    trail: Vec<Var>,
    used_repair_groups: Vec<bool>,
    steps: usize,
    /// Set once when the search stops inconclusively; every later `charge`
    /// fails immediately so the whole recursion unwinds without doing work.
    stop: Option<StopCause>,
}

impl SearchState {
    /// Charge one candidate-extension step against the budget and — every
    /// [`CANCEL_CHECK_INTERVAL`] steps — poll the cancellation token.
    /// Returns `false` when the search must stop (budget exhausted or
    /// cancelled); the first cause wins and is latched in `self.stop`.
    #[inline]
    fn charge(&mut self, config: &SubsumptionConfig, cancel: Option<&CancelToken>) -> bool {
        if self.stop.is_some() {
            return false;
        }
        self.steps += 1;
        if self.steps > config.max_steps {
            self.stop = Some(StopCause::Budget);
            return false;
        }
        if self.steps.is_multiple_of(CANCEL_CHECK_INTERVAL) {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    self.stop = Some(StopCause::Cancelled);
                    return false;
                }
            }
        }
        true
    }
}

/// Test whether `c` θ-subsumes the indexed clause `d`.
///
/// Returns the witnessing substitution (over `c`'s original variables) when
/// it does. This renumbers `c` on every call; callers testing one clause
/// against many ground clauses should renumber once and use
/// [`subsumes_numbered`] / [`subsumes_numbered_decision`].
pub fn subsumes(c: &Clause, d: &GroundClause, config: &SubsumptionConfig) -> Option<Substitution> {
    subsumes_numbered(&NumberedClause::new(c), d, config)
}

/// [`subsumes`] over a clause whose variable numbering was prepared once.
pub fn subsumes_numbered(
    c: &NumberedClause,
    d: &GroundClause,
    config: &SubsumptionConfig,
) -> Option<Substitution> {
    search_subsumption(c, d, config, None)
        .0
        .map(|flat| c.to_original(&flat))
}

/// Decision-only variant of [`subsumes_numbered`]: skips translating the
/// witness back to the original variable space. This is what coverage
/// testing calls in the covering loop.
///
/// The decision is three-valued: a search that ran out of its step budget
/// reports [`Decision::BudgetExhausted`] instead of collapsing to "no", so
/// callers can observe (and count) degraded answers. Use
/// [`Decision::is_yes`] for the legacy boolean reading.
pub fn subsumes_numbered_decision(
    c: &NumberedClause,
    d: &GroundClause,
    config: &SubsumptionConfig,
) -> Decision {
    subsumes_numbered_decision_controlled(c, d, config, None)
}

/// [`subsumes_numbered_decision`] under cooperative cancellation: the search
/// polls `cancel` alongside its step budget and reports
/// [`Decision::Cancelled`] when the token fires mid-search. This is the
/// serving tier's per-call deadline hook.
pub fn subsumes_numbered_decision_controlled(
    c: &NumberedClause,
    d: &GroundClause,
    config: &SubsumptionConfig,
    cancel: Option<&CancelToken>,
) -> Decision {
    match search_subsumption(c, d, config, cancel) {
        (Some(_), _) => Decision::Yes,
        (None, Some(StopCause::Budget)) => Decision::BudgetExhausted,
        (None, Some(StopCause::Cancelled)) => Decision::Cancelled,
        (None, None) => Decision::No,
    }
}

/// A relation literal of the candidate clause, destructured once so the
/// search never re-matches the enum inside the hot loop.
struct RelLit<'a> {
    lit: &'a Literal,
    relation: RelId,
    args: &'a [Term],
}

/// Everything immutable the relation search threads through its recursion.
struct SearchCtx<'a> {
    relations: Vec<RelLit<'a>>,
    constraints: Vec<&'a Literal>,
    repairs: &'a [RepairGroup],
    d: &'a GroundClause,
    config: &'a SubsumptionConfig,
    cancel: Option<&'a CancelToken>,
}

/// The backtracking search over the renumbered candidate clause, with θ as a
/// flat substitution. Returns the witness (if any) together with the cause
/// of an inconclusive early stop.
fn search_subsumption(
    c: &NumberedClause,
    d: &GroundClause,
    config: &SubsumptionConfig,
    cancel: Option<&CancelToken>,
) -> (Option<FlatSubstitution>, Option<StopCause>) {
    let clause = c.clause();

    // 1. Heads must unify.
    let mut theta = c.fresh_substitution();
    let mut head_trail = Vec::new();
    if !match_literal(&clause.head, d.head(), &mut theta, &mut head_trail) {
        return (None, None);
    }

    // 2. Collect C's relation literals. Under adaptive ordering the search
    // re-selects the most constrained one at every node, so the initial
    // order is irrelevant; the static fallback fixes a fewest-candidates-
    // first order here, pruned once under the head bindings.
    let mut relations: Vec<RelLit> = clause
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Relation { relation, args } => Some(RelLit {
                lit: l,
                relation: *relation,
                args,
            }),
            _ => None,
        })
        .collect();
    if !config.adaptive_ordering {
        relations.sort_by_key(|r| d.candidates_pruned(r.relation, r.args, &theta).len());
    }

    let constraint_lits: Vec<&Literal> = clause.body.iter().filter(|l| !l.is_relation()).collect();

    let ctx = SearchCtx {
        relations,
        constraints: constraint_lits,
        repairs: &clause.repairs,
        d,
        config,
        cancel,
    };
    let mut state = SearchState {
        theta,
        trail: Vec::new(),
        used_repair_groups: vec![false; d.repairs().len()],
        steps: 0,
        stop: None,
    };
    let mut matched = vec![false; ctx.relations.len()];

    if search_relations(&ctx, &mut matched, 0, &mut state) {
        (Some(state.theta), None)
    } else {
        (None, state.stop)
    }
}

/// Match the remaining relation literals, then hand the complete mapping to
/// [`finish_mapping`]. A mapping rejected by the constraint or repair phase
/// does not end the search: the relation search backtracks and offers the
/// next mapping, so the decision never depends on which mapping is
/// enumerated first.
fn search_relations(
    ctx: &SearchCtx,
    matched: &mut [bool],
    n_matched: usize,
    state: &mut SearchState,
) -> bool {
    if n_matched == ctx.relations.len() {
        return finish_mapping(ctx, state);
    }

    // Select the next literal: under adaptive ordering, the unmatched
    // literal with the fewest candidates after pruning under the current θ,
    // failing the node outright when any unmatched literal has none (cheap
    // fail-fast — that literal could never be matched on this branch).
    // Under static ordering, position `n_matched` of the presorted order.
    let (pick, candidates) = if ctx.config.adaptive_ordering {
        let mut best: Option<(usize, &[usize])> = None;
        for (i, rel) in ctx.relations.iter().enumerate() {
            if matched[i] {
                continue;
            }
            let cands = ctx
                .d
                .candidates_pruned(rel.relation, rel.args, &state.theta);
            if cands.is_empty() {
                return false;
            }
            if best.is_none_or(|(_, b)| cands.len() < b.len()) {
                best = Some((i, cands));
            }
        }
        best.expect("n_matched < relations.len() implies an unmatched literal")
    } else {
        let rel = &ctx.relations[n_matched];
        let cands = ctx
            .d
            .candidates_pruned(rel.relation, rel.args, &state.theta);
        (n_matched, cands)
    };

    let lit = ctx.relations[pick].lit;
    matched[pick] = true;
    for &idx in candidates {
        if !state.charge(ctx.config, ctx.cancel) {
            matched[pick] = false;
            return false;
        }
        let mark = state.trail.len();
        if match_literal(lit, &ctx.d.body()[idx], &mut state.theta, &mut state.trail)
            && search_relations(ctx, matched, n_matched + 1, state)
        {
            return true;
        }
        unwind(&mut state.theta, &mut state.trail, mark);
    }
    matched[pick] = false;
    false
}

/// Check the constraint literals and repair groups against a complete
/// relation mapping. On rejection every side effect is rolled back — the
/// pair checker binds constraint-only variables without trailing them and
/// repair matching marks used groups, so θ and the used-group mask are
/// restored from snapshots taken at entry — leaving the relation search free
/// to continue with the next mapping.
fn finish_mapping(ctx: &SearchCtx, state: &mut SearchState) -> bool {
    // Pure-relation clauses (the common coverage-testing shape) have
    // nothing to check and nothing to roll back: skip the snapshots.
    if ctx.constraints.is_empty() && ctx.repairs.is_empty() && !ctx.config.strict_repair_mapping {
        return true;
    }
    let mark = state.trail.len();
    let theta_snapshot = state.theta.clone();
    let used_snapshot = state.used_repair_groups.clone();
    let ok = check_constraints(&ctx.constraints, &mut state.theta, ctx.d)
        && match_repairs(ctx.repairs, 0, ctx.d, state, ctx.config, ctx.cancel)
        && (!ctx.config.strict_repair_mapping || strict_repairs_ok(state, ctx.d));
    if !ok {
        state.trail.truncate(mark);
        state.theta = theta_snapshot;
        state.used_repair_groups = used_snapshot;
    }
    ok
}

/// Verify (and where necessary bind) the non-relation literals of `C`.
fn check_constraints<T: Theta>(lits: &[&Literal], theta: &mut T, d: &GroundClause) -> bool {
    for lit in lits {
        match lit {
            Literal::Similar(a, b) => {
                if !check_pair(theta, d, a, b, PairKind::Similar) {
                    return false;
                }
            }
            Literal::Equal(a, b) => {
                if !check_pair(theta, d, a, b, PairKind::Equal) {
                    return false;
                }
            }
            Literal::NotEqual(a, b) => {
                let ta = theta.apply(a);
                let tb = theta.apply(b);
                // Unequal iff the mapped terms differ and are not explicitly
                // equated in D.
                if ta == tb || d.equal_pairs.contains(&(ta, tb)) {
                    return false;
                }
            }
            Literal::Relation { .. } => unreachable!("relation literals are matched separately"),
        }
    }
    true
}

#[derive(Clone, Copy, PartialEq)]
enum PairKind {
    Similar,
    Equal,
}

fn check_pair<T: Theta>(
    theta: &mut T,
    d: &GroundClause,
    a: &Term,
    b: &Term,
    kind: PairKind,
) -> bool {
    let pairs = match kind {
        PairKind::Similar => &d.similar_pairs,
        PairKind::Equal => &d.equal_pairs,
    };
    let ta = theta.apply(a);
    let tb = theta.apply(b);
    let a_bound = ta.is_const()
        || a.as_var()
            .map(|v| theta.binding(v).is_some())
            .unwrap_or(true);
    let b_bound = tb.is_const()
        || b.as_var()
            .map(|v| theta.binding(v).is_some())
            .unwrap_or(true);
    match (a_bound, b_bound) {
        (true, true) => ta == tb || pairs.contains(&(ta, tb)),
        (true, false) => {
            // Bind b to any partner of a (BTreeSet iteration: deterministic,
            // smallest partner first).
            for (x, y) in pairs.iter() {
                if *x == ta {
                    if let Some(vb) = b.as_var() {
                        if theta.try_bind(vb, *y) {
                            return true;
                        }
                    }
                }
            }
            // Fall back to making them equal.
            if let Some(vb) = b.as_var() {
                return theta.try_bind(vb, ta);
            }
            false
        }
        (false, true) => check_pair(theta, d, b, a, kind),
        (false, false) => {
            // Both unbound: bind them to the first pair available, or to each
            // other when the pair set is empty.
            if let (Some(va), Some(vb)) = (a.as_var(), b.as_var()) {
                if let Some((x, y)) = pairs.iter().next() {
                    return theta.try_bind(va, *x) && theta.try_bind(vb, *y);
                }
                return theta.try_bind(va, Term::var(u32::MAX))
                    && theta.try_bind(vb, Term::var(u32::MAX));
            }
            false
        }
    }
}

/// Match every repair group of `C` against the repair facts of `D`
/// (Definition 4.4, first condition: repair literals are treated as ordinary
/// literals under θ).
fn match_repairs(
    groups: &[RepairGroup],
    depth: usize,
    d: &GroundClause,
    state: &mut SearchState,
    config: &SubsumptionConfig,
    cancel: Option<&CancelToken>,
) -> bool {
    if depth == groups.len() {
        return true;
    }
    let group = &groups[depth];
    // Match each replacement (x, t) of the group against some repair fact of
    // D with the same origin.
    match_group_replacements(group, 0, d, state, config, cancel)
        && match_repairs(groups, depth + 1, d, state, config, cancel)
}

fn match_group_replacements(
    group: &RepairGroup,
    ri: usize,
    d: &GroundClause,
    state: &mut SearchState,
    config: &SubsumptionConfig,
    cancel: Option<&CancelToken>,
) -> bool {
    if ri == group.replacements.len() {
        return true;
    }
    let (x, t) = &group.replacements[ri];
    let x_term = Term::Var(*x);
    for (origin, dx, dt, gi) in &d.repair_facts {
        if !state.charge(config, cancel) {
            return false;
        }
        if *origin != group.origin {
            continue;
        }
        let mark = state.trail.len();
        if match_term(&x_term, dx, &mut state.theta, &mut state.trail)
            && match_term(t, dt, &mut state.theta, &mut state.trail)
        {
            let newly_used = !state.used_repair_groups[*gi];
            state.used_repair_groups[*gi] = true;
            if match_group_replacements(group, ri + 1, d, state, config, cancel) {
                return true;
            }
            // Roll the mark back with the bindings: a group used only on an
            // abandoned branch must not satisfy the strict repair check.
            if newly_used {
                state.used_repair_groups[*gi] = false;
            }
        }
        unwind(&mut state.theta, &mut state.trail, mark);
    }
    false
}

/// The strict reading of Definition 4.4: every repair group of `D` whose
/// replaced variables appear in the image of the mapping must have been used
/// to match some repair group of `C`.
fn strict_repairs_ok(state: &SearchState, d: &GroundClause) -> bool {
    let image: HashSet<Term> = state.theta.range().copied().collect();
    for (gi, g) in d.repairs().iter().enumerate() {
        let touched = g.targets().iter().any(|v| image.contains(&Term::Var(*v)));
        if touched && !state.used_repair_groups[gi] {
            return false;
        }
    }
    true
}

/// Bindings of the head of a candidate clause against the head of a ground
/// clause. Returns `None` when the heads cannot unify.
pub fn head_bindings(head: &Literal, d: &GroundClause) -> Option<Substitution> {
    let mut theta = Substitution::new();
    let mut trail = Vec::new();
    if match_literal(head, d.head(), &mut theta, &mut trail) {
        Some(theta)
    } else {
        None
    }
}

/// Flat-substitution counterpart of [`head_bindings`], over a renumbered
/// candidate clause.
pub fn head_bindings_numbered(c: &NumberedClause, d: &GroundClause) -> Option<FlatSubstitution> {
    let mut theta = c.fresh_substitution();
    let mut trail = Vec::new();
    if match_literal(&c.clause().head, d.head(), &mut theta, &mut trail) {
        Some(theta)
    } else {
        None
    }
}

/// Extend a set of partial substitutions with one more literal of the
/// candidate clause, against the ground clause `d`. Used by the
/// generalization algorithm to detect blocking literals incrementally.
///
/// The result is capped at `cap` substitutions; an empty result means the
/// literal is *blocking* for every current binding.
pub fn extend_bindings(
    lit: &Literal,
    bindings: &[Substitution],
    d: &GroundClause,
    cap: usize,
) -> Vec<Substitution> {
    extend_bindings_impl(lit, bindings, d, cap)
}

/// Flat-substitution counterpart of [`extend_bindings`]. `lit` must be a
/// literal of the renumbered clause the bindings were created for.
pub fn extend_bindings_flat(
    lit: &Literal,
    bindings: &[FlatSubstitution],
    d: &GroundClause,
    cap: usize,
) -> Vec<FlatSubstitution> {
    extend_bindings_impl(lit, bindings, d, cap)
}

fn extend_bindings_impl<T: Theta + Clone>(
    lit: &Literal,
    bindings: &[T],
    d: &GroundClause,
    cap: usize,
) -> Vec<T> {
    let mut out: Vec<T> = Vec::new();
    let mut trail: Vec<Var> = Vec::new();
    for theta in bindings {
        match lit {
            Literal::Relation { relation, args } => {
                for &idx in d.candidates_pruned(*relation, args, theta) {
                    let mut candidate = theta.clone();
                    trail.clear();
                    if match_literal(lit, &d.body()[idx], &mut candidate, &mut trail) {
                        out.push(candidate);
                        if out.len() >= cap {
                            return out;
                        }
                    }
                }
            }
            Literal::Similar(a, b) => {
                let mut candidate = theta.clone();
                if check_pair(&mut candidate, d, a, b, PairKind::Similar) {
                    out.push(candidate);
                }
            }
            Literal::Equal(a, b) => {
                let mut candidate = theta.clone();
                if check_pair(&mut candidate, d, a, b, PairKind::Equal) {
                    out.push(candidate);
                }
            }
            Literal::NotEqual(a, b) => {
                let ta = theta.apply(a);
                let tb = theta.apply(b);
                if ta != tb && !d.equal_pairs.contains(&(ta, tb)) {
                    out.push(theta.clone());
                }
            }
        }
        if out.len() >= cap {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::CondAtom;
    use crate::term::Var;

    /// D: highGrossing(v0) ← movies(v1, v2, v3), mov2genres(v1, 'comedy'),
    ///                        v0 ≈ v2, with an MD repair unifying v0 and v2.
    fn ground_clause() -> GroundClause {
        let mut d = Clause::new(Literal::relation("highGrossing", vec![Term::var(0)]));
        d.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(2), Term::var(3)],
        ));
        d.push_unique(Literal::relation(
            "mov2genres",
            vec![Term::var(1), Term::constant("comedy")],
        ));
        d.push_unique(Literal::Similar(Term::var(0), Term::var(2)));
        d.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![CondAtom::Sim(Term::var(0), Term::var(2))],
            vec![(Var(0), Term::var(9)), (Var(2), Term::var(9))],
            vec![Literal::Similar(Term::var(0), Term::var(2))],
        ));
        GroundClause::new(&d)
    }

    #[test]
    fn identical_structure_subsumes() {
        let mut c = Clause::new(Literal::relation("highGrossing", vec![Term::var(10)]));
        c.push_unique(Literal::relation(
            "movies",
            vec![Term::var(11), Term::var(12), Term::var(13)],
        ));
        c.push_unique(Literal::Similar(Term::var(10), Term::var(12)));
        let d = ground_clause();
        let theta = subsumes(&c, &d, &SubsumptionConfig::default());
        assert!(theta.is_some());
        let theta = theta.unwrap();
        assert_eq!(theta.apply(&Term::var(10)), Term::var(0));
        assert_eq!(theta.apply(&Term::var(12)), Term::var(2));
    }

    #[test]
    fn constant_mismatch_blocks_subsumption() {
        let mut c = Clause::new(Literal::relation("highGrossing", vec![Term::var(0)]));
        c.push_unique(Literal::relation(
            "mov2genres",
            vec![Term::var(1), Term::constant("drama")],
        ));
        let d = ground_clause();
        assert!(subsumes(&c, &d, &SubsumptionConfig::default()).is_none());
    }

    #[test]
    fn matching_constant_subsumes() {
        let mut c = Clause::new(Literal::relation("highGrossing", vec![Term::var(0)]));
        c.push_unique(Literal::relation(
            "mov2genres",
            vec![Term::var(1), Term::constant("comedy")],
        ));
        let d = ground_clause();
        assert!(subsumes(&c, &d, &SubsumptionConfig::default()).is_some());
    }

    #[test]
    fn different_head_relation_never_subsumes() {
        let c = Clause::new(Literal::relation("other", vec![Term::var(0)]));
        let d = ground_clause();
        assert!(subsumes(&c, &d, &SubsumptionConfig::default()).is_none());
    }

    #[test]
    fn missing_relation_blocks_subsumption() {
        let mut c = Clause::new(Literal::relation("highGrossing", vec![Term::var(0)]));
        c.push_unique(Literal::relation(
            "mov2countries",
            vec![Term::var(1), Term::var(2)],
        ));
        let d = ground_clause();
        assert!(subsumes(&c, &d, &SubsumptionConfig::default()).is_none());
    }

    #[test]
    fn arity_mismatch_blocks_subsumption() {
        // Same relation name, wrong arity: the (RelId, arity) bucket lookup
        // must rule it out.
        let mut c = Clause::new(Literal::relation("highGrossing", vec![Term::var(0)]));
        c.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(2)],
        ));
        let d = ground_clause();
        assert!(subsumes(&c, &d, &SubsumptionConfig::default()).is_none());
    }

    #[test]
    fn similarity_literal_requires_a_similar_pair_in_d() {
        // v10 ≈ v11 where v10 maps to v0 (head) and v11 maps to v3 (year):
        // D has no such similarity pair, so subsumption must fail.
        let mut c = Clause::new(Literal::relation("highGrossing", vec![Term::var(10)]));
        c.push_unique(Literal::relation(
            "movies",
            vec![Term::var(11), Term::var(12), Term::var(13)],
        ));
        c.push_unique(Literal::Similar(Term::var(10), Term::var(13)));
        let d = ground_clause();
        assert!(subsumes(&c, &d, &SubsumptionConfig::default()).is_none());
    }

    #[test]
    fn repair_group_in_c_matches_repair_fact_in_d() {
        let mut c = Clause::new(Literal::relation("highGrossing", vec![Term::var(10)]));
        c.push_unique(Literal::relation(
            "movies",
            vec![Term::var(11), Term::var(12), Term::var(13)],
        ));
        c.push_unique(Literal::Similar(Term::var(10), Term::var(12)));
        c.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![CondAtom::Sim(Term::var(10), Term::var(12))],
            vec![(Var(10), Term::var(20)), (Var(12), Term::var(20))],
            vec![Literal::Similar(Term::var(10), Term::var(12))],
        ));
        let d = ground_clause();
        assert!(subsumes(&c, &d, &SubsumptionConfig::default()).is_some());

        // A repair from a different constraint cannot be matched.
        let mut c2 = c.clone();
        c2.repairs[0].origin = RepairOrigin::Md(3);
        assert!(subsumes(&c2, &d, &SubsumptionConfig::default()).is_none());
    }

    #[test]
    fn strict_repair_mapping_rejects_unacknowledged_repairs() {
        // C maps the movies literal (touching v2, which D's repair replaces)
        // but carries no repair literal of its own.
        let mut c = Clause::new(Literal::relation("highGrossing", vec![Term::var(10)]));
        c.push_unique(Literal::relation(
            "movies",
            vec![Term::var(11), Term::var(12), Term::var(13)],
        ));
        let d = ground_clause();
        let lenient = SubsumptionConfig::default();
        let strict = SubsumptionConfig {
            strict_repair_mapping: true,
            ..lenient
        };
        assert!(subsumes(&c, &d, &lenient).is_some());
        assert!(subsumes(&c, &d, &strict).is_none());
    }

    #[test]
    fn strict_mode_ignores_repair_groups_used_only_on_abandoned_branches() {
        // D: t(v0) ← r0(v1) with two same-origin repair groups:
        //   g0 replaces v1 by 'p', g1 replaces v2 by 'q'.
        let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        d.push_unique(Literal::relation("r0", vec![Term::var(1)]));
        d.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![],
            vec![(Var(1), Term::constant("p"))],
            vec![],
        ));
        d.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![],
            vec![(Var(2), Term::constant("q"))],
            vec![],
        ));
        let g = GroundClause::new(&d);

        // C maps r0 onto v1 (so g0 is *touched*) and carries one repair
        // group that first partially matches g0's fact, backtracks, and
        // finally succeeds entirely through g1. With correct bookkeeping the
        // mapping never uses g0, so the strict reading must reject; a stale
        // used-mark from the abandoned g0 branch would wrongly accept.
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(10)]));
        c.push_unique(Literal::relation("r0", vec![Term::var(11)]));
        c.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![],
            vec![(Var(12), Term::var(13)), (Var(12), Term::constant("q"))],
            vec![],
        ));
        let lenient = SubsumptionConfig::default();
        let strict = SubsumptionConfig {
            strict_repair_mapping: true,
            ..lenient
        };
        assert!(
            subsumes(&c, &g, &lenient).is_some(),
            "lenient mode must accept"
        );
        assert!(
            subsumes(&c, &g, &strict).is_none(),
            "strict mode must reject: g0 (touching the mapped v1) was only \
             used on an abandoned branch"
        );
    }

    #[test]
    fn extend_bindings_detects_blocking_literals() {
        let d = ground_clause();
        let head = Literal::relation("highGrossing", vec![Term::var(10)]);
        let start = vec![head_bindings(&head, &d).unwrap()];
        let movies = Literal::relation("movies", vec![Term::var(11), Term::var(12), Term::var(13)]);
        let after_movies = extend_bindings(&movies, &start, &d, 16);
        assert_eq!(after_movies.len(), 1);
        // A literal whose relation does not exist in D blocks every binding.
        let blocking = Literal::relation("mov2releasedate", vec![Term::var(11), Term::var(14)]);
        assert!(extend_bindings(&blocking, &after_movies, &d, 16).is_empty());
        // A genre literal with the wrong constant also blocks.
        let wrong_genre =
            Literal::relation("mov2genres", vec![Term::var(11), Term::constant("drama")]);
        assert!(extend_bindings(&wrong_genre, &after_movies, &d, 16).is_empty());
        let right_genre =
            Literal::relation("mov2genres", vec![Term::var(11), Term::constant("comedy")]);
        assert_eq!(
            extend_bindings(&right_genre, &after_movies, &d, 16).len(),
            1
        );
    }

    #[test]
    fn two_c_variables_may_map_to_the_same_d_term() {
        // θ-subsumption does not require injectivity.
        let mut c = Clause::new(Literal::relation("highGrossing", vec![Term::var(0)]));
        c.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(2), Term::var(3)],
        ));
        c.push_unique(Literal::relation(
            "movies",
            vec![Term::var(4), Term::var(5), Term::var(6)],
        ));
        let d = ground_clause();
        assert!(subsumes(&c, &d, &SubsumptionConfig::default()).is_some());
    }

    #[test]
    fn budget_exhaustion_reports_no_subsumption() {
        let mut c = Clause::new(Literal::relation("highGrossing", vec![Term::var(0)]));
        for i in 0..6 {
            c.push_unique(Literal::relation(
                "movies",
                vec![Term::var(10 + i), Term::var(20 + i), Term::var(30 + i)],
            ));
        }
        c.push_unique(Literal::relation("missing", vec![Term::var(50)]));
        let d = ground_clause();
        let tiny = SubsumptionConfig {
            max_steps: 1,
            ..SubsumptionConfig::default()
        };
        assert!(subsumes(&c, &d, &tiny).is_none());
    }

    #[test]
    fn positional_index_prunes_by_bound_variables() {
        // D has many same-relation literals; once v10 is bound through the
        // head, the pruned candidate list for p(v10, _) must be exactly the
        // literals whose first argument is v0.
        let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        for i in 1..50 {
            d.push_unique(Literal::relation(
                "p",
                vec![Term::var(i), Term::var(i + 100)],
            ));
        }
        d.push_unique(Literal::relation("p", vec![Term::var(0), Term::var(200)]));
        let g = GroundClause::new(&d);

        let mut c = Clause::new(Literal::relation("t", vec![Term::var(10)]));
        c.push_unique(Literal::relation("p", vec![Term::var(10), Term::var(11)]));
        // The budget only admits a couple of candidate extensions: without
        // positional pruning the matcher would scan ~50 candidates for the
        // p-literal and could exhaust a small budget before reaching the
        // matching one; with pruning it tries exactly one.
        let tight = SubsumptionConfig {
            max_steps: 2,
            ..SubsumptionConfig::default()
        };
        let theta = subsumes(&c, &g, &tight).expect("pruned search must succeed in 2 steps");
        assert_eq!(theta.apply(&Term::var(11)), Term::var(200));
    }
}
