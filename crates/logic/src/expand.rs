//! Expansion of a clause with repair groups into its repaired clauses.
//!
//! Section 3.2: a clause with repair literals is converted into its set of
//! *repaired clauses* by iteratively applying repair literals — if a repair's
//! condition holds it is applied (its replacements are substituted through
//! the clause), otherwise it is simply discarded — until none are left.
//! Different application orders may produce different repaired clauses
//! (Example 3.3), so the expansion explores orders, pruning orders that lead
//! to already-seen results and applying *independent* repairs (sharing no
//! variables with other applicable repairs) eagerly since their order cannot
//! matter.

use std::collections::HashSet;

use crate::clause::Clause;

/// Limits for repaired-clause expansion.
#[derive(Debug, Clone, Copy)]
pub struct ExpandLimits {
    /// Maximum number of distinct repaired clauses to produce.
    pub max_repairs: usize,
    /// Safety cap on explored intermediate clauses.
    pub max_steps: usize,
}

impl Default for ExpandLimits {
    fn default() -> Self {
        ExpandLimits {
            max_repairs: 16,
            max_steps: 1024,
        }
    }
}

/// Enumerate the repaired clauses of `clause`, up to the given limits.
///
/// The result always contains at least one clause; a clause without repair
/// groups expands to itself.
pub fn repaired_clauses(clause: &Clause, limits: ExpandLimits) -> Vec<Clause> {
    let mut results: Vec<Clause> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut stack: Vec<Clause> = vec![clause.clone()];
    let mut steps = 0usize;

    while let Some(current) = stack.pop() {
        steps += 1;
        if steps > limits.max_steps || results.len() >= limits.max_repairs {
            break;
        }
        if current.repairs.is_empty() {
            let mut finished = current;
            finished.retain_head_connected();
            if seen.insert(finished.canonical_string()) {
                results.push(finished);
            }
            continue;
        }
        let applicable: Vec<usize> = current
            .repairs
            .iter()
            .enumerate()
            .filter(|(_, g)| g.condition_holds(&current.body))
            .map(|(i, _)| i)
            .collect();

        if applicable.is_empty() {
            // No repair can fire: discard all remaining repair groups.
            let mut c = current;
            c.repairs.clear();
            stack.push(c);
            continue;
        }

        // Repairs that share no variables with any *other* applicable repair
        // can be applied in any order with the same outcome; fire the first
        // such repair without branching.
        let independent = applicable.iter().copied().find(|&i| {
            let vars_i = current.repairs[i].variables();
            applicable
                .iter()
                .all(|&j| j == i || current.repairs[j].variables().is_disjoint(&vars_i))
        });

        let branch_targets: Vec<usize> = match independent {
            Some(i) => vec![i],
            None => applicable,
        };

        for &i in &branch_targets {
            stack.push(apply_repair(&current, i));
        }
    }

    if results.is_empty() {
        // Budget exhausted before reaching any fully repaired clause; fall
        // back to dropping the remaining repairs so callers always get a
        // usable clause.
        let mut c = clause.clone();
        c.repairs.clear();
        c.retain_head_connected();
        results.push(c);
    }
    results
}

/// Apply the repair group at `index` to the clause, producing the successor
/// clause: consumed literals are removed, the group's substitution is applied
/// everywhere (including the other groups' conditions), and the group itself
/// is dropped.
fn apply_repair(clause: &Clause, index: usize) -> Clause {
    let mut c = clause.clone();
    let group = c.repairs.remove(index);
    let targets = group.targets();
    // Remove the literals the repair consumes, plus similarity literals that
    // mention a replaced variable: after unification the replaced variable
    // stands for a fresh (repaired) value, so similarity facts about its old
    // value are stale. This is what makes conflicting repairs of the same
    // variable mutually exclusive (paper Example 3.3: a dirty title can be
    // unified with only one of its candidate matches per repaired clause).
    c.body.retain(|l| {
        if group.consumes.contains(l) {
            return false;
        }
        if matches!(l, crate::literal::Literal::Similar(_, _)) {
            return !l.variables().iter().any(|v| targets.contains(v));
        }
        true
    });
    let subst = group.substitution();
    c.apply(&subst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;
    use crate::repair::{CondAtom, RepairGroup, RepairOrigin};
    use crate::term::{Term, Var};

    /// Build the clause of paper Example 3.3:
    /// `T(x) ← R(y), x ≈ y, S(z), x ≈ z` with two MD repairs, each unifying
    /// `x` with one of `y`, `z` via a fresh variable.
    fn example_3_3() -> Clause {
        let x = Term::var(0);
        let y = Term::var(1);
        let z = Term::var(2);
        let vx = Term::var(3); // fresh for md0 (x ⇌ y)
        let ux = Term::var(4); // fresh for md1 (x ⇌ z)
        let mut c = Clause::new(Literal::relation("t", vec![x]));
        c.push_unique(Literal::relation("r", vec![y]));
        c.push_unique(Literal::Similar(x, y));
        c.push_unique(Literal::relation("s", vec![z]));
        c.push_unique(Literal::Similar(x, z));
        c.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![CondAtom::Sim(x, y)],
            vec![(Var(0), vx), (Var(1), vx)],
            vec![Literal::Similar(x, y)],
        ));
        c.push_repair(RepairGroup::new(
            RepairOrigin::Md(1),
            vec![CondAtom::Sim(x, z)],
            vec![(Var(0), ux), (Var(2), ux)],
            vec![Literal::Similar(x, z)],
        ));
        c
    }

    #[test]
    fn example_3_3_has_two_repaired_clauses() {
        let c = example_3_3();
        let repaired = repaired_clauses(&c, ExpandLimits::default());
        assert_eq!(repaired.len(), 2, "repaired: {repaired:#?}");
        let mut unified_relations = Vec::new();
        for r in &repaired {
            assert!(r.is_repaired());
            // Exactly one of the two MDs was enforced: the head variable is
            // unified with the argument of exactly one of R or S; the other
            // relation literal becomes disconnected from the head and is
            // dropped by the head-connectedness cleanup.
            let head_var = r.head.args()[0].as_var().unwrap();
            let unified: Vec<&str> = r
                .body
                .iter()
                .filter(|l| l.is_relation() && l.args()[0].as_var() == Some(head_var))
                .map(|l| l.relation_name().unwrap())
                .collect();
            assert_eq!(unified.len(), 1, "clause: {r}");
            unified_relations.push(unified[0].to_string());
        }
        unified_relations.sort();
        assert_eq!(unified_relations, vec!["r".to_string(), "s".to_string()]);
    }

    #[test]
    fn clause_without_repairs_expands_to_itself() {
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        c.push_unique(Literal::relation("r", vec![Term::var(0)]));
        let repaired = repaired_clauses(&c, ExpandLimits::default());
        assert_eq!(repaired.len(), 1);
        assert_eq!(repaired[0].canonical_string(), c.canonical_string());
    }

    #[test]
    fn independent_repairs_produce_a_single_repaired_clause() {
        // Two MD repairs touching disjoint variable sets: order cannot
        // matter, so only one repaired clause results.
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(0), Term::var(2)]));
        c.push_unique(Literal::relation("r", vec![Term::var(1)]));
        c.push_unique(Literal::Similar(Term::var(0), Term::var(1)));
        c.push_unique(Literal::relation("s", vec![Term::var(3)]));
        c.push_unique(Literal::Similar(Term::var(2), Term::var(3)));
        c.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![CondAtom::Sim(Term::var(0), Term::var(1))],
            vec![(Var(0), Term::var(4)), (Var(1), Term::var(4))],
            vec![Literal::Similar(Term::var(0), Term::var(1))],
        ));
        c.push_repair(RepairGroup::new(
            RepairOrigin::Md(1),
            vec![CondAtom::Sim(Term::var(2), Term::var(3))],
            vec![(Var(2), Term::var(5)), (Var(3), Term::var(5))],
            vec![Literal::Similar(Term::var(2), Term::var(3))],
        ));
        let repaired = repaired_clauses(&c, ExpandLimits::default());
        assert_eq!(repaired.len(), 1, "{repaired:#?}");
        assert!(repaired[0]
            .body
            .iter()
            .all(|l| !matches!(l, Literal::Similar(_, _))));
    }

    #[test]
    fn failed_conditions_discard_repairs() {
        // The repair's condition references a similarity literal that is not
        // in the body, so it can never fire.
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        c.push_unique(Literal::relation("r", vec![Term::var(1)]));
        c.push_unique(Literal::Similar(Term::var(0), Term::var(1)));
        c.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![CondAtom::Sim(Term::var(0), Term::var(9))],
            vec![(Var(0), Term::var(5))],
            vec![],
        ));
        let repaired = repaired_clauses(&c, ExpandLimits::default());
        assert_eq!(repaired.len(), 1);
        // Nothing was substituted.
        assert_eq!(repaired[0].head, Literal::relation("t", vec![Term::var(0)]));
    }

    #[test]
    fn limits_bound_the_number_of_results() {
        let c = example_3_3();
        let repaired = repaired_clauses(
            &c,
            ExpandLimits {
                max_repairs: 1,
                max_steps: 1024,
            },
        );
        assert_eq!(repaired.len(), 1);
    }
}
