//! Clause-local variable numbering: the renumbering pass behind the
//! flat-vector substitution.
//!
//! The θ-subsumption matcher binds only variables of the *candidate* clause
//! `C`. When those variables are dense (`0..n`), the substitution can be a
//! flat `Vec<Option<Term>>` indexed by the variable number — no hashing
//! anywhere in the inner loop, and `O(1)` trail unwinding. Clauses in the
//! wild carry arbitrary variable indices (bottom-clause construction leaves
//! gaps behind `retain_head_connected`, renamings shift by +40, …), so
//! [`NumberedClause`] renames a clause's variables to `0..n` **once** — at
//! `PreparedClause::prepare` time in the covering loop — and every later
//! subsumption/generalization call against it reuses the dense form.
//!
//! ## Invariants
//!
//! * The numbering is assigned in **first-appearance order** over the head
//!   arguments, then the body literals in construction order, then the
//!   repair groups (replacements, condition atoms, consumed literals). It is
//!   a pure renaming: body length, literal order and repair-group structure
//!   are preserved exactly (`Clause::apply` is *not* used, because it
//!   deduplicates literals and drops trivial equalities).
//! * A `NumberedClause` is immutable. Any mutation of the underlying clause
//!   (dropping a literal during generalization, applying a repair)
//!   invalidates the numbering; mutate the *original* clause and renumber.
//! * Witness substitutions produced against the dense form are translated
//!   back to the original variable space with [`NumberedClause::to_original`],
//!   so callers never observe renumbered variables.

use std::collections::HashMap;

use crate::clause::Clause;
use crate::literal::Literal;
use crate::repair::{CondAtom, RepairGroup};
use crate::substitution::{FlatSubstitution, Substitution};
use crate::term::{Term, Var};

/// A bijective mapping between a clause's original variables and the dense
/// range `0..n`, recorded as the original variable of each slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarNumbering {
    /// `originals[slot]` is the variable the slot was renumbered from.
    originals: Vec<Var>,
}

impl VarNumbering {
    /// Number of distinct variables in the numbering.
    pub fn len(&self) -> usize {
        self.originals.len()
    }

    /// `true` when the clause had no variables.
    pub fn is_empty(&self) -> bool {
        self.originals.is_empty()
    }

    /// The original variable renumbered to `slot`.
    pub fn original(&self, slot: u32) -> Var {
        self.originals[slot as usize]
    }

    /// Translate a flat substitution over the dense numbering back into a
    /// [`Substitution`] over the original variables.
    pub fn to_original(&self, flat: &FlatSubstitution) -> Substitution {
        flat.iter()
            .map(|(slot, term)| (self.original(slot.0), *term))
            .collect()
    }
}

/// A clause renamed to the dense variable range `0..n`, together with the
/// numbering that undoes the renaming. This is the candidate-side handle the
/// flat-substitution matcher operates on.
#[derive(Debug, Clone, PartialEq)]
pub struct NumberedClause {
    clause: Clause,
    numbering: VarNumbering,
}

impl NumberedClause {
    /// Renumber a clause. The result's body has the same length and order as
    /// the input (pure renaming, no deduplication).
    pub fn new(clause: &Clause) -> Self {
        let mut map: HashMap<Var, u32> = HashMap::new();
        let mut originals: Vec<Var> = Vec::new();
        let mut note = |term: &Term| {
            if let Term::Var(v) = term {
                map.entry(*v).or_insert_with(|| {
                    originals.push(*v);
                    originals.len() as u32 - 1
                });
            }
        };
        let note_literal = |lit: &Literal, note: &mut dyn FnMut(&Term)| {
            for t in lit.args() {
                note(t);
            }
        };
        note_literal(&clause.head, &mut note);
        for l in &clause.body {
            note_literal(l, &mut note);
        }
        for g in &clause.repairs {
            for (v, t) in &g.replacements {
                note(&Term::Var(*v));
                note(t);
            }
            for atom in &g.condition {
                let (a, b) = match atom {
                    CondAtom::Eq(a, b) | CondAtom::Neq(a, b) | CondAtom::Sim(a, b) => (a, b),
                };
                note(a);
                note(b);
            }
            for l in &g.consumes {
                note_literal(l, &mut note);
            }
        }

        let rename = |t: &Term| -> Term {
            match t {
                Term::Var(v) => Term::var(map[v]),
                Term::Const(_) => *t,
            }
        };
        let rename_literal = |l: &Literal| -> Literal {
            match l {
                Literal::Relation { relation, args } => Literal::Relation {
                    relation: *relation,
                    args: args.iter().map(rename).collect(),
                },
                Literal::Similar(a, b) => Literal::Similar(rename(a), rename(b)),
                Literal::Equal(a, b) => Literal::Equal(rename(a), rename(b)),
                Literal::NotEqual(a, b) => Literal::NotEqual(rename(a), rename(b)),
            }
        };
        let renamed = Clause {
            head: rename_literal(&clause.head),
            body: clause.body.iter().map(rename_literal).collect(),
            repairs: clause
                .repairs
                .iter()
                .map(|g| RepairGroup {
                    origin: g.origin,
                    condition: g
                        .condition
                        .iter()
                        .map(|atom| match atom {
                            CondAtom::Eq(a, b) => CondAtom::Eq(rename(a), rename(b)),
                            CondAtom::Neq(a, b) => CondAtom::Neq(rename(a), rename(b)),
                            CondAtom::Sim(a, b) => CondAtom::Sim(rename(a), rename(b)),
                        })
                        .collect(),
                    replacements: g
                        .replacements
                        .iter()
                        .map(|(v, t)| (Var(map[v]), rename(t)))
                        .collect(),
                    consumes: g.consumes.iter().map(rename_literal).collect(),
                })
                .collect(),
        };
        NumberedClause {
            clause: renamed,
            numbering: VarNumbering { originals },
        }
    }

    /// The renumbered clause (variables are exactly `0..var_count()`).
    pub fn clause(&self) -> &Clause {
        &self.clause
    }

    /// Number of distinct variables in the clause.
    pub fn var_count(&self) -> usize {
        self.numbering.len()
    }

    /// The numbering mapping slots back to original variables.
    pub fn numbering(&self) -> &VarNumbering {
        &self.numbering
    }

    /// A fresh (all-unbound) flat substitution sized for this clause.
    pub fn fresh_substitution(&self) -> FlatSubstitution {
        FlatSubstitution::new(self.var_count())
    }

    /// Translate a flat witness over this clause's numbering back to the
    /// original variable space.
    pub fn to_original(&self, flat: &FlatSubstitution) -> Substitution {
        self.numbering.to_original(flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::RepairOrigin;

    fn gappy_clause() -> Clause {
        // Variables 40, 12, 7, 99 — deliberately sparse and out of order.
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(40)]));
        c.push_unique(Literal::relation("r", vec![Term::var(12), Term::var(40)]));
        c.push_unique(Literal::Similar(Term::var(40), Term::var(7)));
        c.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![CondAtom::Sim(Term::var(40), Term::var(7))],
            vec![(Var(40), Term::var(99)), (Var(7), Term::var(99))],
            vec![Literal::Similar(Term::var(40), Term::var(7))],
        ));
        c
    }

    #[test]
    fn renumbering_is_dense_and_first_appearance_ordered() {
        let c = gappy_clause();
        let n = NumberedClause::new(&c);
        assert_eq!(n.var_count(), 4);
        // First appearance: v40 (head), v12 (body), v7 (similar), v99 (repair).
        assert_eq!(n.numbering().original(0), Var(40));
        assert_eq!(n.numbering().original(1), Var(12));
        assert_eq!(n.numbering().original(2), Var(7));
        assert_eq!(n.numbering().original(3), Var(99));
        let vars = n.clause().variables();
        assert_eq!(
            vars.iter().map(|v| v.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn renumbering_preserves_body_length_and_order() {
        let c = gappy_clause();
        let n = NumberedClause::new(&c);
        assert_eq!(n.clause().body.len(), c.body.len());
        for (orig, renamed) in c.body.iter().zip(&n.clause().body) {
            assert_eq!(orig.relation_id(), renamed.relation_id());
            assert_eq!(orig.args().len(), renamed.args().len());
        }
        assert_eq!(n.clause().repairs.len(), c.repairs.len());
    }

    #[test]
    fn renumbering_is_a_logical_renaming() {
        let c = gappy_clause();
        let n = NumberedClause::new(&c);
        assert_eq!(c.canonical_string(), n.clause().canonical_string());
    }

    #[test]
    fn witness_translation_round_trips() {
        let c = gappy_clause();
        let n = NumberedClause::new(&c);
        let mut flat = n.fresh_substitution();
        flat.bind(Var(0), Term::constant("a"));
        flat.bind(Var(2), Term::var(500));
        let original = n.to_original(&flat);
        assert_eq!(original.get(Var(40)), Some(&Term::constant("a")));
        assert_eq!(original.get(Var(7)), Some(&Term::var(500)));
        assert_eq!(original.len(), 2);
    }
}
