//! Terms: variables and constants.

use std::fmt;

use dlearn_relstore::Value;

/// A logic variable, identified by an index that is unique within a clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A term: either a variable or a constant database value.
///
/// `Copy` since the interning refactor: constants carry an interned
/// [`Value`], so terms are 16 bytes and never allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(index: u32) -> Self {
        Term::Var(Var(index))
    }

    /// Shorthand for a constant term.
    pub fn constant(value: impl Into<Value>) -> Self {
        Term::Const(value.into())
    }

    /// The variable inside, if this term is a variable.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if this term is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(v) => Some(v),
        }
    }

    /// `true` when the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// `true` when the term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{}", c.render()),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessors() {
        let v = Term::var(3);
        assert_eq!(v.as_var(), Some(Var(3)));
        assert!(v.is_var());
        assert!(!v.is_const());

        let c = Term::constant("comedy");
        assert_eq!(c.as_const(), Some(&Value::str("comedy")));
        assert!(c.is_const());
    }

    #[test]
    fn display_renders_vars_and_constants() {
        assert_eq!(Term::var(0).to_string(), "v0");
        assert_eq!(Term::constant("comedy").to_string(), "'comedy'");
        assert_eq!(Term::constant(1977i64).to_string(), "1977");
    }

    #[test]
    fn terms_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Term::var(2));
        s.insert(Term::var(1));
        s.insert(Term::constant(5i64));
        assert_eq!(s.len(), 3);
    }
}
