//! Horn clauses with repair groups, and Horn definitions.

use std::collections::BTreeSet;
use std::fmt;

use crate::literal::Literal;
use crate::repair::RepairGroup;
use crate::substitution::Substitution;
use crate::term::{Term, Var};

/// A Horn clause `head ← body` extended with repair groups.
///
/// The body holds relation, similarity, equality and inequality literals in
/// construction order (which doubles as the total order used by the
/// generalization algorithm); `repairs` holds the clause's repair literals
/// grouped by repair operation (see [`RepairGroup`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// Head literal (always a relation literal).
    pub head: Literal,
    /// Body literals in construction order.
    pub body: Vec<Literal>,
    /// Repair groups attached to the clause.
    pub repairs: Vec<RepairGroup>,
}

impl Clause {
    /// Create a clause with an empty body.
    pub fn new(head: Literal) -> Self {
        debug_assert!(head.is_relation(), "clause heads must be relation literals");
        Clause {
            head,
            body: Vec::new(),
            repairs: Vec::new(),
        }
    }

    /// Create a clause with the given body.
    pub fn with_body(head: Literal, body: Vec<Literal>) -> Self {
        let mut c = Clause::new(head);
        c.body = body;
        c
    }

    /// `true` when the clause has no repair groups (a *repaired clause* in
    /// the paper's terminology).
    pub fn is_repaired(&self) -> bool {
        self.repairs.is_empty()
    }

    /// All variables appearing in the head, body or repair groups.
    pub fn variables(&self) -> BTreeSet<Var> {
        let mut vars = self.head.variables();
        for l in &self.body {
            vars.extend(l.variables());
        }
        for g in &self.repairs {
            vars.extend(g.variables());
        }
        vars
    }

    /// The largest variable index used in the clause, if any.
    pub fn max_var_index(&self) -> Option<u32> {
        self.variables().iter().map(|v| v.0).max()
    }

    /// Number of body literals.
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Add a body literal if not already present; returns `true` when added.
    pub fn push_unique(&mut self, literal: Literal) -> bool {
        if self.body.contains(&literal) {
            false
        } else {
            self.body.push(literal);
            true
        }
    }

    /// Add a repair group.
    pub fn push_repair(&mut self, group: RepairGroup) {
        self.repairs.push(group);
    }

    /// Apply a substitution to head, body and repair groups, removing
    /// trivially true equality literals (`x = x`) that the substitution may
    /// create and deduplicating body literals.
    pub fn apply(&self, subst: &Substitution) -> Clause {
        let head = self.head.apply(subst);
        let mut body: Vec<Literal> = Vec::with_capacity(self.body.len());
        for l in &self.body {
            let nl = l.apply(subst);
            if let Literal::Equal(a, b) = &nl {
                if a == b {
                    continue;
                }
            }
            if !body.contains(&nl) {
                body.push(nl);
            }
        }
        let repairs = self.repairs.iter().map(|g| g.apply(subst)).collect();
        Clause {
            head,
            body,
            repairs,
        }
    }

    /// Keep only head-connected body literals (Section 2.1: a literal is
    /// head-connected when it shares a variable with the head or with another
    /// head-connected literal), then drop repair groups that are no longer
    /// connected to any remaining relation literal or the head.
    pub fn retain_head_connected(&mut self) {
        let mut connected: BTreeSet<Var> = self.head.variables();
        let mut kept = vec![false; self.body.len()];
        // Fixpoint over body literals.
        loop {
            let mut changed = false;
            for (i, l) in self.body.iter().enumerate() {
                if kept[i] {
                    continue;
                }
                let vars = l.variables();
                if vars.is_empty() {
                    // Fully ground literal: keep (it is trivially connected
                    // through constants that came from the example walk).
                    kept[i] = true;
                    changed = true;
                    continue;
                }
                if vars.iter().any(|v| connected.contains(v)) {
                    kept[i] = true;
                    connected.extend(vars);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut idx = 0;
        self.body.retain(|_| {
            let keep = kept[idx];
            idx += 1;
            keep
        });
        // Section 3.2 cleanup: similarity/equality/inequality literals whose
        // variables no longer appear in the head or in any schema relation
        // literal constrain nothing and are dropped.
        let mut schema_vars: BTreeSet<Var> = self.head.variables();
        for l in &self.body {
            if l.is_relation() {
                schema_vars.extend(l.variables());
            }
        }
        self.body
            .retain(|l| l.is_relation() || l.variables().iter().all(|v| schema_vars.contains(v)));
        // Repair groups must stay connected to the surviving literals.
        let mut live_vars: BTreeSet<Var> = self.head.variables();
        for l in &self.body {
            live_vars.extend(l.variables());
        }
        // A repair survives only while every variable it replaces is still in
        // the clause: an MD repair that lost one side of its match (because
        // the literal carrying it was dropped) can no longer unify anything.
        self.repairs
            .retain(|g| g.targets().iter().all(|v| live_vars.contains(v)));
    }

    /// Remove the body literal at `index` along with repair groups whose only
    /// connection to the clause was through that literal, then re-establish
    /// head-connectedness. Used by generalization to drop blocking literals.
    pub fn remove_body_literal(&mut self, index: usize) {
        if index >= self.body.len() {
            return;
        }
        self.body.remove(index);
        self.retain_head_connected();
    }

    /// A canonical string form: variables renamed by first appearance and the
    /// body sorted, used to deduplicate logically identical repaired clauses.
    pub fn canonical_string(&self) -> String {
        let mut clause = self.clone();
        for _ in 0..2 {
            let renaming = clause.first_appearance_renaming();
            clause = clause.apply(&renaming);
            clause.body.sort_by_key(|l| l.to_string());
        }
        let mut s = clause.head.to_string();
        s.push_str(" <- ");
        s.push_str(
            &clause
                .body
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        );
        for g in &clause.repairs {
            s.push_str(" & ");
            s.push_str(&g.render());
        }
        s
    }

    fn first_appearance_renaming(&self) -> Substitution {
        let mut renaming = Substitution::new();
        let mut next = 0u32;
        let visit = |term: &Term, renaming: &mut Substitution, next: &mut u32| {
            if let Some(v) = term.as_var() {
                if renaming.get(v).is_none() {
                    renaming.bind(v, Term::var(*next));
                    *next += 1;
                }
            }
        };
        for t in self.head.args() {
            visit(t, &mut renaming, &mut next);
        }
        for l in &self.body {
            for t in l.args() {
                visit(t, &mut renaming, &mut next);
            }
        }
        for g in &self.repairs {
            for (v, t) in &g.replacements {
                visit(&Term::Var(*v), &mut renaming, &mut next);
                visit(t, &mut renaming, &mut next);
            }
        }
        renaming
    }

    /// Relation literals of the body (in order) with their body positions.
    pub fn relation_literals(&self) -> impl Iterator<Item = (usize, &Literal)> {
        self.body
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_relation())
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ← ", self.head)?;
        let mut parts: Vec<String> = self.body.iter().map(|l| l.to_string()).collect();
        parts.extend(self.repairs.iter().map(|g| g.render()));
        write!(f, "{}", parts.join(", "))
    }
}

/// A Horn definition: a set of clauses sharing the same head relation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Definition {
    clauses: Vec<Clause>,
}

impl Definition {
    /// Empty definition.
    pub fn new() -> Self {
        Definition::default()
    }

    /// Build a definition from clauses.
    pub fn from_clauses(clauses: Vec<Clause>) -> Self {
        Definition { clauses }
    }

    /// Add a clause.
    pub fn push(&mut self, clause: Clause) {
        self.clauses.push(clause);
    }

    /// The clauses of the definition.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// `true` when the definition has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Iterate over clauses.
    pub fn iter(&self) -> impl Iterator<Item = &Clause> {
        self.clauses.iter()
    }
}

impl fmt::Display for Definition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::{CondAtom, RepairOrigin};

    fn sample_clause() -> Clause {
        // target(v0) <- movies(v1, v2, v3), mov2genres(v1, 'comedy'), v0 ≈ v2
        let mut c = Clause::new(Literal::relation("target", vec![Term::var(0)]));
        c.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(2), Term::var(3)],
        ));
        c.push_unique(Literal::relation(
            "mov2genres",
            vec![Term::var(1), Term::constant("comedy")],
        ));
        c.push_unique(Literal::Similar(Term::var(0), Term::var(2)));
        c
    }

    #[test]
    fn push_unique_deduplicates() {
        let mut c = sample_clause();
        let before = c.body_len();
        assert!(!c.push_unique(Literal::Similar(Term::var(0), Term::var(2))));
        assert_eq!(c.body_len(), before);
    }

    #[test]
    fn variables_and_max_index() {
        let c = sample_clause();
        assert_eq!(c.variables().len(), 4);
        assert_eq!(c.max_var_index(), Some(3));
    }

    #[test]
    fn apply_removes_trivial_equalities_and_duplicates() {
        let mut c = sample_clause();
        c.push_unique(Literal::Equal(Term::var(4), Term::var(5)));
        let mut s = Substitution::new();
        s.bind(Var(4), Term::var(6));
        s.bind(Var(5), Term::var(6));
        let c2 = c.apply(&s);
        assert!(!c2
            .body
            .iter()
            .any(|l| matches!(l, Literal::Equal(a, b) if a == b)));
    }

    #[test]
    fn retain_head_connected_drops_disconnected_literals() {
        let mut c = sample_clause();
        c.push_unique(Literal::relation("orphan", vec![Term::var(9)]));
        c.retain_head_connected();
        assert!(!c.body.iter().any(|l| l.relation_name() == Some("orphan")));
        // The connected chain target -> similar -> movies -> genres survives.
        assert_eq!(c.body.len(), 3);
    }

    #[test]
    fn removing_a_literal_can_disconnect_downstream_literals() {
        let mut c = sample_clause();
        // Removing the similarity literal (index 2) disconnects movies and genres.
        c.remove_body_literal(2);
        assert!(c.body.is_empty(), "body should be empty, got {c}");
    }

    #[test]
    fn repair_groups_follow_their_variables() {
        let mut c = sample_clause();
        c.push_repair(RepairGroup::new(
            RepairOrigin::Md(0),
            vec![CondAtom::Sim(Term::var(0), Term::var(2))],
            vec![(Var(0), Term::var(7)), (Var(2), Term::var(7))],
            vec![Literal::Similar(Term::var(0), Term::var(2))],
        ));
        let mut dropped = c.clone();
        dropped.remove_body_literal(2);
        assert!(
            dropped.repairs.is_empty(),
            "repair should drop with its literals"
        );
        c.retain_head_connected();
        assert_eq!(c.repairs.len(), 1);
    }

    #[test]
    fn canonical_string_is_stable_under_variable_renaming() {
        let c = sample_clause();
        let mut renaming = Substitution::new();
        renaming.bind(Var(0), Term::var(10));
        renaming.bind(Var(1), Term::var(11));
        renaming.bind(Var(2), Term::var(12));
        renaming.bind(Var(3), Term::var(13));
        let renamed = c.apply(&renaming);
        assert_eq!(c.canonical_string(), renamed.canonical_string());
    }

    #[test]
    fn definition_display_lists_clauses() {
        let mut d = Definition::new();
        d.push(sample_clause());
        d.push(sample_clause());
        assert_eq!(d.len(), 2);
        let text = d.to_string();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("target(v0)"));
    }

    #[test]
    fn ground_literals_survive_head_connected_cleanup() {
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        c.push_unique(Literal::relation("facts", vec![Term::constant("k")]));
        c.retain_head_connected();
        assert_eq!(c.body.len(), 1);
    }
}
