//! Repair groups: the clause-level representation of repair literals.
//!
//! Section 3.2 of the paper adds *repair literals* `V_c(x, v_x)` to clauses:
//! each represents replacing `x` with `v_x` if condition `c` holds, and the
//! restriction literals tie replacement variables of the same repair
//! operation together. A clause with repair literals is a compact
//! representation of its *repaired clauses*, obtained by iteratively applying
//! (or discarding, when the condition fails) the repair literals.
//!
//! We group the repair literals that belong to one repair operation — e.g.
//! the pair `V_{x≈t}(x, v_x), V_{x≈t}(t, v_t)` together with the restriction
//! literal `v_x = v_t` introduced for one MD match — into a [`RepairGroup`]
//! that is applied atomically: a substitution over the clause plus the
//! removal of the induced literals that the repair consumes. This keeps the
//! semantics of Sections 3.2/4.1 while making application and subsumption
//! (Definition 4.4) straightforward to implement.

use std::collections::BTreeSet;
use std::fmt;

use crate::literal::Literal;
use crate::substitution::Substitution;
use crate::term::{Term, Var};

/// Which constraint a repair group originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RepairOrigin {
    /// Enforcing the `i`-th matching dependency of the task.
    Md(usize),
    /// Repairing a violation of the `i`-th conditional functional dependency.
    Cfd(usize),
}

impl RepairOrigin {
    /// `true` for MD-originated repairs.
    pub fn is_md(&self) -> bool {
        matches!(self, RepairOrigin::Md(_))
    }

    /// `true` for CFD-originated repairs.
    pub fn is_cfd(&self) -> bool {
        matches!(self, RepairOrigin::Cfd(_))
    }
}

impl fmt::Display for RepairOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairOrigin::Md(i) => write!(f, "md{i}"),
            RepairOrigin::Cfd(i) => write!(f, "cfd{i}"),
        }
    }
}

/// One atom of a repair condition (`c` in `V_c(x, v_x)`): a conjunction of
/// these is evaluated against the clause body when the repair is applied.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CondAtom {
    /// The two terms must be equal (identical, or related by an equality
    /// literal in the body).
    Eq(Term, Term),
    /// The two terms must be distinct (different constants, or variables with
    /// no equality literal between them).
    Neq(Term, Term),
    /// The two terms must be similar (related by a similarity literal, or
    /// identical).
    Sim(Term, Term),
}

impl CondAtom {
    /// Apply a substitution to both sides of the atom.
    pub fn apply(&self, subst: &Substitution) -> CondAtom {
        match self {
            CondAtom::Eq(a, b) => CondAtom::Eq(subst.apply(a), subst.apply(b)),
            CondAtom::Neq(a, b) => CondAtom::Neq(subst.apply(a), subst.apply(b)),
            CondAtom::Sim(a, b) => CondAtom::Sim(subst.apply(a), subst.apply(b)),
        }
    }

    /// Variables mentioned by the atom.
    pub fn variables(&self) -> BTreeSet<Var> {
        let (a, b) = match self {
            CondAtom::Eq(a, b) | CondAtom::Neq(a, b) | CondAtom::Sim(a, b) => (a, b),
        };
        [a, b].into_iter().filter_map(|t| t.as_var()).collect()
    }

    /// Evaluate the atom against a clause body.
    pub fn holds(&self, body: &[Literal]) -> bool {
        match self {
            CondAtom::Eq(a, b) => {
                a == b
                    || body.iter().any(|l| {
                        matches!(l, Literal::Equal(x, y)
                            if (x == a && y == b) || (x == b && y == a))
                    })
            }
            CondAtom::Neq(a, b) => {
                if a == b {
                    return false;
                }
                // Distinct constants are unequal; distinct variables are
                // treated as unequal unless an equality literal unifies them
                // (Section 4.1: inequality conditions "return true if the
                // variables are distinct and there is no equality literal
                // between them").
                !body.iter().any(|l| {
                    matches!(l, Literal::Equal(x, y)
                        if (x == a && y == b) || (x == b && y == a))
                })
            }
            CondAtom::Sim(a, b) => {
                a == b
                    || body.iter().any(|l| {
                        matches!(l, Literal::Similar(x, y)
                            if (x == a && y == b) || (x == b && y == a))
                    })
            }
        }
    }
}

impl fmt::Display for CondAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondAtom::Eq(a, b) => write!(f, "{a} = {b}"),
            CondAtom::Neq(a, b) => write!(f, "{a} ≠ {b}"),
            CondAtom::Sim(a, b) => write!(f, "{a} ≈ {b}"),
        }
    }
}

/// A repair group: the unit in which repair literals are applied to a clause.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RepairGroup {
    /// The constraint that induced this repair.
    pub origin: RepairOrigin,
    /// The condition `c` of the repair literals (a conjunction).
    pub condition: Vec<CondAtom>,
    /// The replacements performed when the repair fires: each `(x, v_x)`
    /// pair corresponds to one repair literal `V_c(x, v_x)`.
    pub replacements: Vec<(Var, Term)>,
    /// Induced / restriction literals that are consumed (removed from the
    /// body) when the repair fires, e.g. the similarity literal an MD match
    /// was based on.
    pub consumes: Vec<Literal>,
}

impl RepairGroup {
    /// Create a repair group.
    pub fn new(
        origin: RepairOrigin,
        condition: Vec<CondAtom>,
        replacements: Vec<(Var, Term)>,
        consumes: Vec<Literal>,
    ) -> Self {
        RepairGroup {
            origin,
            condition,
            replacements,
            consumes,
        }
    }

    /// The substitution performed by this repair.
    pub fn substitution(&self) -> Substitution {
        self.replacements.iter().map(|(v, t)| (*v, *t)).collect()
    }

    /// Variables mentioned anywhere in the group (replaced variables,
    /// replacement terms and condition variables).
    pub fn variables(&self) -> BTreeSet<Var> {
        let mut vars: BTreeSet<Var> = self.replacements.iter().map(|(v, _)| *v).collect();
        for (_, t) in &self.replacements {
            if let Some(v) = t.as_var() {
                vars.insert(v);
            }
        }
        for atom in &self.condition {
            vars.extend(atom.variables());
        }
        vars
    }

    /// Variables that the repair replaces (the `x` of each `V_c(x, v_x)`).
    pub fn targets(&self) -> BTreeSet<Var> {
        self.replacements.iter().map(|(v, _)| *v).collect()
    }

    /// Evaluate the group's condition against a clause body.
    pub fn condition_holds(&self, body: &[Literal]) -> bool {
        self.condition.iter().all(|atom| atom.holds(body))
    }

    /// Apply a substitution to every term in the group (used when another
    /// repair fires first and renames variables).
    pub fn apply(&self, subst: &Substitution) -> RepairGroup {
        RepairGroup {
            origin: self.origin,
            condition: self.condition.iter().map(|a| a.apply(subst)).collect(),
            replacements: self
                .replacements
                .iter()
                .map(|(v, t)| {
                    // Replaced variables themselves may have been renamed.
                    let new_target = match subst.apply(&Term::Var(*v)) {
                        Term::Var(nv) => nv,
                        Term::Const(_) => *v,
                    };
                    (new_target, subst.apply(t))
                })
                .collect(),
            consumes: self.consumes.iter().map(|l| l.apply(subst)).collect(),
        }
    }

    /// `true` when this repair is *connected to* the given literal in the
    /// sense of Definition 4.4: the repair mentions a variable of the literal.
    pub fn connected_to(&self, literal: &Literal) -> bool {
        let lit_vars = literal.variables();
        if lit_vars.is_empty() {
            return false;
        }
        self.variables().iter().any(|v| lit_vars.contains(v))
    }

    /// Render the group in the paper's repair-literal notation.
    pub fn render(&self) -> String {
        let cond = self
            .condition
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" ∧ ");
        let lits = self
            .replacements
            .iter()
            .map(|(v, t)| format!("V[{}]({}, {})", self.origin, Term::Var(*v), t))
            .collect::<Vec<_>>()
            .join(", ");
        if cond.is_empty() {
            lits
        } else {
            format!("{lits} | {cond}")
        }
    }
}

impl fmt::Display for RepairGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn md_group() -> RepairGroup {
        // V_{v0 ≈ v1}(v0, v2), V_{v0 ≈ v1}(v1, v2): unify v0 and v1 into v2.
        RepairGroup::new(
            RepairOrigin::Md(0),
            vec![CondAtom::Sim(Term::var(0), Term::var(1))],
            vec![(Var(0), Term::var(2)), (Var(1), Term::var(2))],
            vec![Literal::Similar(Term::var(0), Term::var(1))],
        )
    }

    #[test]
    fn condition_evaluation_over_body() {
        let body = vec![
            Literal::Similar(Term::var(0), Term::var(1)),
            Literal::Equal(Term::var(3), Term::var(4)),
        ];
        assert!(CondAtom::Sim(Term::var(0), Term::var(1)).holds(&body));
        assert!(CondAtom::Sim(Term::var(1), Term::var(0)).holds(&body));
        assert!(!CondAtom::Sim(Term::var(0), Term::var(2)).holds(&body));
        assert!(CondAtom::Eq(Term::var(3), Term::var(4)).holds(&body));
        assert!(CondAtom::Eq(Term::var(7), Term::var(7)).holds(&body));
        assert!(!CondAtom::Eq(Term::var(0), Term::var(1)).holds(&body));
        assert!(CondAtom::Neq(Term::var(0), Term::var(1)).holds(&body));
        assert!(!CondAtom::Neq(Term::var(3), Term::var(4)).holds(&body));
        assert!(!CondAtom::Neq(Term::var(5), Term::var(5)).holds(&body));
    }

    #[test]
    fn group_condition_and_targets() {
        let g = md_group();
        let body = vec![Literal::Similar(Term::var(0), Term::var(1))];
        assert!(g.condition_holds(&body));
        assert!(!g.condition_holds(&[]));
        assert_eq!(g.targets().len(), 2);
        assert!(g.variables().contains(&Var(2)));
    }

    #[test]
    fn apply_renames_all_parts() {
        let g = md_group();
        let mut s = Substitution::new();
        s.bind(Var(0), Term::var(9));
        let g2 = g.apply(&s);
        assert_eq!(g2.replacements[0].0, Var(9));
        assert_eq!(g2.condition[0], CondAtom::Sim(Term::var(9), Term::var(1)));
        assert_eq!(g2.consumes[0], Literal::Similar(Term::var(9), Term::var(1)));
    }

    #[test]
    fn connectivity_follows_shared_variables() {
        let g = md_group();
        assert!(g.connected_to(&Literal::relation("r", vec![Term::var(0)])));
        assert!(!g.connected_to(&Literal::relation("r", vec![Term::var(7)])));
    }

    #[test]
    fn render_uses_paper_notation() {
        let g = md_group();
        let s = g.render();
        assert!(s.contains("V[md0](v0, v2)"), "{s}");
        assert!(s.contains("≈"), "{s}");
    }
}
