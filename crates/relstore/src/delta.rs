//! Streaming delta transactions over a [`Database`].
//!
//! A [`DeltaTx`] is an ordered list of tuple inserts and deletes. Applying
//! it yields a [`ChangeSet`]: the exact set of `(relation, attribute,
//! value)` triples whose equality-selection result changed, which is what
//! the incremental maintenance layers upstream (similarity indexes, ground
//! bottom clauses, serving caches) consult to decide what must be repaired
//! and what can be reused verbatim.
//!
//! The change-set granularity is *value-level*, not relation-level: a
//! bottom-clause walk probes every relation each round, so "some tuple of
//! `R` changed" would invalidate everything. `select_eq(attr, v)` changes
//! if and only if a tuple with `t[attr] == v` was inserted or deleted, and
//! that is exactly what [`ChangeSet::affects`] answers.

use crate::error::StoreError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::intern::RelId;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Database;

/// One tuple-level mutation inside a [`DeltaTx`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Insert `tuple` into `relation`.
    Insert {
        /// Target relation.
        relation: RelId,
        /// Tuple to append.
        tuple: Tuple,
    },
    /// Delete the first occurrence of `tuple` from `relation`.
    Delete {
        /// Target relation.
        relation: RelId,
        /// Tuple to remove.
        tuple: Tuple,
    },
}

impl DeltaOp {
    /// The relation this op touches.
    pub fn relation(&self) -> RelId {
        match self {
            DeltaOp::Insert { relation, .. } | DeltaOp::Delete { relation, .. } => *relation,
        }
    }

    /// The tuple this op carries.
    pub fn tuple(&self) -> &Tuple {
        match self {
            DeltaOp::Insert { tuple, .. } | DeltaOp::Delete { tuple, .. } => tuple,
        }
    }
}

/// An ordered transaction of tuple inserts and deletes.
///
/// Ops apply in order, so a tuple inserted earlier in the same transaction
/// may be deleted later in it. Emptiness is allowed (a no-op transaction).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaTx {
    ops: Vec<DeltaOp>,
}

impl DeltaTx {
    /// An empty transaction.
    pub fn new() -> Self {
        DeltaTx::default()
    }

    /// Append an insert (builder style).
    pub fn insert(mut self, relation: impl Into<RelId>, tuple: Tuple) -> Self {
        self.ops.push(DeltaOp::Insert {
            relation: relation.into(),
            tuple,
        });
        self
    }

    /// Append a delete (builder style).
    pub fn delete(mut self, relation: impl Into<RelId>, tuple: Tuple) -> Self {
        self.ops.push(DeltaOp::Delete {
            relation: relation.into(),
            tuple,
        });
        self
    }

    /// Append an op in place.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the transaction carries no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The exact read-visible footprint of an applied [`DeltaTx`].
///
/// For every applied op on relation `R` with tuple `t`, the triples
/// `(R, i, t[i])` for each attribute `i` are recorded — precisely the
/// equality selections whose results can have changed. Anything not in the
/// set is untouched: `select_eq` on it returns the same tuples, in the same
/// relative order (deletion renumbers ids monotonically).
#[derive(Debug, Clone, Default)]
pub struct ChangeSet {
    touched: FxHashMap<RelId, FxHashSet<(usize, Value)>>,
    /// Number of tuples inserted by the transaction.
    pub inserted: usize,
    /// Number of tuples deleted by the transaction.
    pub deleted: usize,
}

impl ChangeSet {
    /// Record one applied op's footprint.
    pub fn record(&mut self, relation: RelId, tuple: &Tuple) {
        let touched = self.touched.entry(relation).or_default();
        for (i, v) in tuple.values().iter().enumerate() {
            touched.insert((i, *v));
        }
    }

    /// Did the transaction change the result of `select_eq(attribute,
    /// value)` on `relation`?
    pub fn affects(&self, relation: RelId, attribute: usize, value: &Value) -> bool {
        self.touched
            .get(&relation)
            .is_some_and(|t| t.contains(&(attribute, *value)))
    }

    /// Relations with at least one touched column value, in name order.
    pub fn touched_relations(&self) -> Vec<RelId> {
        let mut ids: Vec<RelId> = self.touched.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The `(attribute, value)` pairs touched in `relation` (unordered).
    pub fn touched_values(&self, relation: RelId) -> impl Iterator<Item = (usize, Value)> + '_ {
        self.touched
            .get(&relation)
            .into_iter()
            .flat_map(|t| t.iter().copied())
    }

    /// `true` when nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }
}

impl Database {
    /// Apply a delta transaction op by op, returning the [`ChangeSet`] of
    /// touched `(relation, attribute, value)` triples.
    ///
    /// Ops are validated as they apply (unknown relation, arity or type
    /// mismatch, delete of an absent tuple), so an error can leave the
    /// database partially modified. Callers needing all-or-nothing
    /// semantics apply the transaction to a clone and commit by swap — the
    /// engine's `apply_delta` does exactly that.
    pub fn apply_delta(&mut self, tx: &DeltaTx) -> Result<ChangeSet, StoreError> {
        let mut changes = ChangeSet::default();
        for op in tx.ops() {
            let rel_id = op.relation();
            let rel = self
                .relation_mut(rel_id)
                .ok_or_else(|| StoreError::UnknownRelation(rel_id.as_str().to_string()))?;
            match op {
                DeltaOp::Insert { tuple, .. } => {
                    rel.insert(tuple.clone())?;
                    changes.inserted += 1;
                }
                DeltaOp::Delete { tuple, .. } => {
                    rel.delete(tuple)?;
                    changes.deleted += 1;
                }
            }
            changes.record(rel_id, op.tuple());
        }
        Ok(changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, RelationSchema};
    use crate::tuple::tuple;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "movies",
            vec![Attribute::int("id"), Attribute::str("title")],
        ))
        .unwrap();
        db
    }

    #[test]
    fn apply_inserts_and_deletes_in_order() {
        let mut db = db();
        db.insert("movies", tuple(vec![Value::int(1), Value::str("a")]))
            .unwrap();
        let tx = DeltaTx::new()
            .insert("movies", tuple(vec![Value::int(2), Value::str("b")]))
            .delete("movies", tuple(vec![Value::int(1), Value::str("a")]));
        let changes = db.apply_delta(&tx).unwrap();
        assert_eq!((changes.inserted, changes.deleted), (1, 1));
        let rel = db.relation("movies").unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&tuple(vec![Value::int(2), Value::str("b")])));
        let id = RelId::intern("movies");
        assert!(changes.affects(id, 0, &Value::int(1)));
        assert!(changes.affects(id, 1, &Value::str("b")));
        assert!(!changes.affects(id, 1, &Value::str("zzz")));
        assert!(!changes.affects(RelId::intern("other"), 0, &Value::int(1)));
    }

    #[test]
    fn intra_transaction_insert_then_delete_nets_to_zero_tuples() {
        let mut db = db();
        let t = tuple(vec![Value::int(9), Value::str("ghost")]);
        let tx = DeltaTx::new()
            .insert("movies", t.clone())
            .delete("movies", t.clone());
        let changes = db.apply_delta(&tx).unwrap();
        assert_eq!(db.relation("movies").unwrap().len(), 0);
        // The footprint still records the value: intermediate states were
        // observable to nothing, but the triple is touched conservatively.
        assert!(changes.affects(RelId::intern("movies"), 1, &Value::str("ghost")));
    }

    #[test]
    fn delete_removes_first_occurrence_and_renumbers() {
        let mut db = db();
        for (i, title) in ["a", "b", "a"].iter().enumerate() {
            db.insert(
                "movies",
                tuple(vec![Value::int(i as i64), Value::str(*title)]),
            )
            .unwrap();
        }
        let rel = db.relation_mut("movies").unwrap();
        let id = rel
            .delete(&tuple(vec![Value::int(0), Value::str("a")]))
            .unwrap();
        assert_eq!(id, 0);
        assert_eq!(rel.len(), 2);
        // Ids shifted down; indexes stay consistent and sorted.
        assert_eq!(rel.select_eq(1, &Value::str("b")), &[0]);
        assert_eq!(rel.select_eq(1, &Value::str("a")), &[1]);
        assert_eq!(rel.tuple(1).unwrap().value(0), Some(&Value::int(2)));
    }

    #[test]
    fn delete_of_absent_tuple_is_typed() {
        let mut db = db();
        let err = db
            .apply_delta(
                &DeltaTx::new().delete("movies", tuple(vec![Value::int(404), Value::str("nope")])),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::TupleNotFound { .. }), "{err:?}");
        assert!(err.to_string().contains("movies"), "{err}");
    }

    #[test]
    fn unknown_relation_and_arity_are_typed() {
        let mut db = db();
        let err = db
            .apply_delta(&DeltaTx::new().insert("ghost", tuple(vec![Value::int(1)])))
            .unwrap_err();
        assert!(matches!(err, StoreError::UnknownRelation(_)), "{err:?}");
        let err = db
            .apply_delta(&DeltaTx::new().insert("movies", tuple(vec![Value::int(1)])))
            .unwrap_err();
        assert!(matches!(err, StoreError::ArityMismatch { .. }), "{err:?}");
    }
}
