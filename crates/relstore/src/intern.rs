//! Process-wide string interning: copy-type [`Sym`] / [`RelId`] handles.
//!
//! Every relation name, attribute name and string constant in the system is
//! interned exactly once and referred to by a copyable [`Sym`] handle.
//! Equality and hashing of symbols are pointer operations, which is what
//! removes string hashing and string comparison from the θ-subsumption hot
//! path (the matcher compares `Sym`s, and `GroundClause` indexes literals by
//! `(RelId, arity)` and per-position values).
//!
//! Design notes:
//!
//! * The interner is a process-global dedup table **sharded by string hash**
//!   (16 shards, each behind its own `RwLock`), taken **only when
//!   interning**. Interned strings are leaked (`Box::leak`) and the handle
//!   *is* the `&'static str`, so resolution ([`Sym::as_str`]), equality,
//!   hashing and ordering never touch any lock — coverage worker threads
//!   comparing and sorting symbols share nothing. Sharding keeps
//!   high-parallelism ingest and scoring from serializing on one lock:
//!   threads interning different strings almost always hit different
//!   shards.
//! * Because each distinct string is leaked exactly once, pointer equality
//!   coincides with content equality; `Eq`/`Hash` use the pointer (O(1)),
//!   while `Ord` compares the *resolved strings*, so every `BTreeMap`/sort
//!   that used to be keyed by `String` keeps its deterministic
//!   lexicographic iteration order after the migration.
//! * Symbols live for the process lifetime — the right trade-off for a
//!   learner whose vocabulary (schema names plus attribute values) is
//!   bounded by its input databases.
//! * [`RelId`] is a newtype over [`Sym`] for relation names, so a relation
//!   id cannot be confused with an attribute or constant symbol.

use std::collections::HashSet;
use std::fmt;
use std::hash::{BuildHasher, Hash, Hasher, RandomState};
use std::sync::{OnceLock, RwLock};

/// Number of dedup-table shards. A power of two so the shard index is a
/// mask of the string hash.
const SHARDS: usize = 16;

/// The process-wide string interner backing [`Sym`] and [`RelId`]: a dedup
/// table sharded by string hash so concurrent interning rarely contends.
#[derive(Debug)]
pub struct Interner {
    shards: [RwLock<HashSet<&'static str>>; SHARDS],
    hasher: RandomState,
}

static GLOBAL: OnceLock<Interner> = OnceLock::new();

fn global() -> &'static Interner {
    GLOBAL.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| RwLock::new(HashSet::new())),
        hasher: RandomState::new(),
    })
}

impl Interner {
    /// Number of distinct strings interned so far in this process.
    pub fn len() -> usize {
        global()
            .shards
            .iter()
            .map(|shard| shard.read().expect("interner poisoned").len())
            .sum()
    }

    fn shard(&self, s: &str) -> &RwLock<HashSet<&'static str>> {
        &self.shards[self.hasher.hash_one(s) as usize & (SHARDS - 1)]
    }

    fn intern(s: &str) -> &'static str {
        let shard = global().shard(s);
        {
            let inner = shard.read().expect("interner poisoned");
            if let Some(&existing) = inner.get(s) {
                return existing;
            }
        }
        let mut inner = shard.write().expect("interner poisoned");
        if let Some(&existing) = inner.get(s) {
            return existing;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        inner.insert(leaked);
        leaked
    }

    fn lookup(s: &str) -> Option<&'static str> {
        let shard = global().shard(s);
        let inner = shard.read().expect("interner poisoned");
        inner.get(s).copied()
    }
}

/// An interned string: a copyable handle with O(1) pointer
/// equality/hashing and lock-free resolution.
#[derive(Clone, Copy)]
pub struct Sym(&'static str);

impl Sym {
    /// Intern a string, returning its symbol.
    pub fn intern(s: impl AsRef<str>) -> Sym {
        Sym(Interner::intern(s.as_ref()))
    }

    /// The symbol for a string **if it was already interned** — a read-only
    /// probe that never inserts or leaks. Use this to query `Sym`-keyed
    /// indexes with arbitrary strings: a string nobody interned cannot be a
    /// key in any such index.
    pub fn lookup(s: impl AsRef<str>) -> Option<Sym> {
        Interner::lookup(s.as_ref()).map(Sym)
    }

    /// The interned string (no lock, no lookup: the handle is the string).
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

// The interner leaks each distinct string exactly once, so address (+ len,
// for the dangling-pointer empty string) equality coincides with content
// equality — no string bytes are touched.
impl PartialEq for Sym {
    fn eq(&self, other: &Self) -> bool {
        self.0.as_ptr() == other.0.as_ptr() && self.0.len() == other.0.len()
    }
}

impl Eq for Sym {}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.0.as_ptr() as usize);
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// Lexicographic order (not address order): keeps every previously
// String-keyed BTree/sort deterministic and human-predictable.
impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self == other {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(s)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// An interned *relation name*. Distinct from [`Sym`] so relation handles
/// cannot be mixed up with attribute/constant symbols in signatures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(Sym);

impl RelId {
    /// Intern a relation name.
    pub fn intern(s: impl AsRef<str>) -> RelId {
        RelId(Sym::intern(s))
    }

    /// The relation name.
    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }

    /// The underlying symbol.
    pub fn as_sym(self) -> Sym {
        self.0
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelId({:?})", self.as_str())
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for RelId {
    fn from(s: &str) -> RelId {
        RelId::intern(s)
    }
}

impl From<&String> for RelId {
    fn from(s: &String) -> RelId {
        RelId::intern(s)
    }
}

impl From<String> for RelId {
    fn from(s: String) -> RelId {
        RelId::intern(s)
    }
}

impl From<Sym> for RelId {
    fn from(s: Sym) -> RelId {
        RelId(s)
    }
}

impl From<&RelId> for RelId {
    fn from(r: &RelId) -> RelId {
        *r
    }
}

impl PartialEq<str> for RelId {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for RelId {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_copy() {
        let a = Sym::intern("movies");
        let b = Sym::intern("movies");
        assert_eq!(a, b);
        // Same content must resolve to the same leaked allocation.
        assert_eq!(a.as_str().as_ptr(), b.as_str().as_ptr());
        let c = a; // Copy
        assert_eq!(c.as_str(), "movies");
        assert_ne!(Sym::intern("movies"), Sym::intern("movies2"));
    }

    #[test]
    fn empty_strings_are_equal() {
        assert_eq!(Sym::intern(""), Sym::intern(String::new()));
    }

    #[test]
    fn sym_orders_lexicographically() {
        // Intern deliberately out of order: addresses are allocation-ordered
        // but comparisons must follow the strings.
        let z = Sym::intern("zzz-order-test");
        let a = Sym::intern("aaa-order-test");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn relid_is_a_distinct_handle_over_the_same_table() {
        let r = RelId::intern("movies");
        assert_eq!(r.as_sym(), Sym::intern("movies"));
        assert_eq!(r.as_str(), "movies");
        assert_eq!(r, "movies");
        assert_eq!(RelId::from("movies"), r);
    }

    #[test]
    fn str_comparisons_work_both_ways() {
        let s = Sym::intern("comedy");
        assert_eq!(s, "comedy");
        assert_eq!(s, *"comedy");
        assert!(s != "drama");
    }

    #[test]
    fn hashing_follows_identity() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Sym::intern("key-one"), 1);
        assert_eq!(m.get(&Sym::intern("key-one")), Some(&1));
        assert_eq!(m.get(&Sym::intern("key-two")), None);
    }

    #[test]
    fn lookup_never_inserts() {
        // If lookup inserted on miss, the second probe would find the
        // string. (No len() comparison: other tests intern concurrently.)
        assert!(Sym::lookup("never-interned-probe-string").is_none());
        assert!(Sym::lookup("never-interned-probe-string").is_none());
        let s = Sym::intern("interned-then-looked-up");
        assert_eq!(Sym::lookup("interned-then-looked-up"), Some(s));
    }

    #[test]
    fn concurrent_interning_across_shards_is_consistent() {
        // Hammer the sharded table from several threads with overlapping
        // vocabularies; every thread must resolve each string to the same
        // leaked allocation.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..64)
                        .map(|i| Sym::intern(format!("shard-test-{}", (i + t) % 64)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &results {
            for s in row {
                assert_eq!(Sym::lookup(s.as_str()), Some(*s));
            }
        }
        // Same content interned from different threads is pointer-equal.
        let a = Sym::intern("shard-test-0");
        for row in &results {
            let found = row.iter().find(|s| s.as_str() == "shard-test-0").unwrap();
            assert_eq!(a.as_str().as_ptr(), found.as_str().as_ptr());
        }
    }

    #[test]
    fn interner_reports_growth() {
        let before = Interner::len();
        let _ = Sym::intern("definitely-a-fresh-string-for-len-test");
        // The table is append-only and the string above is interned nowhere
        // else, so the count must strictly grow.
        assert!(Interner::len() > before);
    }
}
