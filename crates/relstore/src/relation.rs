//! A relation instance: a bag of tuples plus per-attribute hash indexes.

use std::collections::HashMap;

use crate::error::StoreError;
use crate::intern::RelId;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Identifier of a tuple inside one relation (its insertion position).
pub type TupleId = usize;

/// A relation instance.
///
/// Tuples are stored in insertion order. Every attribute has a lazily built
/// hash index mapping a value to the ids of tuples holding that value, which
/// backs the equality selections used by bottom-clause construction
/// (`σ_{A ∈ M}(R)` in Algorithm 2 of the paper).
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    tuples: Vec<Tuple>,
    /// One index per attribute: value -> tuple ids.
    indexes: Vec<HashMap<Value, Vec<TupleId>>>,
}

impl Relation {
    /// Create an empty relation instance for the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            tuples: Vec::new(),
            indexes: vec![HashMap::new(); arity],
        }
    }

    /// The relation schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation name.
    pub fn name(&self) -> &'static str {
        self.schema.name.as_str()
    }

    /// The interned relation id.
    pub fn rel_id(&self) -> RelId {
        self.schema.name
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple after arity and type validation; returns its id.
    pub fn insert(&mut self, tuple: Tuple) -> Result<TupleId, StoreError> {
        if tuple.arity() != self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                relation: self.schema.name.as_str().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, value) in tuple.values().iter().enumerate() {
            let attr = &self.schema.attributes[i];
            if !attr.ty.accepts(value.value_type()) {
                return Err(StoreError::TypeMismatch {
                    relation: self.schema.name.as_str().to_string(),
                    attribute: attr.name.as_str().to_string(),
                });
            }
        }
        let id = self.tuples.len();
        for (i, value) in tuple.values().iter().enumerate() {
            self.indexes[i].entry(*value).or_default().push(id);
        }
        self.tuples.push(tuple);
        Ok(id)
    }

    /// Tuple by id.
    pub fn tuple(&self, id: TupleId) -> Option<&Tuple> {
        self.tuples.get(id)
    }

    /// All tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterate over `(id, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples.iter().enumerate()
    }

    /// Equality selection: ids of tuples whose `attribute` equals `value`.
    pub fn select_eq(&self, attribute: usize, value: &Value) -> &[TupleId] {
        static EMPTY: [TupleId; 0] = [];
        self.indexes
            .get(attribute)
            .and_then(|idx| idx.get(value))
            .map(|v| v.as_slice())
            .unwrap_or(&EMPTY)
    }

    /// Equality selection by attribute name.
    pub fn select_eq_by_name(
        &self,
        attribute: &str,
        value: &Value,
    ) -> Result<&[TupleId], StoreError> {
        let idx = self.schema.require_attribute_index(attribute)?;
        Ok(self.select_eq(idx, value))
    }

    /// Distinct values appearing in an attribute column.
    pub fn distinct_values(&self, attribute: usize) -> Vec<&Value> {
        self.indexes
            .get(attribute)
            .map(|idx| idx.keys().collect())
            .unwrap_or_default()
    }

    /// All (value, count) pairs of an attribute column.
    pub fn value_counts(&self, attribute: usize) -> Vec<(&Value, usize)> {
        self.indexes
            .get(attribute)
            .map(|idx| idx.iter().map(|(v, ids)| (v, ids.len())).collect())
            .unwrap_or_default()
    }

    /// Replace the value of `attribute` in the tuple `id`, keeping indexes
    /// consistent. Used by CFD repair of a database instance.
    pub fn update_value(
        &mut self,
        id: TupleId,
        attribute: usize,
        value: Value,
    ) -> Result<(), StoreError> {
        if attribute >= self.schema.arity() {
            return Err(StoreError::UnknownAttribute {
                relation: self.schema.name.as_str().to_string(),
                attribute: format!("#{attribute}"),
            });
        }
        let attr = &self.schema.attributes[attribute];
        if !attr.ty.accepts(value.value_type()) {
            return Err(StoreError::TypeMismatch {
                relation: self.schema.name.as_str().to_string(),
                attribute: attr.name.as_str().to_string(),
            });
        }
        let Some(t) = self.tuples.get_mut(id) else {
            return Ok(());
        };
        let old = t.set_value(attribute, value);
        if old != value {
            if let Some(ids) = self.indexes[attribute].get_mut(&old) {
                ids.retain(|&tid| tid != id);
                if ids.is_empty() {
                    self.indexes[attribute].remove(&old);
                }
            }
            self.indexes[attribute].entry(value).or_default().push(id);
        }
        Ok(())
    }

    /// Delete the first tuple equal to `t` (by insertion order), keeping the
    /// per-attribute indexes consistent; returns the removed tuple's old id.
    ///
    /// Tuple ids are insertion positions, so every surviving tuple past the
    /// removed one shifts down by one — an order-preserving renumbering. The
    /// index posting lists stay sorted ascending under that shift, which is
    /// what keeps `select_eq` results in insertion order after any sequence
    /// of deletes.
    pub fn delete(&mut self, t: &Tuple) -> Result<TupleId, StoreError> {
        if t.arity() != self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                relation: self.schema.name.as_str().to_string(),
                expected: self.schema.arity(),
                actual: t.arity(),
            });
        }
        let found = if self.schema.arity() == 0 {
            if self.tuples.is_empty() {
                None
            } else {
                Some(0)
            }
        } else {
            self.select_eq(0, &t.values()[0])
                .iter()
                .copied()
                .find(|&id| &self.tuples[id] == t)
        };
        let Some(id) = found else {
            return Err(StoreError::TupleNotFound {
                relation: self.schema.name.as_str().to_string(),
                tuple: t.to_string(),
            });
        };
        self.tuples.remove(id);
        for index in &mut self.indexes {
            for ids in index.values_mut() {
                ids.retain(|&tid| tid != id);
                for tid in ids.iter_mut() {
                    if *tid > id {
                        *tid -= 1;
                    }
                }
            }
            index.retain(|_, ids| !ids.is_empty());
        }
        Ok(id)
    }

    /// `true` when the relation contains a tuple equal to `t`.
    pub fn contains(&self, t: &Tuple) -> bool {
        if t.arity() != self.schema.arity() {
            return false;
        }
        if self.schema.arity() == 0 {
            return !self.tuples.is_empty();
        }
        self.select_eq(0, &t.values()[0])
            .iter()
            .any(|&id| &self.tuples[id] == t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use crate::tuple::tuple;

    fn rel() -> Relation {
        Relation::new(RelationSchema::new(
            "movies",
            vec![
                Attribute::int("id"),
                Attribute::str("title"),
                Attribute::int("year"),
            ],
        ))
    }

    #[test]
    fn insert_and_select_eq() {
        let mut r = rel();
        r.insert(tuple(vec![
            Value::int(1),
            Value::str("Superbad"),
            Value::int(2007),
        ]))
        .unwrap();
        r.insert(tuple(vec![
            Value::int(2),
            Value::str("Zoolander"),
            Value::int(2001),
        ]))
        .unwrap();
        r.insert(tuple(vec![
            Value::int(3),
            Value::str("Superbad"),
            Value::int(2007),
        ]))
        .unwrap();

        let hits = r
            .select_eq_by_name("title", &Value::str("Superbad"))
            .unwrap();
        assert_eq!(hits, &[0, 2]);
        assert_eq!(
            r.select_eq_by_name("year", &Value::int(1999)).unwrap(),
            &[] as &[usize]
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn insert_rejects_wrong_arity_and_type() {
        let mut r = rel();
        let err = r.insert(tuple(vec![Value::int(1)])).unwrap_err();
        assert!(matches!(err, StoreError::ArityMismatch { .. }));
        let err = r
            .insert(tuple(vec![Value::str("x"), Value::str("t"), Value::int(1)]))
            .unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch { .. }));
    }

    #[test]
    fn nulls_are_accepted_in_any_attribute() {
        let mut r = rel();
        r.insert(Tuple::new(vec![Value::int(1), Value::Null, Value::Null]))
            .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn update_value_keeps_indexes_consistent() {
        let mut r = rel();
        let id = r
            .insert(tuple(vec![
                Value::int(1),
                Value::str("Bait"),
                Value::int(2000),
            ]))
            .unwrap();
        r.update_value(id, 1, Value::str("Bait 2")).unwrap();
        assert!(r.select_eq(1, &Value::str("Bait")).is_empty());
        assert_eq!(r.select_eq(1, &Value::str("Bait 2")), &[id]);
        assert_eq!(r.tuple(id).unwrap().value(1), Some(&Value::str("Bait 2")));
    }

    #[test]
    fn contains_checks_full_tuple_equality() {
        let mut r = rel();
        r.insert(tuple(vec![Value::int(1), Value::str("a"), Value::int(2)]))
            .unwrap();
        assert!(r.contains(&tuple(vec![Value::int(1), Value::str("a"), Value::int(2)])));
        assert!(!r.contains(&tuple(vec![Value::int(1), Value::str("a"), Value::int(3)])));
        assert!(!r.contains(&tuple(vec![Value::int(1)])));
    }

    #[test]
    fn distinct_values_and_counts() {
        let mut r = rel();
        r.insert(tuple(vec![
            Value::int(1),
            Value::str("a"),
            Value::int(2000),
        ]))
        .unwrap();
        r.insert(tuple(vec![
            Value::int(2),
            Value::str("a"),
            Value::int(2001),
        ]))
        .unwrap();
        let mut counts = r.value_counts(1);
        counts.sort_by_key(|(_, c)| *c);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[0].1, 2);
        assert_eq!(r.distinct_values(2).len(), 2);
    }
}
