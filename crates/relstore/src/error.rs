//! Error type for the relational store.

use std::fmt;

/// Errors raised by schema and database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A relation with the same name already exists.
    DuplicateRelation(String),
    /// The named relation does not exist in the schema.
    UnknownRelation(String),
    /// The named attribute does not exist in the relation.
    UnknownAttribute {
        /// Relation that was inspected.
        relation: String,
        /// Requested attribute name.
        attribute: String,
    },
    /// A tuple's arity does not match the relation schema.
    ArityMismatch {
        /// Relation that was inserted into.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A tuple value's type does not match the attribute type.
    TypeMismatch {
        /// Relation that was inserted into.
        relation: String,
        /// Offending attribute.
        attribute: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateRelation(name) => {
                write!(f, "relation '{name}' already exists")
            }
            StoreError::UnknownRelation(name) => write!(f, "unknown relation '{name}'"),
            StoreError::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "unknown attribute '{attribute}' in relation '{relation}'"
                )
            }
            StoreError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch inserting into '{relation}': expected {expected}, got {actual}"
            ),
            StoreError::TypeMismatch {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "type mismatch for attribute '{attribute}' of relation '{relation}'"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = StoreError::ArityMismatch {
            relation: "r".into(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 2"));
        let e = StoreError::UnknownRelation("movies".into());
        assert!(e.to_string().contains("movies"));
    }
}
