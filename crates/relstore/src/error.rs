//! Error type for the relational store.

use std::fmt;

/// Errors raised by schema and database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A relation with the same name already exists.
    DuplicateRelation(String),
    /// The named relation does not exist in the schema.
    UnknownRelation(String),
    /// The named attribute does not exist in the relation.
    UnknownAttribute {
        /// Relation that was inspected.
        relation: String,
        /// Requested attribute name.
        attribute: String,
    },
    /// A tuple's arity does not match the relation schema.
    ArityMismatch {
        /// Relation that was inserted into.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A tuple value's type does not match the attribute type.
    TypeMismatch {
        /// Relation that was inserted into.
        relation: String,
        /// Offending attribute.
        attribute: String,
    },
    /// A delete named a tuple that is not present in the relation.
    TupleNotFound {
        /// Relation that was deleted from.
        relation: String,
        /// Display form of the missing tuple.
        tuple: String,
    },
    /// An error raised while validating a named constraint or declaration
    /// (e.g. "MD 'titles'"), wrapping the underlying reference error so
    /// callers can report *which* declaration is broken.
    InContext {
        /// What was being validated.
        context: String,
        /// The underlying error.
        source: Box<StoreError>,
    },
}

impl StoreError {
    /// Wrap this error with the name of the declaration being validated.
    pub fn in_context(self, context: impl Into<String>) -> StoreError {
        StoreError::InContext {
            context: context.into(),
            source: Box::new(self),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateRelation(name) => {
                write!(f, "relation '{name}' already exists")
            }
            StoreError::UnknownRelation(name) => write!(f, "unknown relation '{name}'"),
            StoreError::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "unknown attribute '{attribute}' in relation '{relation}'"
                )
            }
            StoreError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch inserting into '{relation}': expected {expected}, got {actual}"
            ),
            StoreError::TypeMismatch {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "type mismatch for attribute '{attribute}' of relation '{relation}'"
                )
            }
            StoreError::TupleNotFound { relation, tuple } => {
                write!(f, "tuple {tuple} not found in relation '{relation}'")
            }
            StoreError::InContext { context, source } => {
                write!(f, "in {context}: {source}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::InContext { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = StoreError::ArityMismatch {
            relation: "r".into(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 2"));
        let e = StoreError::UnknownRelation("movies".into());
        assert!(e.to_string().contains("movies"));
    }
}
