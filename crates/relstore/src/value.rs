//! Typed attribute values stored in relations.
//!
//! The store supports three value kinds: 64-bit integers, interned strings
//! and SQL-style `NULL`. Strings are interned [`Sym`] handles, so `Value` is
//! `Copy`, equality and hashing are integer operations, and the heavy value
//! cloning done by bottom-clause construction and similarity indexing is
//! free.

use std::fmt;

use crate::intern::Sym;

/// A single attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Absent / unknown value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Interned UTF-8 string.
    Str(Sym),
}

impl Value {
    /// Build a string value (interning the string).
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Sym::intern(s))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// `true` when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Return the string payload, if any.
    pub fn as_str(&self) -> Option<&'static str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Return the interned symbol, if this is a string value.
    pub fn as_sym(&self) -> Option<Sym> {
        match self {
            Value::Str(s) => Some(*s),
            _ => None,
        }
    }

    /// Return the integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The [`ValueType`] this value inhabits.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Int(_) => ValueType::Int,
            Value::Str(_) => ValueType::Str,
        }
    }

    /// Render the value as it would appear in a Datalog literal argument.
    /// Embedded quotes and backslashes are escaped, so the rendering is
    /// unambiguous (`it's` renders as `'it\'s'`, not the broken `'it's'`).
    pub fn render(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Str(s) => {
                let raw = s.as_str();
                if raw.contains('\'') || raw.contains('\\') {
                    let escaped = raw.replace('\\', "\\\\").replace('\'', "\\'");
                    format!("'{escaped}'")
                } else {
                    format!("'{raw}'")
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<Sym> for Value {
    fn from(v: Sym) -> Self {
        Value::Str(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

/// The static type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Integer attribute.
    Int,
    /// String attribute.
    Str,
    /// Type of the `NULL` value; never used for attribute declarations.
    Null,
}

impl ValueType {
    /// `true` if a value of type `other` can be stored in an attribute of
    /// this type (`NULL` is accepted everywhere).
    pub fn accepts(&self, other: ValueType) -> bool {
        other == ValueType::Null || *self == other
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "int"),
            ValueType::Str => write!(f, "str"),
            ValueType::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_values_compare_by_content() {
        assert_eq!(Value::str("abc"), Value::str("abc"));
        assert_ne!(Value::str("abc"), Value::str("abd"));
    }

    #[test]
    fn int_and_str_are_distinct() {
        assert_ne!(Value::int(1), Value::str("1"));
    }

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Value::int(42).as_int(), Some(42));
        assert_eq!(Value::int(42).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_sym(), Some(Sym::intern("x")));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn value_type_accepts_null_everywhere() {
        assert!(ValueType::Int.accepts(ValueType::Null));
        assert!(ValueType::Str.accepts(ValueType::Null));
        assert!(!ValueType::Int.accepts(ValueType::Str));
    }

    #[test]
    fn render_quotes_strings_only() {
        assert_eq!(Value::str("a b").render(), "'a b'");
        assert_eq!(Value::int(7).render(), "7");
        assert_eq!(Value::Null.render(), "null");
    }

    #[test]
    fn render_escapes_embedded_quotes() {
        // Regression: `'a'b'` used to render ambiguously for values
        // containing a quote character.
        assert_eq!(Value::str("a'b").render(), r"'a\'b'");
        assert_eq!(Value::str(r"back\slash").render(), r"'back\\slash'");
        assert_eq!(Value::str(r"mix\'ed").render(), r"'mix\\\'ed'");
        // Distinct raw strings must render distinctly.
        assert_ne!(Value::str(r"a\'b").render(), Value::str("a'b").render());
    }

    #[test]
    fn display_matches_payload() {
        assert_eq!(Value::str("hello").to_string(), "hello");
        assert_eq!(Value::int(-3).to_string(), "-3");
    }

    #[test]
    fn values_are_copy() {
        let v = Value::str("copied");
        let w = v;
        assert_eq!(v, w);
    }

    #[test]
    fn conversions_from_primitives() {
        let v: Value = 5i64.into();
        assert_eq!(v, Value::int(5));
        let v: Value = "abc".into();
        assert_eq!(v, Value::str("abc"));
        let v: Value = String::from("abc").into();
        assert_eq!(v, Value::str("abc"));
        let v: Value = Sym::intern("abc").into();
        assert_eq!(v, Value::str("abc"));
    }
}
