//! A minimal Fx-style hasher for hot-path index maps.
//!
//! The standard library's default `SipHash13` is DoS-resistant but costs
//! tens of cycles per key; index maps on the θ-subsumption hot path hash
//! small fixed-size keys (`(RelId, arity)` signatures, 16-byte `Term`s)
//! millions of times per covering loop and are built from trusted,
//! process-internal data, so a multiply-rotate hash is the right trade-off.
//! This is the same algorithm rustc uses internally (`FxHasher`),
//! re-implemented here because the build environment is offline.
//!
//! Do **not** key these maps by attacker-controlled strings in a serving
//! context; use the default hasher there.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (the rustc `FxHasher` algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equally() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"movies"), hash(b"movies"));
        assert_ne!(hash(b"movies"), hash(b"movies2"));
        // Chunk boundary (exactly 8 and 8+1 bytes).
        assert_eq!(hash(b"12345678"), hash(b"12345678"));
        assert_ne!(hash(b"12345678"), hash(b"123456789"));
    }

    #[test]
    fn maps_behave_like_std_maps() {
        let mut m: FxHashMap<(u64, usize), Vec<usize>> = FxHashMap::default();
        m.entry((1, 2)).or_default().push(7);
        m.entry((1, 2)).or_default().push(8);
        m.entry((3, 4)).or_default().push(9);
        assert_eq!(m[&(1, 2)], vec![7, 8]);
        assert_eq!(m.len(), 2);
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(5));
        assert!(!s.insert(5));
    }
}
