//! Fluent construction of schemas and small databases.
//!
//! The builder is mostly used by tests, examples and the synthetic data
//! generators: it removes the `Result` plumbing for programmatically
//! constructed databases whose schemas are known to be valid.

use crate::database::Database;
use crate::schema::{Attribute, RelationSchema};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};

/// Builder for a [`RelationSchema`].
#[derive(Debug, Clone)]
pub struct RelationBuilder {
    name: String,
    attributes: Vec<Attribute>,
}

impl RelationBuilder {
    /// Start building a relation schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        RelationBuilder {
            name: name.into(),
            attributes: Vec::new(),
        }
    }

    /// Add a string attribute.
    pub fn str_attr(mut self, name: impl AsRef<str>) -> Self {
        self.attributes.push(Attribute::new(name, ValueType::Str));
        self
    }

    /// Add an integer attribute.
    pub fn int_attr(mut self, name: impl AsRef<str>) -> Self {
        self.attributes.push(Attribute::new(name, ValueType::Int));
        self
    }

    /// Finish, producing the schema.
    pub fn build(self) -> RelationSchema {
        RelationSchema::new(self.name, self.attributes)
    }
}

/// Builder for a [`Database`].
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    database: Database,
}

impl DatabaseBuilder {
    /// Start with an empty database.
    pub fn new() -> Self {
        DatabaseBuilder {
            database: Database::new(),
        }
    }

    /// Declare a relation. Panics on duplicate names (programming error).
    pub fn relation(mut self, schema: RelationSchema) -> Self {
        self.database
            .create_relation(schema)
            .expect("duplicate relation in builder");
        self
    }

    /// Insert one tuple built from `Into<Value>` items. Panics on schema
    /// mismatch (programming error in generated data).
    pub fn row<I, V>(mut self, relation: &str, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let tuple = Tuple::new(values.into_iter().map(Into::into).collect());
        self.database
            .insert(relation, tuple)
            .expect("row does not match relation schema");
        self
    }

    /// Finish, producing the database.
    pub fn build(self) -> Database {
        self.database
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_database() {
        let db = DatabaseBuilder::new()
            .relation(
                RelationBuilder::new("movies")
                    .int_attr("id")
                    .str_attr("title")
                    .build(),
            )
            .row("movies", vec![Value::int(1), Value::str("Superbad")])
            .row("movies", vec![Value::int(2), Value::str("Zoolander")])
            .build();
        assert_eq!(db.require_relation("movies").unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row does not match relation schema")]
    fn builder_panics_on_bad_row() {
        let _ = DatabaseBuilder::new()
            .relation(RelationBuilder::new("r").int_attr("id").build())
            .row("r", vec![Value::str("not an int")]);
    }

    #[test]
    fn relation_builder_orders_attributes() {
        let schema = RelationBuilder::new("r")
            .int_attr("a")
            .str_attr("b")
            .int_attr("c")
            .build();
        assert_eq!(schema.arity(), 3);
        assert_eq!(schema.attribute_index("b"), Some(1));
    }
}
