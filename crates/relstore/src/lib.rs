//! # dlearn-relstore — in-memory relational database substrate
//!
//! DLearn (the paper's system) is implemented on top of a main-memory RDBMS
//! (VoltDB) and only needs a small slice of its functionality: typed
//! relations, equality selections backed by hash indexes, and cheap in-place
//! value updates for database repairs. This crate provides exactly that
//! substrate, from scratch, with deterministic iteration orders so that
//! learning runs are reproducible.
//!
//! The main types are:
//!
//! * [`Interner`], [`Sym`], [`RelId`] — process-wide string interning; every
//!   relation name, attribute name and string constant is a copy-type handle
//!   with integer equality/hashing (the representation the θ-subsumption hot
//!   path in `dlearn-logic` relies on).
//! * [`Value`] / [`ValueType`] — attribute values (ints, interned strings,
//!   `NULL`); `Value` is `Copy`.
//! * [`Attribute`], [`RelationSchema`], [`Schema`] — schema catalog.
//! * [`Tuple`] — an ordered list of values.
//! * [`Relation`] — a relation instance with per-attribute hash indexes.
//! * [`Database`] — the full instance, keyed by [`RelId`].
//! * [`DeltaTx`] / [`ChangeSet`] — streaming tuple-level delta transactions
//!   and their value-level read-visible footprint.
//! * [`DatabaseBuilder`] / [`RelationBuilder`] — fluent construction helpers.

#![warn(missing_docs)]

pub mod builder;
pub mod database;
pub mod delta;
pub mod error;
pub mod fxhash;
pub mod intern;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use builder::{DatabaseBuilder, RelationBuilder};
pub use database::Database;
pub use delta::{ChangeSet, DeltaOp, DeltaTx};
pub use error::StoreError;
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use intern::{Interner, RelId, Sym};
pub use relation::{Relation, TupleId};
pub use schema::{Attribute, RelationSchema, Schema};
pub use tuple::{tuple, Tuple};
pub use value::{Value, ValueType};
