//! # dlearn-relstore — in-memory relational database substrate
//!
//! DLearn (the paper's system) is implemented on top of a main-memory RDBMS
//! (VoltDB) and only needs a small slice of its functionality: typed
//! relations, equality selections backed by hash indexes, and cheap in-place
//! value updates for database repairs. This crate provides exactly that
//! substrate, from scratch, with deterministic iteration orders so that
//! learning runs are reproducible.
//!
//! The main types are:
//!
//! * [`Value`] / [`ValueType`] — attribute values (ints, strings, `NULL`).
//! * [`Attribute`], [`RelationSchema`], [`Schema`] — schema catalog.
//! * [`Tuple`] — an ordered list of values.
//! * [`Relation`] — a relation instance with per-attribute hash indexes.
//! * [`Database`] — the full instance, keyed by relation name.
//! * [`DatabaseBuilder`] / [`RelationBuilder`] — fluent construction helpers.

#![warn(missing_docs)]

pub mod builder;
pub mod database;
pub mod error;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use builder::{DatabaseBuilder, RelationBuilder};
pub use database::Database;
pub use error::StoreError;
pub use relation::{Relation, TupleId};
pub use schema::{Attribute, RelationSchema, Schema};
pub use tuple::{tuple, Tuple};
pub use value::{Value, ValueType};
