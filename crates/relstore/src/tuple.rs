//! Tuples: ordered sequences of values conforming to a relation schema.

use std::fmt;

use crate::value::Value;

/// A tuple of attribute values.
///
/// Tuples are schema-agnostic containers; arity and type checking happen on
/// insertion into a [`crate::relation::Relation`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Create a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Number of values in the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at a given position.
    pub fn value(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// All values, in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to a value (used by repair operations).
    pub fn value_mut(&mut self, index: usize) -> Option<&mut Value> {
        self.values.get_mut(index)
    }

    /// Replace the value at `index`, returning the previous value.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn set_value(&mut self, index: usize, value: Value) -> Value {
        std::mem::replace(&mut self.values[index], value)
    }

    /// Consume the tuple, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Iterate over the values.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", v.render())?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Convenience macro-free constructor used pervasively in tests and data
/// generators: builds a tuple from anything convertible into [`Value`].
pub fn tuple<I, V>(values: I) -> Tuple
where
    I: IntoIterator<Item = V>,
    V: Into<Value>,
{
    Tuple::new(values.into_iter().map(Into::into).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_accessors() {
        let t = tuple(vec![Value::int(1), Value::str("a")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.value(0), Some(&Value::int(1)));
        assert_eq!(t.value(5), None);
    }

    #[test]
    fn set_value_replaces_and_returns_previous() {
        let mut t = tuple(vec![Value::str("x"), Value::str("y")]);
        let old = t.set_value(1, Value::str("z"));
        assert_eq!(old, Value::str("y"));
        assert_eq!(t.value(1), Some(&Value::str("z")));
    }

    #[test]
    fn display_renders_values() {
        let t = tuple(vec![Value::int(3), Value::str("hi")]);
        assert_eq!(t.to_string(), "(3, 'hi')");
    }

    #[test]
    fn tuples_hash_by_content() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(tuple(vec![Value::int(1)]));
        assert!(set.contains(&tuple(vec![Value::int(1)])));
        assert!(!set.contains(&tuple(vec![Value::int(2)])));
    }
}
