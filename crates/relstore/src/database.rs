//! The database: a schema plus one relation instance per relation.

use std::collections::HashMap;

use crate::error::StoreError;
use crate::intern::RelId;
use crate::relation::{Relation, TupleId};
use crate::schema::{RelationSchema, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// A fully materialized, in-memory database instance.
///
/// Relations are keyed by interned [`RelId`], so lookups on the learner's
/// hot paths never hash a string; the `&str`-accepting convenience methods
/// intern on the way in.
#[derive(Debug, Clone, Default)]
pub struct Database {
    schema: Schema,
    relations: HashMap<RelId, Relation>,
}

impl Database {
    /// Empty database with an empty schema.
    pub fn new() -> Self {
        Database::default()
    }

    /// The database schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Declare a new relation.
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<(), StoreError> {
        self.schema.add_relation(schema.clone())?;
        self.relations.insert(schema.name, Relation::new(schema));
        Ok(())
    }

    /// Relation instance by name or id.
    pub fn relation(&self, name: impl Into<RelId>) -> Option<&Relation> {
        self.relations.get(&name.into())
    }

    /// Mutable relation instance by name or id.
    pub fn relation_mut(&mut self, name: impl Into<RelId>) -> Option<&mut Relation> {
        self.relations.get_mut(&name.into())
    }

    /// Relation instance, erroring when it does not exist.
    pub fn require_relation(&self, name: impl Into<RelId>) -> Result<&Relation, StoreError> {
        let id = name.into();
        self.relations
            .get(&id)
            .ok_or_else(|| StoreError::UnknownRelation(id.as_str().to_string()))
    }

    /// Insert a tuple into the named relation.
    pub fn insert(
        &mut self,
        relation: impl Into<RelId>,
        tuple: Tuple,
    ) -> Result<TupleId, StoreError> {
        let id = relation.into();
        let rel = self
            .relations
            .get_mut(&id)
            .ok_or_else(|| StoreError::UnknownRelation(id.as_str().to_string()))?;
        rel.insert(tuple)
    }

    /// Insert many tuples into the named relation.
    pub fn insert_all<I>(&mut self, relation: impl Into<RelId>, tuples: I) -> Result<(), StoreError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let id = relation.into();
        for t in tuples {
            self.insert(id, t)?;
        }
        Ok(())
    }

    /// Iterate over all relation instances in deterministic (name) order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        // RelId's Ord is lexicographic on the name, so this matches the old
        // String-sorted iteration order exactly.
        let mut ids: Vec<RelId> = self.relations.keys().copied().collect();
        ids.sort();
        ids.into_iter().map(move |id| &self.relations[&id])
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Equality selection over a named relation and attribute.
    pub fn select_eq(
        &self,
        relation: impl Into<RelId>,
        attribute: &str,
        value: &Value,
    ) -> Result<Vec<&Tuple>, StoreError> {
        let rel = self.require_relation(relation)?;
        let ids = rel.select_eq_by_name(attribute, value)?;
        Ok(ids.iter().filter_map(|&id| rel.tuple(id)).collect())
    }

    /// A compact human-readable summary (relation name -> cardinality).
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = self
            .relations()
            .map(|r| format!("{}:{}", r.name(), r.len()))
            .collect();
        parts.sort();
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use crate::tuple::tuple;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "movies",
            vec![Attribute::int("id"), Attribute::str("title")],
        ))
        .unwrap();
        db.create_relation(RelationSchema::new(
            "mov2genres",
            vec![Attribute::int("id"), Attribute::str("genre")],
        ))
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select() {
        let mut db = db();
        db.insert("movies", tuple(vec![Value::int(1), Value::str("Superbad")]))
            .unwrap();
        db.insert(
            "mov2genres",
            tuple(vec![Value::int(1), Value::str("comedy")]),
        )
        .unwrap();

        let hits = db
            .select_eq("movies", "title", &Value::str("Superbad"))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn relid_lookups_match_str_lookups() {
        let mut db = db();
        db.insert(
            RelId::intern("movies"),
            tuple(vec![Value::int(1), Value::str("a")]),
        )
        .unwrap();
        assert_eq!(db.relation(RelId::intern("movies")).unwrap().len(), 1);
        assert_eq!(db.relation("movies").unwrap().len(), 1);
    }

    #[test]
    fn unknown_relation_errors() {
        let mut db = db();
        assert!(db.insert("nope", tuple(vec![Value::int(1)])).is_err());
        assert!(db.select_eq("nope", "x", &Value::int(1)).is_err());
        assert!(db.require_relation("nope").is_err());
    }

    #[test]
    fn duplicate_relation_creation_fails() {
        let mut db = db();
        let err = db
            .create_relation(RelationSchema::new("movies", vec![Attribute::int("id")]))
            .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateRelation(_)));
    }

    #[test]
    fn relations_iterate_in_name_order() {
        let db = db();
        let names: Vec<&str> = db.relations().map(|r| r.name()).collect();
        assert_eq!(names, vec!["mov2genres", "movies"]);
    }

    #[test]
    fn summary_lists_cardinalities() {
        let mut db = db();
        db.insert("movies", tuple(vec![Value::int(1), Value::str("a")]))
            .unwrap();
        assert_eq!(db.summary(), "mov2genres:0, movies:1");
    }
}
