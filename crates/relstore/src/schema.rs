//! Relation schemas and the database-wide schema catalog.
//!
//! Names are interned: attribute names are [`Sym`]s and relation names are
//! [`RelId`]s, so schema lookups on the hot path compare integers. The
//! catalog is keyed by [`RelId`], whose `Ord` is lexicographic on the
//! resolved name, preserving the deterministic name-ordered iteration the
//! learner relies on.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::StoreError;
use crate::intern::{RelId, Sym};
use crate::value::ValueType;

/// A named, typed attribute of a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (interned), unique within its relation.
    pub name: Sym,
    /// Declared type.
    pub ty: ValueType,
}

impl Attribute {
    /// Create a new attribute.
    pub fn new(name: impl AsRef<str>, ty: ValueType) -> Self {
        Attribute {
            name: Sym::intern(name),
            ty,
        }
    }

    /// Shorthand for a string attribute.
    pub fn str(name: impl AsRef<str>) -> Self {
        Attribute::new(name, ValueType::Str)
    }

    /// Shorthand for an integer attribute.
    pub fn int(name: impl AsRef<str>) -> Self {
        Attribute::new(name, ValueType::Int)
    }
}

/// Schema of a single relation: an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name (interned), unique within the database schema.
    pub name: RelId,
    /// Ordered attributes.
    pub attributes: Vec<Attribute>,
}

impl RelationSchema {
    /// Create a relation schema.
    pub fn new(name: impl Into<RelId>, attributes: Vec<Attribute>) -> Self {
        RelationSchema {
            name: name.into(),
            attributes,
        }
    }

    /// Number of attributes (the relation arity).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of the attribute with the given name.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == *name)
    }

    /// Position of the attribute with the given interned name (no string
    /// comparison).
    pub fn attribute_pos(&self, name: Sym) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Attribute at a given position.
    pub fn attribute(&self, index: usize) -> Option<&Attribute> {
        self.attributes.get(index)
    }

    /// Attribute by name.
    pub fn attribute_by_name(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == *name)
    }

    /// Resolve an attribute name, returning a [`StoreError`] when unknown.
    pub fn require_attribute_index(&self, name: &str) -> Result<usize, StoreError> {
        self.attribute_index(name)
            .ok_or_else(|| StoreError::UnknownAttribute {
                relation: self.name.as_str().to_string(),
                attribute: name.to_string(),
            })
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

/// The database schema: the set of relation schemas, keyed by [`RelId`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    relations: BTreeMap<RelId, RelationSchema>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Add a relation schema. Returns an error when the name is taken.
    pub fn add_relation(&mut self, relation: RelationSchema) -> Result<(), StoreError> {
        if self.relations.contains_key(&relation.name) {
            return Err(StoreError::DuplicateRelation(
                relation.name.as_str().to_string(),
            ));
        }
        self.relations.insert(relation.name, relation);
        Ok(())
    }

    /// Look up a relation schema by name.
    pub fn relation(&self, name: impl Into<RelId>) -> Option<&RelationSchema> {
        self.relations.get(&name.into())
    }

    /// Look up a relation schema, returning an error when unknown.
    pub fn require_relation(&self, name: impl Into<RelId>) -> Result<&RelationSchema, StoreError> {
        let id = name.into();
        self.relations
            .get(&id)
            .ok_or_else(|| StoreError::UnknownRelation(id.as_str().to_string()))
    }

    /// Iterate over relation schemas in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Relation names in deterministic (sorted) order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(|r| r.as_str()).collect()
    }

    /// Relation ids in deterministic (name-sorted) order.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        self.relations.keys().copied()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` when the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// `true` when the schema contains the named relation.
    pub fn contains(&self, name: impl Into<RelId>) -> bool {
        self.relations.contains_key(&name.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movies_schema() -> RelationSchema {
        RelationSchema::new(
            "movies",
            vec![
                Attribute::int("id"),
                Attribute::str("title"),
                Attribute::int("year"),
            ],
        )
    }

    #[test]
    fn attribute_index_lookup() {
        let s = movies_schema();
        assert_eq!(s.attribute_index("title"), Some(1));
        assert_eq!(s.attribute_index("missing"), None);
        assert_eq!(s.attribute_pos(Sym::intern("title")), Some(1));
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn require_attribute_reports_relation_name() {
        let s = movies_schema();
        let err = s.require_attribute_index("nope").unwrap_err();
        match err {
            StoreError::UnknownAttribute {
                relation,
                attribute,
            } => {
                assert_eq!(relation, "movies");
                assert_eq!(attribute, "nope");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn schema_rejects_duplicate_relations() {
        let mut schema = Schema::new();
        schema.add_relation(movies_schema()).unwrap();
        let err = schema.add_relation(movies_schema()).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateRelation(_)));
    }

    #[test]
    fn schema_lookup_and_iteration_are_deterministic() {
        let mut schema = Schema::new();
        schema
            .add_relation(RelationSchema::new("b_rel", vec![Attribute::int("x")]))
            .unwrap();
        schema
            .add_relation(RelationSchema::new("a_rel", vec![Attribute::int("y")]))
            .unwrap();
        assert_eq!(schema.relation_names(), vec!["a_rel", "b_rel"]);
        assert!(schema.contains("a_rel"));
        assert!(schema.require_relation("missing").is_err());
        assert_eq!(schema.len(), 2);
        let ids: Vec<RelId> = schema.relation_ids().collect();
        assert_eq!(ids, vec![RelId::intern("a_rel"), RelId::intern("b_rel")]);
    }

    #[test]
    fn display_formats_schema() {
        let s = movies_schema();
        assert_eq!(s.to_string(), "movies(id: int, title: str, year: int)");
    }
}
