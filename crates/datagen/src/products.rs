//! Synthetic Walmart + Amazon product-integration dataset.
//!
//! Emulates the paper's Walmart+Amazon workload: the target relation
//! `upcOfComputersAccessories(upc)` holds UPCs of products in the
//! "Computers Accessories" category. The UPC lives on the Walmart side, the
//! category only on the Amazon side, and product names differ across sources.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use dlearn_constraints::{Cfd, MatchingDependency};
use dlearn_core::{LearningTask, TargetSpec};
use dlearn_relstore::{tuple, Database, DatabaseBuilder, RelationBuilder, Value};

use crate::dataset::Dataset;
use crate::dirt::{chance, drop_last_token, typo};
use crate::violations::inject_cfd_violations;
use crate::vocab;

/// Configuration of the product dataset generator.
#[derive(Debug, Clone)]
pub struct ProductConfig {
    /// Number of products present in both sources.
    pub n_products: usize,
    /// Number of positive training examples.
    pub n_positive: usize,
    /// Number of negative training examples.
    pub n_negative: usize,
    /// Fraction of Amazon titles spelled exactly like the Walmart title.
    pub exact_title_fraction: f64,
    /// CFD-violation injection rate `p`.
    pub cfd_violation_rate: f64,
}

impl ProductConfig {
    /// A tiny instance for unit tests.
    pub fn tiny() -> Self {
        ProductConfig {
            n_products: 50,
            n_positive: 8,
            n_negative: 16,
            exact_title_fraction: 0.1,
            cfd_violation_rate: 0.0,
        }
    }

    /// A small instance for integration tests and benchmarks.
    pub fn small() -> Self {
        ProductConfig {
            n_products: 150,
            n_positive: 20,
            n_negative: 40,
            ..ProductConfig::tiny()
        }
    }

    /// The scale used by the experiment runner (the paper uses 77/154
    /// examples over 19K/216K tuples).
    pub fn paper() -> Self {
        ProductConfig {
            n_products: 350,
            n_positive: 50,
            n_negative: 100,
            ..ProductConfig::tiny()
        }
    }

    /// Set the CFD-violation rate `p`.
    pub fn with_violation_rate(mut self, p: f64) -> Self {
        self.cfd_violation_rate = p;
        self
    }
}

/// Generate the product dataset.
pub fn generate_product_dataset(config: &ProductConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let categories = [
        "Computers Accessories",
        "Electronics - General",
        "Home & Kitchen",
        "Sports & Outdoors",
    ];
    let groups = ["Electronics - General", "Home", "Sports"];

    let mut builder = DatabaseBuilder::new()
        .relation(
            RelationBuilder::new("walmart_ids")
                .int_attr("pid")
                .int_attr("upc")
                .build(),
        )
        .relation(
            RelationBuilder::new("walmart_title")
                .int_attr("pid")
                .str_attr("title")
                .build(),
        )
        .relation(
            RelationBuilder::new("walmart_brand")
                .int_attr("pid")
                .str_attr("brand")
                .build(),
        )
        .relation(
            RelationBuilder::new("walmart_groupname")
                .int_attr("pid")
                .str_attr("group")
                .build(),
        )
        .relation(
            RelationBuilder::new("amazon_title")
                .int_attr("aid")
                .str_attr("title")
                .build(),
        )
        .relation(
            RelationBuilder::new("amazon_category")
                .int_attr("aid")
                .str_attr("category")
                .build(),
        )
        .relation(
            RelationBuilder::new("amazon_listprice")
                .int_attr("aid")
                .int_attr("price")
                .build(),
        )
        .relation(
            RelationBuilder::new("amazon_itemweight")
                .int_attr("aid")
                .int_attr("weight")
                .build(),
        );

    let mut positive_upcs: Vec<i64> = Vec::new();
    let mut negative_upcs: Vec<i64> = Vec::new();
    let mut used_titles = std::collections::HashSet::new();

    for i in 0..config.n_products {
        let pid = i as i64;
        let aid = 500_000 + pid;
        let upc = 880_000_000 + pid * 13;
        let mut title = vocab::product_title(&mut rng);
        while !used_titles.insert(title.clone()) {
            title = format!("{} {}", vocab::product_title(&mut rng), i);
            if used_titles.insert(title.clone()) {
                break;
            }
        }
        let positive = chance(&mut rng, 0.35);
        let category = if positive {
            "Computers Accessories"
        } else {
            loop {
                let c = vocab::pick(&mut rng, &categories);
                if c != "Computers Accessories" {
                    break c;
                }
            }
        };
        let brand = title
            .split_whitespace()
            .next()
            .unwrap_or("Generic")
            .to_string();
        let group = vocab::pick(&mut rng, &groups);
        let price = rng.gen_range(5..500) as i64;
        let weight = rng.gen_range(1..40) as i64;

        let amazon_title = if chance(&mut rng, config.exact_title_fraction) {
            title.clone()
        } else {
            match rng.gen_range(0..3) {
                0 => format!("{title} ({brand})"),
                1 => drop_last_token(&title),
                _ => typo(&title, &mut rng),
            }
        };

        builder = builder
            .row("walmart_ids", vec![Value::int(pid), Value::int(upc)])
            .row("walmart_title", vec![Value::int(pid), Value::str(&title)])
            .row("walmart_brand", vec![Value::int(pid), Value::str(&brand)])
            .row(
                "walmart_groupname",
                vec![Value::int(pid), Value::str(group)],
            )
            .row(
                "amazon_title",
                vec![Value::int(aid), Value::str(&amazon_title)],
            )
            .row(
                "amazon_category",
                vec![Value::int(aid), Value::str(category)],
            )
            .row("amazon_listprice", vec![Value::int(aid), Value::int(price)])
            .row(
                "amazon_itemweight",
                vec![Value::int(aid), Value::int(weight)],
            );

        if positive {
            positive_upcs.push(upc);
        } else {
            negative_upcs.push(upc);
        }
    }

    let mut database = builder.build();

    let mut task = LearningTask::new(
        Database::default(),
        TargetSpec::with_attributes("upcOfComputersAccessories", vec!["upc"]),
    );
    task.mds.push(MatchingDependency::simple(
        "product_titles",
        "walmart_title",
        "title",
        "amazon_title",
        "title",
    ));
    task.cfds = vec![
        Cfd::fd("walmart_title_fd", "walmart_title", vec!["pid"], "title"),
        Cfd::fd("walmart_upc_fd", "walmart_ids", vec!["pid"], "upc"),
        Cfd::fd("amazon_price_fd", "amazon_listprice", vec!["aid"], "price"),
        Cfd::fd(
            "amazon_category_fd",
            "amazon_category",
            vec!["aid"],
            "category",
        ),
        Cfd::fd(
            "amazon_weight_fd",
            "amazon_itemweight",
            vec!["aid"],
            "weight",
        ),
        Cfd::fd(
            "walmart_group_fd",
            "walmart_groupname",
            vec!["pid"],
            "group",
        ),
    ];
    if config.cfd_violation_rate > 0.0 {
        inject_cfd_violations(
            &mut database,
            &task.cfds,
            config.cfd_violation_rate,
            &mut rng,
        );
    }
    task.database = database;

    for (rel, attr) in [
        ("amazon_category", "category"),
        ("walmart_groupname", "group"),
        ("walmart_brand", "brand"),
    ] {
        task.add_constant_attribute(rel, attr);
    }
    for rel in [
        "walmart_ids",
        "walmart_title",
        "walmart_brand",
        "walmart_groupname",
    ] {
        task.add_source(rel, "walmart");
    }
    for rel in [
        "amazon_title",
        "amazon_category",
        "amazon_listprice",
        "amazon_itemweight",
    ] {
        task.add_source(rel, "amazon");
    }
    task.target_source = Some("walmart".to_string());

    positive_upcs.shuffle(&mut rng);
    positive_upcs.truncate(config.n_positive);
    negative_upcs.shuffle(&mut rng);
    negative_upcs.truncate(config.n_negative);
    task.positives = positive_upcs
        .iter()
        .map(|&u| tuple(vec![Value::int(u)]))
        .collect();
    task.negatives = negative_upcs
        .iter()
        .map(|&u| tuple(vec![Value::int(u)]))
        .collect();

    Dataset::new("Walmart + Amazon", task)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_task_is_valid() {
        let ds = generate_product_dataset(&ProductConfig::tiny(), 5);
        assert!(ds.task.validate().is_ok());
        assert_eq!(ds.task.mds.len(), 1);
        assert_eq!(
            ds.task.cfds.len(),
            6,
            "paper reports 6 CFDs for Walmart+Amazon"
        );
        assert!(!ds.task.positives.is_empty());
    }

    #[test]
    fn positive_upcs_belong_to_computers_accessories_products() {
        let ds = generate_product_dataset(&ProductConfig::tiny(), 5);
        let db = &ds.task.database;
        for e in ds.task.positives.iter().take(4) {
            let upc = e.value(0).unwrap();
            let ids = db.select_eq("walmart_ids", "upc", upc).unwrap();
            assert_eq!(ids.len(), 1);
            let pid = ids[0].value(0).unwrap().as_int().unwrap();
            // The matching Amazon product (same index offset) is in the
            // target category.
            let aid = Value::int(500_000 + pid);
            let cats = db.select_eq("amazon_category", "aid", &aid).unwrap();
            assert!(cats
                .iter()
                .any(|t| t.value(1) == Some(&Value::str("Computers Accessories"))));
        }
    }

    #[test]
    fn violation_rate_increases_tuple_count() {
        let clean = generate_product_dataset(&ProductConfig::tiny(), 1);
        let dirty = generate_product_dataset(&ProductConfig::tiny().with_violation_rate(0.2), 1);
        assert!(dirty.task.database.total_tuples() > clean.task.database.total_tuples());
    }
}
