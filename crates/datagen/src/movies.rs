//! Synthetic IMDB + OMDB movie-integration dataset.
//!
//! Emulates the paper's IMDB+OMDB workload: the target relation
//! `dramaRestrictedMovies(imdbId)` holds IMDB ids of drama movies rated R.
//! The id and genre live on the IMDB side, the rating only on the OMDB side,
//! and OMDB spells titles differently, so the discriminating attribute is
//! reachable only through the title matching dependency (plus cast/writer
//! MDs in the three-MD variant).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use dlearn_constraints::{Cfd, MatchingDependency};
use dlearn_core::{LearningTask, TargetSpec};
use dlearn_relstore::{tuple, DatabaseBuilder, RelationBuilder, Value};

use crate::dataset::Dataset;
use crate::dirt::{chance, decorate_title, perturb_name};
use crate::violations::inject_cfd_violations;
use crate::vocab;

/// Configuration of the movie dataset generator.
#[derive(Debug, Clone)]
pub struct MovieConfig {
    /// Number of movies present in both sources.
    pub n_movies: usize,
    /// Number of positive training examples to emit.
    pub n_positive: usize,
    /// Number of negative training examples to emit.
    pub n_negative: usize,
    /// Use the three-MD variant (titles + cast + writers) instead of one MD.
    pub three_mds: bool,
    /// Fraction of OMDB titles spelled exactly like the IMDB title.
    pub exact_title_fraction: f64,
    /// Fraction of cross-source person names spelled identically.
    pub exact_name_fraction: f64,
    /// CFD-violation injection rate `p` (0 disables injection).
    pub cfd_violation_rate: f64,
}

impl MovieConfig {
    /// A tiny instance for unit tests and doc examples.
    pub fn tiny() -> Self {
        MovieConfig {
            n_movies: 40,
            n_positive: 8,
            n_negative: 16,
            three_mds: false,
            exact_title_fraction: 0.1,
            exact_name_fraction: 0.7,
            cfd_violation_rate: 0.0,
        }
    }

    /// A small instance for integration tests and benchmarks.
    pub fn small() -> Self {
        MovieConfig {
            n_movies: 120,
            n_positive: 24,
            n_negative: 48,
            ..MovieConfig::tiny()
        }
    }

    /// The scale used by the experiment runner to mirror the paper's tables
    /// (scaled down from the 3.3M/4.8M-tuple originals to laptop size).
    pub fn paper() -> Self {
        MovieConfig {
            n_movies: 400,
            n_positive: 60,
            n_negative: 120,
            ..MovieConfig::tiny()
        }
    }

    /// Switch to the three-MD variant.
    pub fn with_three_mds(mut self) -> Self {
        self.three_mds = true;
        self
    }

    /// Set the CFD-violation rate `p`.
    pub fn with_violation_rate(mut self, p: f64) -> Self {
        self.cfd_violation_rate = p;
        self
    }

    /// Set the number of training examples.
    pub fn with_examples(mut self, positives: usize, negatives: usize) -> Self {
        self.n_positive = positives;
        self.n_negative = negatives;
        self
    }
}

/// Generate the movie dataset.
pub fn generate_movie_dataset(config: &MovieConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let genres = ["drama", "comedy", "thriller", "action", "horror"];
    let ratings = ["R", "PG-13", "PG", "G"];
    let countries = ["USA", "UK", "France", "Spain", "Japan", "India"];

    let mut builder = DatabaseBuilder::new()
        .relation(
            RelationBuilder::new("imdb_movies")
                .int_attr("id")
                .str_attr("title")
                .int_attr("year")
                .build(),
        )
        .relation(
            RelationBuilder::new("imdb_mov2genres")
                .int_attr("id")
                .str_attr("genre")
                .build(),
        )
        .relation(
            RelationBuilder::new("imdb_mov2countries")
                .int_attr("id")
                .str_attr("country")
                .build(),
        )
        .relation(
            RelationBuilder::new("imdb_mov2cast")
                .int_attr("id")
                .str_attr("actor")
                .build(),
        )
        .relation(
            RelationBuilder::new("imdb_mov2writers")
                .int_attr("id")
                .str_attr("writer")
                .build(),
        )
        .relation(
            RelationBuilder::new("omdb_movies")
                .int_attr("oid")
                .str_attr("title")
                .int_attr("year")
                .build(),
        )
        .relation(
            RelationBuilder::new("omdb_mov2ratings")
                .int_attr("oid")
                .str_attr("rating")
                .build(),
        )
        .relation(
            RelationBuilder::new("omdb_mov2genres")
                .int_attr("oid")
                .str_attr("genre")
                .build(),
        )
        .relation(
            RelationBuilder::new("omdb_mov2cast")
                .int_attr("oid")
                .str_attr("actor")
                .build(),
        )
        .relation(
            RelationBuilder::new("omdb_mov2writers")
                .int_attr("oid")
                .str_attr("writer")
                .build(),
        );

    let mut positive_ids: Vec<i64> = Vec::new();
    let mut negative_ids: Vec<i64> = Vec::new();
    let mut used_titles = std::collections::HashSet::new();

    for i in 0..config.n_movies {
        let id = i as i64;
        let oid = 100_000 + id;
        let mut title = vocab::movie_title(&mut rng);
        while !used_titles.insert(title.clone()) {
            title = format!("{} {}", vocab::movie_title(&mut rng), i);
            if used_titles.insert(title.clone()) {
                break;
            }
        }
        let year = 1950 + rng.gen_range(0..70) as i64;
        // Decide the label first so both classes are well represented, and
        // make the negatives hard: most of them are drama-but-not-R or
        // R-but-not-drama, so neither source alone separates the classes and
        // the learner must cross the title join to do well (this mirrors the
        // paper's target, whose definition needs both the IMDB genre and the
        // OMDB rating).
        let positive = chance(&mut rng, 0.4);
        let (genre, rating) = if positive {
            ("drama", "R")
        } else {
            match rng.gen_range(0..10) {
                0..=3 => (
                    "drama",
                    *["PG-13", "PG", "G"].get(rng.gen_range(0..3usize)).unwrap(),
                ),
                4..=7 => (
                    *["comedy", "thriller", "action", "horror"]
                        .get(rng.gen_range(0..4usize))
                        .unwrap(),
                    "R",
                ),
                _ => loop {
                    let g = vocab::pick(&mut rng, &genres);
                    let r = vocab::pick(&mut rng, &ratings);
                    if g != "drama" && r != "R" {
                        break (g, r);
                    }
                },
            }
        };
        let country = vocab::pick(&mut rng, &countries);
        let actor = vocab::person_name(&mut rng);
        let writer = vocab::person_name(&mut rng);

        let omdb_title = if chance(&mut rng, config.exact_title_fraction) {
            title.clone()
        } else {
            decorate_title(&title, year, &mut rng)
        };
        let omdb_actor = if chance(&mut rng, config.exact_name_fraction) {
            actor.clone()
        } else {
            perturb_name(&actor, &mut rng)
        };
        let omdb_writer = if chance(&mut rng, config.exact_name_fraction) {
            writer.clone()
        } else {
            perturb_name(&writer, &mut rng)
        };

        builder = builder
            .row(
                "imdb_movies",
                vec![Value::int(id), Value::str(&title), Value::int(year)],
            )
            .row("imdb_mov2genres", vec![Value::int(id), Value::str(genre)])
            .row(
                "imdb_mov2countries",
                vec![Value::int(id), Value::str(country)],
            )
            .row("imdb_mov2cast", vec![Value::int(id), Value::str(&actor)])
            .row(
                "imdb_mov2writers",
                vec![Value::int(id), Value::str(&writer)],
            )
            .row(
                "omdb_movies",
                vec![Value::int(oid), Value::str(&omdb_title), Value::int(year)],
            )
            .row(
                "omdb_mov2ratings",
                vec![Value::int(oid), Value::str(rating)],
            )
            .row("omdb_mov2genres", vec![Value::int(oid), Value::str(genre)])
            .row(
                "omdb_mov2cast",
                vec![Value::int(oid), Value::str(&omdb_actor)],
            )
            .row(
                "omdb_mov2writers",
                vec![Value::int(oid), Value::str(&omdb_writer)],
            );

        if positive {
            positive_ids.push(id);
        } else {
            negative_ids.push(id);
        }
    }

    let mut database = builder.build();

    let mut task = LearningTask::new(
        Database::default(),
        TargetSpec::with_attributes("dramaRestrictedMovies", vec!["imdbId"]),
    );

    // Constraints.
    task.mds.push(MatchingDependency::simple(
        "titles",
        "imdb_movies",
        "title",
        "omdb_movies",
        "title",
    ));
    if config.three_mds {
        task.mds.push(MatchingDependency::simple(
            "cast",
            "imdb_mov2cast",
            "actor",
            "omdb_mov2cast",
            "actor",
        ));
        task.mds.push(MatchingDependency::simple(
            "writers",
            "imdb_mov2writers",
            "writer",
            "omdb_mov2writers",
            "writer",
        ));
    }
    task.cfds = vec![
        Cfd::fd("imdb_year", "imdb_movies", vec!["id"], "year"),
        Cfd::fd("omdb_year", "omdb_movies", vec!["oid"], "year"),
        Cfd::fd("omdb_rating", "omdb_mov2ratings", vec!["oid"], "rating"),
        Cfd::fd("imdb_country", "imdb_mov2countries", vec!["id"], "country"),
    ];

    // Inject CFD violations before freezing the database.
    if config.cfd_violation_rate > 0.0 {
        inject_cfd_violations(
            &mut database,
            &task.cfds,
            config.cfd_violation_rate,
            &mut rng,
        );
    }
    task.database = database;

    // Mode-style declarations.
    for (rel, attr) in [
        ("imdb_mov2genres", "genre"),
        ("omdb_mov2genres", "genre"),
        ("omdb_mov2ratings", "rating"),
        ("imdb_mov2countries", "country"),
    ] {
        task.add_constant_attribute(rel, attr);
    }
    for rel in [
        "imdb_movies",
        "imdb_mov2genres",
        "imdb_mov2countries",
        "imdb_mov2cast",
        "imdb_mov2writers",
    ] {
        task.add_source(rel, "imdb");
    }
    for rel in [
        "omdb_movies",
        "omdb_mov2ratings",
        "omdb_mov2genres",
        "omdb_mov2cast",
        "omdb_mov2writers",
    ] {
        task.add_source(rel, "omdb");
    }
    task.target_source = Some("imdb".to_string());

    // Training examples.
    sample_examples(&mut rng, &mut positive_ids, config.n_positive);
    sample_examples(&mut rng, &mut negative_ids, config.n_negative);
    task.positives = positive_ids
        .iter()
        .map(|&id| tuple(vec![Value::int(id)]))
        .collect();
    task.negatives = negative_ids
        .iter()
        .map(|&id| tuple(vec![Value::int(id)]))
        .collect();

    let name = if config.three_mds {
        "IMDB + OMDB (three MDs)"
    } else {
        "IMDB + OMDB (one MD)"
    };
    Dataset::new(name, task)
}

use dlearn_relstore::Database;
use rand::seq::SliceRandom;

fn sample_examples(rng: &mut StdRng, ids: &mut Vec<i64>, n: usize) {
    ids.shuffle(rng);
    ids.truncate(n);
    ids.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_task_is_valid_and_has_requested_examples() {
        let ds = generate_movie_dataset(&MovieConfig::tiny(), 42);
        assert!(ds.task.validate().is_ok());
        assert_eq!(ds.task.positives.len(), 8);
        assert_eq!(ds.task.negatives.len(), 16);
        assert_eq!(ds.task.mds.len(), 1);
        assert_eq!(ds.task.cfds.len(), 4);
        assert!(ds.task.database.total_tuples() >= 40 * 10);
    }

    #[test]
    fn three_md_variant_declares_three_mds() {
        let ds = generate_movie_dataset(&MovieConfig::tiny().with_three_mds(), 42);
        assert_eq!(ds.task.mds.len(), 3);
        assert!(ds.name.contains("three"));
    }

    #[test]
    fn positives_are_drama_and_rated_r() {
        let ds = generate_movie_dataset(&MovieConfig::tiny(), 7);
        let db = &ds.task.database;
        for e in &ds.task.positives {
            let id = e.value(0).unwrap();
            let genres = db.select_eq("imdb_mov2genres", "id", id).unwrap();
            assert!(genres
                .iter()
                .any(|t| t.value(1) == Some(&Value::str("drama"))));
        }
    }

    #[test]
    fn violation_injection_adds_tuples() {
        let clean = generate_movie_dataset(&MovieConfig::tiny(), 3);
        let dirty = generate_movie_dataset(&MovieConfig::tiny().with_violation_rate(0.2), 3);
        assert!(dirty.task.database.total_tuples() > clean.task.database.total_tuples());
        let violated = dirty
            .task
            .cfds
            .iter()
            .any(|c| !c.satisfied_by(dirty.task.database.relation(c.relation).unwrap()));
        assert!(violated);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_movie_dataset(&MovieConfig::tiny(), 9);
        let b = generate_movie_dataset(&MovieConfig::tiny(), 9);
        assert_eq!(a.task.database.summary(), b.task.database.summary());
        assert_eq!(a.task.positives, b.task.positives);
    }
}
