//! Synthetic DBLP + Google Scholar citation-augmentation dataset.
//!
//! Emulates the paper's DBLP+Google-Scholar workload: the Scholar records are
//! incomplete (no publication year), and the target relation
//! `gsPaperYear(gsId, year)` pairs a Scholar id with the publication year
//! recorded in DBLP for the same paper. Titles and venues are spelled
//! differently across the sources, so the join requires the two MDs (titles
//! and venues).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use dlearn_constraints::{Cfd, MatchingDependency};
use dlearn_core::{LearningTask, TargetSpec};
use dlearn_relstore::{tuple, Database, DatabaseBuilder, RelationBuilder, Value};

use crate::dataset::Dataset;
use crate::dirt::{chance, drop_last_token, typo};
use crate::violations::inject_cfd_violations;
use crate::vocab;

/// Configuration of the citation dataset generator.
#[derive(Debug, Clone)]
pub struct CitationConfig {
    /// Number of papers present in both sources.
    pub n_papers: usize,
    /// Number of positive training examples.
    pub n_positive: usize,
    /// Number of negative training examples.
    pub n_negative: usize,
    /// Fraction of Scholar titles spelled exactly like the DBLP title.
    pub exact_title_fraction: f64,
    /// CFD-violation injection rate `p`.
    pub cfd_violation_rate: f64,
}

impl CitationConfig {
    /// A tiny instance for unit tests.
    pub fn tiny() -> Self {
        CitationConfig {
            n_papers: 50,
            n_positive: 10,
            n_negative: 20,
            exact_title_fraction: 0.1,
            cfd_violation_rate: 0.0,
        }
    }

    /// A small instance for integration tests and benchmarks.
    pub fn small() -> Self {
        CitationConfig {
            n_papers: 150,
            n_positive: 25,
            n_negative: 50,
            ..CitationConfig::tiny()
        }
    }

    /// The scale used by the experiment runner (the paper uses 500/1000
    /// examples over 15K/328K tuples).
    pub fn paper() -> Self {
        CitationConfig {
            n_papers: 400,
            n_positive: 60,
            n_negative: 120,
            ..CitationConfig::tiny()
        }
    }

    /// Set the CFD-violation rate `p`.
    pub fn with_violation_rate(mut self, p: f64) -> Self {
        self.cfd_violation_rate = p;
        self
    }
}

/// Generate the citation dataset.
pub fn generate_citation_dataset(config: &CitationConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);

    let mut builder = DatabaseBuilder::new()
        .relation(
            RelationBuilder::new("dblp_papers")
                .int_attr("did")
                .str_attr("title")
                .str_attr("venue")
                .int_attr("year")
                .build(),
        )
        .relation(
            RelationBuilder::new("dblp_authors")
                .int_attr("did")
                .str_attr("author")
                .build(),
        )
        .relation(
            RelationBuilder::new("scholar_papers")
                .int_attr("gsid")
                .str_attr("title")
                .str_attr("venue")
                .build(),
        )
        .relation(
            RelationBuilder::new("scholar_authors")
                .int_attr("gsid")
                .str_attr("author")
                .build(),
        );

    let mut paper_years: Vec<(i64, i64)> = Vec::new(); // (gsid, true year)
    let mut used_titles = std::collections::HashSet::new();

    for i in 0..config.n_papers {
        let did = i as i64;
        let gsid = 900_000 + did;
        let mut title = vocab::paper_title(&mut rng);
        while !used_titles.insert(title.clone()) {
            title = format!("{} ({})", vocab::paper_title(&mut rng), i);
            if used_titles.insert(title.clone()) {
                break;
            }
        }
        let venue = vocab::pick(&mut rng, vocab::VENUES).to_string();
        let year = 1995 + rng.gen_range(0..25) as i64;
        let author = vocab::person_name(&mut rng);

        let scholar_title = if chance(&mut rng, config.exact_title_fraction) {
            title.clone()
        } else {
            match rng.gen_range(0..3) {
                0 => format!("{title}."),
                1 => drop_last_token(&title),
                _ => typo(&title, &mut rng),
            }
        };
        let scholar_venue = if chance(&mut rng, 0.5) {
            venue.clone()
        } else {
            format!("Proc. of {venue}")
        };

        builder = builder
            .row(
                "dblp_papers",
                vec![
                    Value::int(did),
                    Value::str(&title),
                    Value::str(&venue),
                    Value::int(year),
                ],
            )
            .row("dblp_authors", vec![Value::int(did), Value::str(&author)])
            .row(
                "scholar_papers",
                vec![
                    Value::int(gsid),
                    Value::str(&scholar_title),
                    Value::str(&scholar_venue),
                ],
            )
            .row(
                "scholar_authors",
                vec![Value::int(gsid), Value::str(&author)],
            );

        paper_years.push((gsid, year));
    }

    let mut database = builder.build();

    let mut task = LearningTask::new(
        Database::default(),
        TargetSpec::with_attributes("gsPaperYear", vec!["gsId", "year"]),
    );
    task.mds.push(MatchingDependency::simple(
        "paper_titles",
        "dblp_papers",
        "title",
        "scholar_papers",
        "title",
    ));
    task.mds.push(MatchingDependency::simple(
        "venues",
        "dblp_papers",
        "venue",
        "scholar_papers",
        "venue",
    ));
    task.cfds = vec![
        Cfd::fd("scholar_title_fd", "scholar_papers", vec!["gsid"], "title"),
        Cfd::fd("dblp_year_fd", "dblp_papers", vec!["did"], "year"),
    ];
    if config.cfd_violation_rate > 0.0 {
        inject_cfd_violations(
            &mut database,
            &task.cfds,
            config.cfd_violation_rate,
            &mut rng,
        );
    }
    task.database = database;

    for rel in ["dblp_papers", "dblp_authors"] {
        task.add_source(rel, "dblp");
    }
    for rel in ["scholar_papers", "scholar_authors"] {
        task.add_source(rel, "scholar");
    }
    task.target_source = Some("scholar".to_string());

    // Positive examples pair a Scholar id with its true DBLP year; negatives
    // pair it with a wrong year.
    paper_years.shuffle(&mut rng);
    let positives: Vec<(i64, i64)> = paper_years
        .iter()
        .take(config.n_positive)
        .cloned()
        .collect();
    let negatives: Vec<(i64, i64)> = paper_years
        .iter()
        .cycle()
        .skip(config.n_positive)
        .take(config.n_negative)
        .map(|&(gsid, year)| {
            let offset = rng.gen_range(1..6) as i64;
            (gsid, year + offset)
        })
        .collect();
    task.positives = positives
        .iter()
        .map(|&(g, y)| tuple(vec![Value::int(g), Value::int(y)]))
        .collect();
    task.negatives = negatives
        .iter()
        .map(|&(g, y)| tuple(vec![Value::int(g), Value::int(y)]))
        .collect();

    Dataset::new("DBLP + Google Scholar", task)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_task_is_valid_with_two_mds() {
        let ds = generate_citation_dataset(&CitationConfig::tiny(), 2);
        assert!(ds.task.validate().is_ok());
        assert_eq!(ds.task.mds.len(), 2, "paper uses two MDs (titles, venues)");
        assert_eq!(
            ds.task.cfds.len(),
            2,
            "paper reports 2 CFDs for DBLP+Scholar"
        );
        assert_eq!(ds.task.target.arity(), 2);
    }

    #[test]
    fn positive_years_match_dblp_and_negative_years_do_not() {
        let ds = generate_citation_dataset(&CitationConfig::tiny(), 2);
        let db = &ds.task.database;
        let year_of = |gsid: &Value| -> i64 {
            // The DBLP paper with did = gsid - 900000.
            let did = Value::int(gsid.as_int().unwrap() - 900_000);
            db.select_eq("dblp_papers", "did", &did).unwrap()[0]
                .value(3)
                .unwrap()
                .as_int()
                .unwrap()
        };
        for e in &ds.task.positives {
            assert_eq!(
                e.value(1).unwrap().as_int().unwrap(),
                year_of(e.value(0).unwrap())
            );
        }
        for e in &ds.task.negatives {
            assert_ne!(
                e.value(1).unwrap().as_int().unwrap(),
                year_of(e.value(0).unwrap())
            );
        }
    }

    #[test]
    fn scholar_titles_are_usually_dirty() {
        let ds = generate_citation_dataset(&CitationConfig::tiny(), 8);
        let db = &ds.task.database;
        let dblp = db.relation("dblp_papers").unwrap();
        let scholar = db.relation("scholar_papers").unwrap();
        let mut exact = 0;
        for i in 0..dblp.len() {
            if dblp.tuple(i).unwrap().value(1) == scholar.tuple(i).unwrap().value(1) {
                exact += 1;
            }
        }
        assert!(
            exact * 3 < dblp.len(),
            "too many exact titles: {exact}/{}",
            dblp.len()
        );
    }
}
