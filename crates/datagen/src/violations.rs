//! CFD-violation injection (Section 6.1.2 of the paper).
//!
//! "To test the performance of DLearn on data that contains CFD violations,
//! we inject each dataset with varying proportions of CFD violations `p`."
//! A violation is injected by duplicating a tuple of the CFD's relation and
//! perturbing the duplicate's right-hand-side value, so the pair disagrees on
//! the RHS while agreeing on the LHS.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use dlearn_constraints::Cfd;
use dlearn_relstore::{Database, Value};

/// Inject CFD violations into `database` so that roughly `rate` of the tuples
/// of each constrained relation participate in a violation. Returns the
/// number of violating duplicates inserted.
pub fn inject_cfd_violations(
    database: &mut Database,
    cfds: &[Cfd],
    rate: f64,
    rng: &mut StdRng,
) -> usize {
    if rate <= 0.0 {
        return 0;
    }
    let mut injected = 0usize;
    for cfd in cfds {
        let Some(relation) = database.relation(cfd.relation) else {
            continue;
        };
        let rhs_index = cfd.rhs_index(relation);
        let n = relation.len();
        if n == 0 {
            continue;
        }
        // Each duplicate makes (at least) two tuples violating, so inject
        // rate/2 * n duplicates per relation.
        let count = ((rate * n as f64) / 2.0).ceil() as usize;
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(rng);
        ids.truncate(count);
        let mut new_rows = Vec::new();
        for id in ids {
            let Some(tuple) = relation.tuple(id) else {
                continue;
            };
            let mut dirty = tuple.clone();
            let current = dirty.value(rhs_index).cloned().unwrap_or(Value::Null);
            dirty.set_value(
                rhs_index,
                perturb_value(&current, relation.distinct_values(rhs_index), rng),
            );
            new_rows.push(dirty);
        }
        let name = cfd.relation;
        for row in new_rows {
            if database.insert(name, row).is_ok() {
                injected += 1;
            }
        }
    }
    injected
}

/// Produce a value different from `current`, preferring another value already
/// present in the column's domain.
fn perturb_value(current: &Value, domain: Vec<&Value>, rng: &mut StdRng) -> Value {
    let alternatives: Vec<&&Value> = domain.iter().filter(|v| *v != &current).collect();
    if !alternatives.is_empty() && rng.gen_bool(0.7) {
        return *(*alternatives[rng.gen_range(0..alternatives.len())]);
    }
    match current {
        Value::Int(i) => Value::Int(*i + rng.gen_range(1..5i64)),
        Value::Str(s) => Value::str(format!("{s} ?")),
        Value::Null => Value::str("unknown"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_constraints::all_cfds_satisfied;
    use dlearn_relstore::{DatabaseBuilder, RelationBuilder};
    use rand::SeedableRng;

    fn db() -> Database {
        let mut builder = DatabaseBuilder::new().relation(
            RelationBuilder::new("movies")
                .int_attr("id")
                .str_attr("title")
                .int_attr("year")
                .build(),
        );
        for i in 0..40i64 {
            builder = builder.row(
                "movies",
                vec![
                    Value::int(i),
                    Value::str(format!("Movie {i}")),
                    Value::int(1980 + i),
                ],
            );
        }
        builder.build()
    }

    #[test]
    fn injection_creates_violations_at_roughly_the_requested_rate() {
        let mut database = db();
        let cfds = vec![Cfd::fd("year", "movies", vec!["id"], "year")];
        assert!(all_cfds_satisfied(&database, &cfds));
        let mut rng = StdRng::seed_from_u64(11);
        let injected = inject_cfd_violations(&mut database, &cfds, 0.2, &mut rng);
        assert!(injected >= 4, "injected: {injected}");
        assert!(!all_cfds_satisfied(&database, &cfds));
        let violating = cfds[0]
            .find_violations(database.relation("movies").unwrap())
            .len();
        assert!(violating >= injected, "violations: {violating}");
    }

    #[test]
    fn zero_rate_is_a_no_op() {
        let mut database = db();
        let cfds = vec![Cfd::fd("year", "movies", vec!["id"], "year")];
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(
            inject_cfd_violations(&mut database, &cfds, 0.0, &mut rng),
            0
        );
        assert_eq!(database.total_tuples(), 40);
    }

    #[test]
    fn perturbed_values_differ_from_the_original() {
        let mut rng = StdRng::seed_from_u64(2);
        let original = Value::int(1990);
        for _ in 0..20 {
            let domain_owned = [Value::int(1991), Value::int(1992)];
            let domain: Vec<&Value> = domain_owned.iter().collect();
            assert_ne!(perturb_value(&original, domain, &mut rng), original);
        }
    }
}
