//! Datasets: a learning task plus cross-validation splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dlearn_core::LearningTask;
use dlearn_relstore::Tuple;

/// A generated dataset: a named learning task (database, constraints and
/// examples).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name used in reports (e.g. "IMDB + OMDB (three MDs)").
    pub name: String,
    /// The learning task.
    pub task: LearningTask,
}

/// One fold of a cross-validation split.
#[derive(Debug, Clone)]
pub struct Fold {
    /// Training task (same database and constraints, train examples only).
    pub train: LearningTask,
    /// Held-out positive examples.
    pub test_positives: Vec<Tuple>,
    /// Held-out negative examples.
    pub test_negatives: Vec<Tuple>,
}

impl Dataset {
    /// Create a dataset.
    pub fn new(name: impl Into<String>, task: LearningTask) -> Self {
        Dataset {
            name: name.into(),
            task,
        }
    }

    /// Produce a `k`-fold cross-validation split of the examples (the paper
    /// uses 5-fold CV). Examples are shuffled deterministically by `seed`.
    pub fn cross_validation_folds(&self, k: usize, seed: u64) -> Vec<Fold> {
        assert!(k >= 2, "cross-validation needs at least two folds");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut positives = self.task.positives.clone();
        let mut negatives = self.task.negatives.clone();
        positives.shuffle(&mut rng);
        negatives.shuffle(&mut rng);

        let pos_folds = partition(&positives, k);
        let neg_folds = partition(&negatives, k);

        (0..k)
            .map(|i| {
                let test_positives = pos_folds[i].clone();
                let test_negatives = neg_folds[i].clone();
                let train_pos: Vec<Tuple> = pos_folds
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, f)| f.clone())
                    .collect();
                let train_neg: Vec<Tuple> = neg_folds
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, f)| f.clone())
                    .collect();
                Fold {
                    train: self.task.with_examples(train_pos, train_neg),
                    test_positives,
                    test_negatives,
                }
            })
            .collect()
    }

    /// A single train/test split keeping `train_fraction` of the examples for
    /// training.
    pub fn train_test_split(&self, train_fraction: f64, seed: u64) -> Fold {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut positives = self.task.positives.clone();
        let mut negatives = self.task.negatives.clone();
        positives.shuffle(&mut rng);
        negatives.shuffle(&mut rng);
        let cut_pos = ((positives.len() as f64) * train_fraction).round() as usize;
        let cut_neg = ((negatives.len() as f64) * train_fraction).round() as usize;
        let (train_pos, test_pos) = positives.split_at(cut_pos.min(positives.len()));
        let (train_neg, test_neg) = negatives.split_at(cut_neg.min(negatives.len()));
        Fold {
            train: self
                .task
                .with_examples(train_pos.to_vec(), train_neg.to_vec()),
            test_positives: test_pos.to_vec(),
            test_negatives: test_neg.to_vec(),
        }
    }
}

fn partition(items: &[Tuple], k: usize) -> Vec<Vec<Tuple>> {
    let mut folds: Vec<Vec<Tuple>> = vec![Vec::new(); k];
    for (i, item) in items.iter().enumerate() {
        folds[i % k].push(item.clone());
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_core::TargetSpec;
    use dlearn_relstore::{tuple, Database, Value};

    fn dataset(n_pos: usize, n_neg: usize) -> Dataset {
        let mut task = LearningTask::new(Database::new(), TargetSpec::new("t", 1));
        for i in 0..n_pos {
            task.positives.push(tuple(vec![Value::int(i as i64)]));
        }
        for i in 0..n_neg {
            task.negatives
                .push(tuple(vec![Value::int(1000 + i as i64)]));
        }
        Dataset::new("toy", task)
    }

    #[test]
    fn folds_partition_all_examples_exactly_once() {
        let ds = dataset(23, 41);
        let folds = ds.cross_validation_folds(5, 3);
        assert_eq!(folds.len(), 5);
        let total_test_pos: usize = folds.iter().map(|f| f.test_positives.len()).sum();
        let total_test_neg: usize = folds.iter().map(|f| f.test_negatives.len()).sum();
        assert_eq!(total_test_pos, 23);
        assert_eq!(total_test_neg, 41);
        for f in &folds {
            assert_eq!(f.train.positives.len() + f.test_positives.len(), 23);
            assert_eq!(f.train.negatives.len() + f.test_negatives.len(), 41);
            // No test example appears in the training set.
            for e in &f.test_positives {
                assert!(!f.train.positives.contains(e));
            }
        }
    }

    #[test]
    fn train_test_split_respects_the_fraction() {
        let ds = dataset(20, 40);
        let fold = ds.train_test_split(0.75, 1);
        assert_eq!(fold.train.positives.len(), 15);
        assert_eq!(fold.test_positives.len(), 5);
        assert_eq!(fold.train.negatives.len(), 30);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn single_fold_cv_is_rejected() {
        dataset(4, 4).cross_validation_folds(1, 0);
    }
}
