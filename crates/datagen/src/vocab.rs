//! Synthetic vocabularies used to generate realistic entity names.

use rand::rngs::StdRng;
use rand::Rng;

/// Adjective-like words used in movie and product titles.
pub const ADJECTIVES: &[&str] = &[
    "Crimson",
    "Silent",
    "Golden",
    "Hidden",
    "Broken",
    "Electric",
    "Midnight",
    "Lonely",
    "Savage",
    "Velvet",
    "Frozen",
    "Burning",
    "Distant",
    "Gentle",
    "Hollow",
    "Iron",
    "Jade",
    "Lunar",
    "Mystic",
    "Northern",
    "Obsidian",
    "Pale",
    "Quiet",
    "Restless",
    "Scarlet",
    "Twisted",
    "Umber",
    "Violet",
    "Wandering",
    "Young",
];

/// Noun-like words used in movie and product titles.
pub const NOUNS: &[&str] = &[
    "Harbor",
    "Summit",
    "Valley",
    "Garden",
    "Empire",
    "Shadow",
    "River",
    "Canyon",
    "Horizon",
    "Meadow",
    "Fortress",
    "Lantern",
    "Mirror",
    "Orchard",
    "Passage",
    "Quarry",
    "Reef",
    "Sanctuary",
    "Threshold",
    "Voyage",
    "Whisper",
    "Archive",
    "Beacon",
    "Cascade",
    "Dominion",
    "Echo",
    "Frontier",
    "Glacier",
    "Harvest",
    "Island",
];

/// First names for synthetic people (cast, writers, authors).
pub const FIRST_NAMES: &[&str] = &[
    "James", "Maria", "Wei", "Aisha", "Carlos", "Yuki", "Nadia", "Tomas", "Ingrid", "Omar",
    "Priya", "Lucas", "Elena", "Hassan", "Greta", "Mateo", "Sofia", "Dmitri", "Amara", "Kenji",
];

/// Last names for synthetic people.
pub const LAST_NAMES: &[&str] = &[
    "Anderson",
    "Becker",
    "Chen",
    "Diallo",
    "Eriksen",
    "Fuentes",
    "Gupta",
    "Haddad",
    "Ivanov",
    "Johansson",
    "Kimura",
    "Lopez",
    "Moreau",
    "Nakamura",
    "Okafor",
    "Petrov",
    "Quinn",
    "Rossi",
    "Sato",
    "Tanaka",
];

/// Product brand names.
pub const BRANDS: &[&str] = &[
    "Tribeca",
    "Novatек",
    "Corelink",
    "Zenwave",
    "Brightpath",
    "Omnicore",
    "Vertex",
    "Lumina",
    "Apexio",
    "Quanta",
    "Nimbus",
    "Stratus",
];

/// Product nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "USB Hub",
    "Keyboard",
    "Laptop Sleeve",
    "Wireless Mouse",
    "HDMI Cable",
    "Monitor Stand",
    "Webcam",
    "Docking Station",
    "Headset",
    "Memory Card",
    "Desk Lamp",
    "Blender",
    "Coffee Maker",
    "Water Bottle",
    "Backpack",
    "Running Shoes",
    "Yoga Mat",
    "Toaster",
];

/// Research-area terms used in synthetic paper titles.
pub const RESEARCH_TERMS: &[&str] = &[
    "Query Optimization",
    "Entity Resolution",
    "Data Cleaning",
    "Schema Matching",
    "Relational Learning",
    "Stream Processing",
    "Graph Analytics",
    "Index Structures",
    "Transaction Processing",
    "Approximate Joins",
    "Knowledge Bases",
    "Crowdsourcing",
    "Provenance Tracking",
    "Workload Forecasting",
    "Cardinality Estimation",
];

/// Publication venues.
pub const VENUES: &[&str] = &[
    "SIGMOD", "VLDB", "ICDE", "EDBT", "CIKM", "KDD", "WSDM", "PODS",
];

/// Pick a uniformly random element of a slice.
pub fn pick<'a>(rng: &mut StdRng, items: &'a [&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

/// A synthetic movie title such as "Crimson Harbor" or "The Hidden Reef".
pub fn movie_title(rng: &mut StdRng) -> String {
    let adj = pick(rng, ADJECTIVES);
    let noun = pick(rng, NOUNS);
    match rng.gen_range(0..3) {
        0 => format!("{adj} {noun}"),
        1 => format!("The {adj} {noun}"),
        _ => format!("{adj} {noun} {}", pick(rng, NOUNS)),
    }
}

/// A synthetic person name "First Last".
pub fn person_name(rng: &mut StdRng) -> String {
    format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES))
}

/// A synthetic product title such as "Zenwave Wireless Mouse Pro 12".
pub fn product_title(rng: &mut StdRng) -> String {
    let brand = pick(rng, BRANDS);
    let noun = pick(rng, PRODUCT_NOUNS);
    let model = rng.gen_range(10..99);
    match rng.gen_range(0..3) {
        0 => format!("{brand} {noun} {model}"),
        1 => format!("{brand} {noun} Pro {model}"),
        _ => format!("{brand} {noun} Series {model}"),
    }
}

/// A synthetic paper title such as "Adaptive Entity Resolution over Streams".
pub fn paper_title(rng: &mut StdRng) -> String {
    let term = pick(rng, RESEARCH_TERMS);
    let term2 = pick(rng, RESEARCH_TERMS);
    match rng.gen_range(0..3) {
        0 => format!("Adaptive {term} at Scale"),
        1 => format!("{term} meets {term2}"),
        _ => format!("Efficient {term} for Modern Hardware"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generators_produce_nonempty_strings() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(!movie_title(&mut rng).is_empty());
            assert!(person_name(&mut rng).contains(' '));
            assert!(!product_title(&mut rng).is_empty());
            assert!(!paper_title(&mut rng).is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<String> = (0..10)
            .scan(StdRng::seed_from_u64(9), |r, _| Some(movie_title(r)))
            .collect();
        let b: Vec<String> = (0..10)
            .scan(StdRng::seed_from_u64(9), |r, _| Some(movie_title(r)))
            .collect();
        assert_eq!(a, b);
    }
}
