//! Value-level dirt: the representational heterogeneity between two data
//! sources describing the same entities.
//!
//! These perturbations emulate the differences the paper observes between
//! IMDB/OMDB titles, Walmart/Amazon product names and DBLP/Google-Scholar
//! paper titles: decorations (years, edition markers), dropped or reordered
//! tokens, abbreviations and typos — differences that defeat exact joins but
//! are recoverable by the similarity operator.

use rand::rngs::StdRng;
use rand::Rng;

/// Flip a biased coin.
pub fn chance(rng: &mut StdRng, p: f64) -> bool {
    rng.gen_bool(p.clamp(0.0, 1.0))
}

/// Decorate a title as the "other" source would spell it, e.g.
/// `"Crimson Harbor"` → `"Crimson Harbor (1987)"` or `"Crimson Harbor - 1987"`.
pub fn decorate_title(title: &str, year: i64, rng: &mut StdRng) -> String {
    match rng.gen_range(0..5) {
        0 => format!("{title} ({year})"),
        1 => format!("{title} - {year}"),
        2 => format!("{title}: Special Edition"),
        3 => drop_last_token(title),
        _ => format!("{} [{year}]", abbreviate_first_token(title)),
    }
}

/// Rewrite a person name the way a second source might record it, e.g.
/// `"James Chen"` → `"J. Chen"` or `"Chen, James"`.
pub fn perturb_name(name: &str, rng: &mut StdRng) -> String {
    let parts: Vec<&str> = name.split_whitespace().collect();
    if parts.len() < 2 {
        return name.to_string();
    }
    let (first, last) = (parts[0], parts[parts.len() - 1]);
    match rng.gen_range(0..3) {
        0 => format!("{}. {last}", &first[..1]),
        1 => format!("{last}, {first}"),
        _ => typo(name, rng),
    }
}

/// Introduce a single-character typo (swap or drop), keeping the string
/// non-empty.
pub fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 4 {
        return s.to_string();
    }
    let i = rng.gen_range(1..chars.len() - 1);
    let mut out = chars.clone();
    if rng.gen_bool(0.5) {
        out.swap(i, i - 1);
    } else {
        out.remove(i);
    }
    out.into_iter().collect()
}

/// Drop the last whitespace-separated token (if more than one).
pub fn drop_last_token(s: &str) -> String {
    let parts: Vec<&str> = s.split_whitespace().collect();
    if parts.len() <= 1 {
        return s.to_string();
    }
    parts[..parts.len() - 1].join(" ")
}

/// Abbreviate the first token to its initial plus a period.
pub fn abbreviate_first_token(s: &str) -> String {
    let mut parts: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
    if let Some(first) = parts.first_mut() {
        if first.len() > 2 {
            *first = format!("{}.", &first[..1]);
        }
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_similarity::SimilarityOperator;
    use rand::SeedableRng;

    #[test]
    fn decorated_titles_do_not_match_exactly_but_stay_similar() {
        let mut rng = StdRng::seed_from_u64(3);
        let op = SimilarityOperator::default();
        let mut similar = 0;
        let mut exact = 0;
        for _ in 0..40 {
            let title = "Crimson Harbor Voyage";
            let dirty = decorate_title(title, 1987, &mut rng);
            if dirty == title {
                exact += 1;
            }
            if op.similar(title, &dirty) {
                similar += 1;
            }
        }
        assert!(exact <= 4, "too many exact matches: {exact}");
        assert!(
            similar >= 30,
            "similarity should usually survive decoration: {similar}"
        );
    }

    #[test]
    fn name_perturbations_stay_recognizable() {
        let mut rng = StdRng::seed_from_u64(4);
        let op = SimilarityOperator::with_threshold(0.5);
        for _ in 0..20 {
            let p = perturb_name("James Chen", &mut rng);
            assert!(!p.is_empty());
            assert!(op.score("James Chen", &p) > 0.4, "perturbed too far: {p}");
        }
        assert_eq!(
            perturb_name("Cher", &mut rng),
            "Cher",
            "single tokens are left alone"
        );
    }

    #[test]
    fn typo_changes_long_strings_only_slightly() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = typo("Docking Station", &mut rng);
        assert!(t.len() + 1 >= "Docking Station".len());
        assert_eq!(typo("ab", &mut rng), "ab");
    }

    #[test]
    fn token_helpers_handle_single_tokens() {
        assert_eq!(drop_last_token("Single"), "Single");
        assert_eq!(drop_last_token("Two Tokens"), "Two");
        assert_eq!(abbreviate_first_token("James Chen"), "J. Chen");
        assert_eq!(abbreviate_first_token("Jo Chen"), "Jo Chen");
    }

    #[test]
    fn chance_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(6);
        let mut b = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            assert_eq!(chance(&mut a, 0.3), chance(&mut b, 0.3));
        }
    }
}
