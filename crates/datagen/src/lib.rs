//! # dlearn-datagen — synthetic dirty-data generators
//!
//! The paper evaluates DLearn on three integrated dataset pairs from the
//! Magellan repository (IMDB+OMDB, Walmart+Amazon, DBLP+Google Scholar). The
//! original data is not redistributable, so this crate synthesizes
//! structurally equivalent databases: two sources describing the same
//! entities whose shared keys are spelled differently (recoverable only by
//! the similarity operator / matching dependencies), target labels that
//! require crossing the similarity join, and configurable CFD-violation
//! injection (`p`), exactly mirroring Section 6.1 of the paper. See DESIGN.md
//! for the substitution rationale.
//!
//! * [`movies`] — IMDB+OMDB, target `dramaRestrictedMovies(imdbId)`.
//! * [`products`] — Walmart+Amazon, target `upcOfComputersAccessories(upc)`.
//! * [`citations`] — DBLP+Google Scholar, target `gsPaperYear(gsId, year)`.
//! * [`segments`] — a clean, tree-shaped segmentation target (six
//!   region-specific disjuncts) built to differentiate decision-tree from
//!   clausal-covering learners, target `premiumAccounts(accountId)`.
//! * [`dataset::Dataset`] — k-fold cross-validation splitting.
//! * [`violations::inject_cfd_violations`] — violation injection.

#![warn(missing_docs)]

pub mod citations;
pub mod dataset;
pub mod dirt;
pub mod movies;
pub mod products;
pub mod segments;
pub mod violations;
pub mod vocab;

pub use citations::{generate_citation_dataset, CitationConfig};
pub use dataset::{Dataset, Fold};
pub use movies::{generate_movie_dataset, MovieConfig};
pub use products::{generate_product_dataset, ProductConfig};
pub use segments::{generate_segment_dataset, SegmentConfig};
pub use violations::inject_cfd_violations;
