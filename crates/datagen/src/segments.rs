//! Synthetic customer-segmentation dataset with a tree-shaped target.
//!
//! Unlike the integration workloads ([`crate::movies`] and friends), this
//! scenario is designed around the *shape* of the concept rather than dirty
//! joins: `premiumAccounts(accountId)` is a disjunction of **six**
//! region-specific segments,
//!
//! ```text
//! premium(x) <- region(x, north)    ∧ tier(x, gold)
//! premium(x) <- region(x, south)    ∧ tier(x, silver)
//! premium(x) <- region(x, east)     ∧ channel(x, web)
//! premium(x) <- region(x, west)     ∧ channel(x, store)
//! premium(x) <- region(x, central)  ∧ tier(x, bronze)
//! premium(x) <- region(x, highland) ∧ channel(x, phone)
//! ```
//!
//! i.e. an attribute-split decision tree: first branch on the region, then on
//! a region-specific attribute. A clausal covering learner needs one clause
//! per segment, so any clause budget below six (e.g. the default
//! `LearnerConfig::fast()` cap of four) caps its recall at 4/6 regardless of
//! search quality — while a first-order decision tree (`Strategy::Tilde`)
//! branches per region without spending the clause budget and recovers every
//! segment. This is the scenario where TILDE measurably beats every clausal
//! strategy on held-out F1.
//!
//! The database is clean (no MDs, no CFDs): every strategy shares the same
//! hypothesis language, so differences are attributable to the search alone.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use dlearn_core::{LearningTask, TargetSpec};
use dlearn_relstore::{tuple, DatabaseBuilder, RelationBuilder, Value};

use crate::dataset::Dataset;

/// The regions, in segment order.
const REGIONS: [&str; 6] = ["north", "south", "east", "west", "central", "highland"];
/// Account tiers.
const TIERS: [&str; 3] = ["gold", "silver", "bronze"];
/// Acquisition channels.
const CHANNELS: [&str; 3] = ["web", "store", "phone"];

/// Which attribute a region's segment tests, and the value it requires.
enum SegmentRule {
    /// The region's premium accounts have this tier.
    Tier(&'static str),
    /// The region's premium accounts came through this channel.
    Channel(&'static str),
}

/// The six segment rules, index-aligned with [`REGIONS`].
const fn segment_rule(region_index: usize) -> SegmentRule {
    match region_index {
        0 => SegmentRule::Tier("gold"),
        1 => SegmentRule::Tier("silver"),
        2 => SegmentRule::Channel("web"),
        3 => SegmentRule::Channel("store"),
        4 => SegmentRule::Tier("bronze"),
        _ => SegmentRule::Channel("phone"),
    }
}

/// Probability that an account in region `i` takes its region's rule value
/// (and is therefore premium), index-aligned with [`REGIONS`]. The rates
/// differ per region on purpose: a real attribute-split tree has informative
/// splits at every level, and distinct per-region base rates give the region
/// tests entropy signal at the tree root (uniform rates would make every
/// first-level split zero-gain in expectation, stalling any greedy learner).
const RULE_RATES: [f64; 6] = [0.55, 0.45, 0.40, 0.30, 0.25, 0.20];

/// Configuration of the segmentation dataset generator.
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Number of accounts to generate.
    pub n_accounts: usize,
    /// Number of positive training examples to emit.
    pub n_positive: usize,
    /// Number of negative training examples to emit.
    pub n_negative: usize,
}

impl SegmentConfig {
    /// A tiny instance for unit tests and doc examples. Still large enough
    /// that each of the six segments keeps several positives per fold at
    /// 2-fold cross-validation.
    pub fn tiny() -> Self {
        SegmentConfig {
            n_accounts: 240,
            n_positive: 48,
            n_negative: 72,
        }
    }

    /// A small instance for integration tests and benchmarks.
    pub fn small() -> Self {
        SegmentConfig {
            n_accounts: 360,
            n_positive: 72,
            n_negative: 108,
        }
    }

    /// The scale used by the experiment runner.
    pub fn paper() -> Self {
        SegmentConfig {
            n_accounts: 480,
            n_positive: 96,
            n_negative: 144,
        }
    }

    /// Set the number of training examples.
    pub fn with_examples(mut self, positives: usize, negatives: usize) -> Self {
        self.n_positive = positives;
        self.n_negative = negatives;
        self
    }
}

/// Generate the segmentation dataset.
pub fn generate_segment_dataset(config: &SegmentConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);

    let mut builder = DatabaseBuilder::new()
        .relation(
            RelationBuilder::new("acct_region")
                .int_attr("id")
                .str_attr("region")
                .build(),
        )
        .relation(
            RelationBuilder::new("acct_tier")
                .int_attr("id")
                .str_attr("tier")
                .build(),
        )
        .relation(
            RelationBuilder::new("acct_channel")
                .int_attr("id")
                .str_attr("channel")
                .build(),
        );

    let mut positive_ids: Vec<i64> = Vec::new();
    let mut negative_ids: Vec<i64> = Vec::new();

    for i in 0..config.n_accounts {
        let id = i as i64;
        // Cycle regions so every segment is equally represented. The rule
        // attribute takes the region's rule value with the region's base
        // rate; the other attribute is uniform noise.
        let region_index = i % REGIONS.len();
        let takes_rule_value = rng.gen_range(0.0..1.0) < RULE_RATES[region_index];
        let pick_other = |rng: &mut StdRng, pool: &[&'static str], exclude: &str| {
            let others: Vec<&'static str> =
                pool.iter().copied().filter(|v| *v != exclude).collect();
            others[rng.gen_range(0..others.len())]
        };
        let (tier, channel, positive) = match segment_rule(region_index) {
            SegmentRule::Tier(t) => {
                let tier = if takes_rule_value {
                    t
                } else {
                    pick_other(&mut rng, &TIERS, t)
                };
                let channel = CHANNELS[rng.gen_range(0..CHANNELS.len())];
                (tier, channel, tier == t)
            }
            SegmentRule::Channel(c) => {
                let channel = if takes_rule_value {
                    c
                } else {
                    pick_other(&mut rng, &CHANNELS, c)
                };
                let tier = TIERS[rng.gen_range(0..TIERS.len())];
                (tier, channel, channel == c)
            }
        };

        builder = builder
            .row(
                "acct_region",
                vec![Value::int(id), Value::str(REGIONS[region_index])],
            )
            .row("acct_tier", vec![Value::int(id), Value::str(tier)])
            .row("acct_channel", vec![Value::int(id), Value::str(channel)]);

        if positive {
            positive_ids.push(id);
        } else {
            negative_ids.push(id);
        }
    }

    let mut task = LearningTask::new(
        builder.build(),
        TargetSpec::with_attributes("premiumAccounts", vec!["accountId"]),
    );
    for (rel, attr) in [
        ("acct_region", "region"),
        ("acct_tier", "tier"),
        ("acct_channel", "channel"),
    ] {
        task.add_constant_attribute(rel, attr);
    }

    // Stratify positives by region so every segment stays learnable at every
    // fold split (uniform sampling can starve a segment at tiny scales);
    // negatives are a plain uniform sample.
    sample_positives_stratified(&mut rng, &mut positive_ids, config.n_positive);
    sample_examples(&mut rng, &mut negative_ids, config.n_negative);
    task.positives = positive_ids
        .iter()
        .map(|&id| tuple(vec![Value::int(id)]))
        .collect();
    task.negatives = negative_ids
        .iter()
        .map(|&id| tuple(vec![Value::int(id)]))
        .collect();

    Dataset::new("Customer segments (tree-shaped)", task)
}

fn sample_examples(rng: &mut StdRng, ids: &mut Vec<i64>, n: usize) {
    ids.shuffle(rng);
    ids.truncate(n);
    ids.sort_unstable();
}

/// Take `n` positives spread evenly over the regions (accounts cycle regions,
/// so an id's region is `id % 6`), round-robin until the quota is met.
fn sample_positives_stratified(rng: &mut StdRng, ids: &mut Vec<i64>, n: usize) {
    let mut by_region: Vec<Vec<i64>> = vec![Vec::new(); REGIONS.len()];
    for &id in ids.iter() {
        by_region[(id as usize) % REGIONS.len()].push(id);
    }
    for bucket in &mut by_region {
        bucket.shuffle(rng);
    }
    let mut taken: Vec<i64> = Vec::with_capacity(n);
    let mut round = 0;
    while taken.len() < n && by_region.iter().any(|b| b.len() > round) {
        for bucket in &by_region {
            if taken.len() == n {
                break;
            }
            if let Some(&id) = bucket.get(round) {
                taken.push(id);
            }
        }
        round += 1;
    }
    taken.sort_unstable();
    *ids = taken;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_relstore::Value;

    #[test]
    fn generated_task_is_valid_and_has_requested_examples() {
        let ds = generate_segment_dataset(&SegmentConfig::tiny(), 42);
        assert!(ds.task.validate().is_ok());
        assert_eq!(ds.task.positives.len(), 48);
        assert_eq!(ds.task.negatives.len(), 72);
        assert!(ds.task.mds.is_empty(), "the scenario is deliberately clean");
        assert!(ds.task.cfds.is_empty());
    }

    #[test]
    fn positives_satisfy_their_region_rule() {
        let ds = generate_segment_dataset(&SegmentConfig::tiny(), 7);
        let db = &ds.task.database;
        for e in &ds.task.positives {
            let id = e.value(0).unwrap();
            let region = *db.select_eq("acct_region", "id", id).unwrap()[0]
                .value(1)
                .unwrap();
            let region_index = REGIONS
                .iter()
                .position(|r| region == Value::str(*r))
                .expect("a known region");
            let (rel, value) = match segment_rule(region_index) {
                SegmentRule::Tier(t) => ("acct_tier", t),
                SegmentRule::Channel(c) => ("acct_channel", c),
            };
            let actual = *db.select_eq(rel, "id", id).unwrap()[0].value(1).unwrap();
            assert_eq!(actual, Value::str(value), "account {id:?} in {region:?}");
        }
    }

    #[test]
    fn every_segment_contributes_positives() {
        let ds = generate_segment_dataset(&SegmentConfig::tiny(), 11);
        let db = &ds.task.database;
        let mut per_region = [0usize; 6];
        for e in &ds.task.positives {
            let id = e.value(0).unwrap();
            let region = *db.select_eq("acct_region", "id", id).unwrap()[0]
                .value(1)
                .unwrap();
            let idx = REGIONS
                .iter()
                .position(|r| region == Value::str(*r))
                .unwrap();
            per_region[idx] += 1;
        }
        assert!(
            per_region.iter().all(|&n| n >= 2),
            "every segment needs enough positives to be learnable: {per_region:?}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_segment_dataset(&SegmentConfig::tiny(), 9);
        let b = generate_segment_dataset(&SegmentConfig::tiny(), 9);
        assert_eq!(a.task.database.summary(), b.task.database.summary());
        assert_eq!(a.task.positives, b.task.positives);
        assert_eq!(a.task.negatives, b.task.negatives);
    }
}
