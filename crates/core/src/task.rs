//! Learning tasks: the dirty database, its constraints, and the training
//! examples.

use std::collections::{BTreeMap, BTreeSet};

use dlearn_constraints::{Cfd, MatchingDependency};
use dlearn_relstore::{Database, RelId, StoreError, Sym, Tuple};

/// The target relation to learn, e.g. `highGrossing(title)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetSpec {
    /// Relation name of the target.
    pub name: String,
    /// Attribute names of the target relation. Matching dependencies whose
    /// left-hand relation is the target refer to these names.
    pub attributes: Vec<String>,
}

impl TargetSpec {
    /// Create a target spec with generic attribute names `arg0..argN`.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        TargetSpec {
            name: name.into(),
            attributes: (0..arity).map(|i| format!("arg{i}")).collect(),
        }
    }

    /// Create a target spec with explicit attribute names.
    pub fn with_attributes(name: impl Into<String>, attributes: Vec<&str>) -> Self {
        TargetSpec {
            name: name.into(),
            attributes: attributes.into_iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Arity of the target relation.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }
}

/// A relational learning task over a dirty database.
///
/// Besides the database, constraints and examples, the task lists the
/// *constant attributes*: attributes whose values are kept as constants in
/// clauses (categorical attributes such as genres, ratings or categories)
/// rather than being variablized. This plays the role of the mode/type
/// declarations used by Castor-style learners.
#[derive(Debug, Clone)]
pub struct LearningTask {
    /// The (dirty) background database.
    pub database: Database,
    /// Matching dependencies over the database.
    pub mds: Vec<MatchingDependency>,
    /// Conditional functional dependencies over the database.
    pub cfds: Vec<Cfd>,
    /// The target relation.
    pub target: TargetSpec,
    /// Positive examples (tuples of the target relation).
    pub positives: Vec<Tuple>,
    /// Negative examples (tuples of the target relation).
    pub negatives: Vec<Tuple>,
    /// `(relation, attribute)` pairs whose values stay constants in clauses.
    pub constant_attributes: BTreeSet<(RelId, Sym)>,
    /// Data source of each relation (e.g. `imdb` vs `omdb`). When sources are
    /// declared, exact value joins are only followed *within* a source;
    /// crossing sources requires a matching dependency. An empty map places
    /// every relation in one implicit source (no restriction).
    pub sources: BTreeMap<String, String>,
    /// Source the target relation's values come from (used as the source of
    /// the example values during the relevant-tuple walk).
    pub target_source: Option<String>,
}

impl LearningTask {
    /// Create a task with no examples and no constraints.
    pub fn new(database: Database, target: TargetSpec) -> Self {
        LearningTask {
            database,
            mds: Vec::new(),
            cfds: Vec::new(),
            target,
            positives: Vec::new(),
            negatives: Vec::new(),
            constant_attributes: BTreeSet::new(),
            sources: BTreeMap::new(),
            target_source: None,
        }
    }

    /// Assign a relation to a named data source.
    pub fn add_source(&mut self, relation: impl Into<String>, source: impl Into<String>) {
        self.sources.insert(relation.into(), source.into());
    }

    /// The source of a relation, when sources are declared.
    pub fn source_of(&self, relation: &str) -> Option<&str> {
        self.sources.get(relation).map(|s| s.as_str())
    }

    /// Mark an attribute as constant-valued for clause construction.
    pub fn add_constant_attribute(
        &mut self,
        relation: impl Into<RelId>,
        attribute: impl AsRef<str>,
    ) {
        self.constant_attributes
            .insert((relation.into(), Sym::intern(attribute)));
    }

    /// `true` when the attribute's values should appear as constants.
    pub fn is_constant_attribute(
        &self,
        relation: impl Into<RelId>,
        attribute_index: usize,
    ) -> bool {
        let id = relation.into();
        let Some(rel) = self.database.schema().relation(id) else {
            return false;
        };
        let Some(attr) = rel.attribute(attribute_index) else {
            return false;
        };
        self.constant_attributes.contains(&(id, attr.name))
    }

    /// Validate the task: constraints and declarations must reference
    /// existing relations and attributes, and examples must have the target
    /// arity.
    ///
    /// References to the *target* relation are resolved against the task's
    /// [`TargetSpec`] (the target is added to the database by
    /// `augment_with_target` before learning, so an MD whose left-hand side
    /// is the target is valid even though the relation holds no stored
    /// tuples yet). Errors carry the offending declaration's name via
    /// [`StoreError::InContext`].
    pub fn validate(&self) -> Result<(), StoreError> {
        let schema = self.schema_with_target();
        for md in &self.mds {
            md.validate(&schema)
                .map_err(|e| e.in_context(format!("MD '{}'", md.name)))?;
        }
        for cfd in &self.cfds {
            cfd.validate(&schema)
                .map_err(|e| e.in_context(format!("CFD '{}'", cfd.name)))?;
        }
        for &(rel, attr) in &self.constant_attributes {
            let context = "constant-attribute declaration";
            let relation = schema
                .require_relation(rel)
                .map_err(|e| e.in_context(context))?;
            relation
                .require_attribute_index(attr.as_str())
                .map_err(|e| e.in_context(context))?;
        }
        for e in self.positives.iter().chain(self.negatives.iter()) {
            if e.arity() != self.target.arity() {
                return Err(StoreError::ArityMismatch {
                    relation: self.target.name.clone(),
                    expected: self.target.arity(),
                    actual: e.arity(),
                });
            }
        }
        Ok(())
    }

    /// The database schema extended with the target relation (string-typed
    /// attributes) when the database does not already hold it — the schema
    /// constraints are validated against.
    fn schema_with_target(&self) -> dlearn_relstore::Schema {
        let mut schema = self.database.schema().clone();
        if !schema.contains(&self.target.name) {
            let attrs = self
                .target
                .attributes
                .iter()
                .map(dlearn_relstore::Attribute::str)
                .collect();
            let _ = schema.add_relation(dlearn_relstore::RelationSchema::new(
                self.target.name.clone(),
                attrs,
            ));
        }
        schema
    }

    /// A copy of this task with different example sets (used by
    /// cross-validation to build per-fold training tasks).
    pub fn with_examples(&self, positives: Vec<Tuple>, negatives: Vec<Tuple>) -> Self {
        let mut t = self.clone();
        t.positives = positives;
        t.negatives = negatives;
        t
    }

    /// Total number of training examples.
    pub fn example_count(&self) -> usize {
        self.positives.len() + self.negatives.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_relstore::{tuple, DatabaseBuilder, RelationBuilder, Value};

    fn small_task() -> LearningTask {
        let db = DatabaseBuilder::new()
            .relation(
                RelationBuilder::new("movies")
                    .int_attr("id")
                    .str_attr("title")
                    .build(),
            )
            .relation(
                RelationBuilder::new("mov2genres")
                    .int_attr("id")
                    .str_attr("genre")
                    .build(),
            )
            .row("movies", vec![Value::int(1), Value::str("Superbad")])
            .row("mov2genres", vec![Value::int(1), Value::str("comedy")])
            .build();
        let mut task = LearningTask::new(db, TargetSpec::new("highGrossing", 1));
        task.positives.push(tuple(vec![Value::str("Superbad")]));
        task.negatives.push(tuple(vec![Value::str("Orphanage")]));
        task.add_constant_attribute("mov2genres", "genre");
        task
    }

    #[test]
    fn valid_task_passes_validation() {
        assert!(small_task().validate().is_ok());
    }

    #[test]
    fn example_arity_is_checked() {
        let mut task = small_task();
        task.positives
            .push(tuple(vec![Value::str("a"), Value::str("b")]));
        assert!(task.validate().is_err());
    }

    #[test]
    fn md_validation_is_applied() {
        let mut task = small_task();
        task.mds.push(MatchingDependency::simple(
            "bad", "movies", "missing", "movies", "title",
        ));
        assert!(task.validate().is_err());
    }

    #[test]
    fn constant_attributes_are_resolved_by_index() {
        let task = small_task();
        assert!(task.is_constant_attribute("mov2genres", 1));
        assert!(!task.is_constant_attribute("mov2genres", 0));
        assert!(!task.is_constant_attribute("movies", 1));
        assert!(!task.is_constant_attribute("unknown", 0));
    }

    #[test]
    fn with_examples_replaces_example_sets() {
        let task = small_task();
        let t2 = task.with_examples(vec![], vec![tuple(vec![Value::str("x")])]);
        assert_eq!(t2.positives.len(), 0);
        assert_eq!(t2.negatives.len(), 1);
        assert_eq!(task.positives.len(), 1, "original task is untouched");
        assert_eq!(t2.example_count(), 1);
    }
}
