//! The fallible public surface: every error a prepared [`crate::Engine`]
//! session or a bound [`crate::Predictor`] can report.
//!
//! The paper's pipeline has plenty of places where a malformed task used to
//! surface as a panic deep inside bottom-clause construction (an MD naming a
//! relation that does not exist, an example tuple of the wrong arity, …).
//! [`DlearnError`] moves all of those to `Engine::prepare`/`predict` time as
//! typed variants, so serving callers can reject bad input without tearing
//! down the process.

use std::fmt;

use dlearn_relstore::StoreError;

/// Errors of the public learning/serving API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DlearnError {
    /// A schema-level reference error: the task's database, constraints or
    /// declarations reference an unknown relation/attribute, or a tuple does
    /// not fit its schema. Wraps the store's own error, usually inside a
    /// [`StoreError::InContext`] naming the offending declaration.
    Store(StoreError),
    /// An example tuple's arity does not match the target relation's.
    ExampleArity {
        /// Arity declared by the task's [`crate::TargetSpec`].
        expected: usize,
        /// Arity of the offending example tuple.
        actual: usize,
        /// Position of the tuple in the example list.
        index: usize,
        /// `true` when the tuple is a positive example.
        positive: bool,
    },
    /// The task has no positive examples; a covering learner cannot learn a
    /// definition from negatives alone.
    EmptyPositives,
    /// A tuple handed to [`crate::Predictor::predict`] /
    /// [`crate::Predictor::predict_batch`] does not have the target
    /// relation's arity.
    PredictArity {
        /// Arity of the target relation the model was learned for.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
        /// Position of the tuple in the batch (0 for single predictions).
        index: usize,
    },
    /// A configuration field holds a value the learner cannot run with.
    InvalidConfig {
        /// The offending [`crate::LearnerConfig`] field.
        field: &'static str,
        /// Why the value is rejected.
        reason: String,
    },
    /// A served example blew through its per-call deadline
    /// ([`crate::Budget::deadline`]): grounding plus coverage did not finish
    /// in time and the search was cooperatively cancelled. Only the affected
    /// example reports this; the rest of the batch completes.
    DeadlineExceeded {
        /// The deadline that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// A worker thread panicked while processing one example. The panic was
    /// caught at the chunk boundary, the example's tuple was quarantined from
    /// the serving cache, and the rest of the batch completed.
    WorkerPanicked {
        /// Which pipeline stage panicked (e.g. `"serve"`, `"prepare"`).
        site: &'static str,
        /// The panic payload's message, when it was a string.
        message: String,
    },
    /// A delta transaction named a relation the session's database does not
    /// have. The engine state is untouched.
    DeltaUnknownRelation {
        /// The unknown relation name.
        relation: String,
    },
    /// A delta operation's tuple does not match the relation's arity. The
    /// engine state is untouched.
    DeltaArityMismatch {
        /// Relation the operation targeted.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A delta tried to delete a tuple that is not present. The engine state
    /// is untouched.
    DeltaAbsentTuple {
        /// Relation the delete targeted.
        relation: String,
        /// Display form of the missing tuple.
        tuple: String,
    },
    /// [`crate::Engine::apply_delta`] was called on an engine quarantined by
    /// an earlier mid-delta panic; its incremental state can no longer be
    /// trusted and the session must be rebuilt with [`crate::Engine::prepare`].
    DeltaQuarantined,
    /// [`crate::PredictorService::apply_delta`] was handed a delta report
    /// whose sequence number does not chain from the model the service is
    /// currently serving (or a predictor not rebound at that sequence):
    /// deltas were applied out of order, skipped, or came from a different
    /// engine session. The served model is untouched.
    DeltaEpochMismatch {
        /// Delta sequence of the model the service is serving.
        served: u64,
        /// Sequence number carried by the rejected report.
        report: u64,
    },
    /// The service's swap path is quarantined after a panic mid-publication:
    /// the previous epoch keeps serving reads, but selective
    /// [`crate::PredictorService::apply_delta`] calls are refused until a
    /// clean full [`crate::PredictorService::publish`] installs a fresh
    /// epoch.
    SwapQuarantined,
    /// A request was submitted to a [`crate::Coalescer`] whose batcher has
    /// shut down (the coalescer was dropped, or its queue was closed while
    /// the request waited). The request was never served.
    CoalescerClosed,
}

impl fmt::Display for DlearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlearnError::Store(e) => write!(f, "invalid task: {e}"),
            DlearnError::ExampleArity {
                expected,
                actual,
                index,
                positive,
            } => write!(
                f,
                "{} example #{index} has arity {actual}, target expects {expected}",
                if *positive { "positive" } else { "negative" }
            ),
            DlearnError::EmptyPositives => {
                write!(f, "task has no positive examples to learn from")
            }
            DlearnError::PredictArity {
                expected,
                actual,
                index,
            } => write!(
                f,
                "prediction tuple #{index} has arity {actual}, target expects {expected}"
            ),
            DlearnError::InvalidConfig { field, reason } => {
                write!(f, "invalid config field `{field}`: {reason}")
            }
            DlearnError::DeadlineExceeded { budget_ms } => {
                write!(f, "serving deadline of {budget_ms}ms exceeded")
            }
            DlearnError::WorkerPanicked { site, message } => {
                write!(f, "worker panicked at `{site}`: {message}")
            }
            DlearnError::DeltaUnknownRelation { relation } => {
                write!(f, "delta references unknown relation '{relation}'")
            }
            DlearnError::DeltaArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "delta tuple for relation '{relation}' has arity {actual}, schema expects {expected}"
            ),
            DlearnError::DeltaAbsentTuple { relation, tuple } => {
                write!(f, "delta deletes absent tuple {tuple} from relation '{relation}'")
            }
            DlearnError::DeltaQuarantined => write!(
                f,
                "engine is quarantined after a failed delta; rebuild the session with Engine::prepare"
            ),
            DlearnError::DeltaEpochMismatch { served, report } => write!(
                f,
                "delta report sequence {report} does not chain from the served model's sequence \
                 {served}; apply engine deltas in order and re-bind the predictor before \
                 PredictorService::apply_delta"
            ),
            DlearnError::SwapQuarantined => write!(
                f,
                "service swap path is quarantined after a mid-publication panic; recover with a \
                 full PredictorService::publish"
            ),
            DlearnError::CoalescerClosed => {
                write!(f, "coalescer is shut down; the request was not served")
            }
        }
    }
}

impl std::error::Error for DlearnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DlearnError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for DlearnError {
    fn from(e: StoreError) -> Self {
        DlearnError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_actionable_messages() {
        let e = DlearnError::from(
            StoreError::UnknownRelation("omdb_movies".into()).in_context("MD 'titles'"),
        );
        let msg = e.to_string();
        assert!(msg.contains("MD 'titles'"), "{msg}");
        assert!(msg.contains("omdb_movies"), "{msg}");

        let e = DlearnError::ExampleArity {
            expected: 1,
            actual: 3,
            index: 4,
            positive: false,
        };
        assert!(e.to_string().contains("negative example #4"), "{e}");
        assert!(DlearnError::EmptyPositives.to_string().contains("positive"));
    }

    #[test]
    fn store_errors_keep_their_source_chain() {
        use std::error::Error;
        let e = DlearnError::from(StoreError::UnknownRelation("x".into()));
        assert!(e.source().is_some());
        assert!(DlearnError::EmptyPositives.source().is_none());
    }
}
