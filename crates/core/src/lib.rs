//! # dlearn-core — learning over dirty data without cleaning
//!
//! The primary contribution of the paper: a bottom-up relational learner
//! (in the ProGolem/Castor family) that learns Horn-clause definitions of a
//! target relation **directly over a dirty, heterogeneous database**, using
//! matching dependencies and conditional functional dependencies to encode
//! the space of possible repairs inside the learned clauses instead of
//! cleaning the data first.
//!
//! The pipeline is:
//!
//! 1. [`bottom::BottomClauseBuilder`] builds the most specific clause
//!    covering a training example, following exact and similarity joins and
//!    attaching MD/CFD repair literals (Section 4.1).
//! 2. [`generalize::generalize`] drops blocking literals so the clause also
//!    covers further positive examples (Section 4.2).
//! 3. [`coverage::CoverageEngine`] scores candidate clauses with
//!    θ-subsumption-based coverage tests under the repair semantics of
//!    Definitions 3.4 / 3.6 (Section 4.3).
//! 4. [`engine::Engine`] prepares the expensive per-database artifacts (the
//!    MD similarity index, the ground bottom clauses of the training
//!    examples) **once**, runs any [`Strategy`] against them — the paper's
//!    five systems plus the extension learners [`Strategy::Foil`] (top-down
//!    information-gain refinement) and [`Strategy::Tilde`] (first-order
//!    decision trees), both implemented in the `learn` subsystem over the
//!    same prepared state — and binds learned definitions to
//!    [`engine::Predictor`]s for batched serving.
//!
//! The main entry point is [`Engine`]: prepare once, learn and serve many
//! times.
//!
//! ```
//! use dlearn_core::{Engine, LearnerConfig, LearningTask, Strategy, TargetSpec};
//! use dlearn_relstore::{tuple, DatabaseBuilder, RelationBuilder, Value};
//!
//! let db = DatabaseBuilder::new()
//!     .relation(RelationBuilder::new("movies").int_attr("id").str_attr("title").build())
//!     .relation(RelationBuilder::new("genres").int_attr("id").str_attr("genre").build())
//!     .row("movies", vec![Value::int(1), Value::str("Superbad")])
//!     .row("genres", vec![Value::int(1), Value::str("comedy")])
//!     .build();
//! let mut task = LearningTask::new(db, TargetSpec::new("hit", 1));
//! task.add_constant_attribute("genres", "genre");
//! task.positives.push(tuple(vec![Value::int(1)]));
//!
//! // Prepare the session once: validates the task and builds the shared
//! // similarity index and ground examples. Malformed tasks are typed
//! // `DlearnError`s here, not panics later.
//! let engine = Engine::prepare(task, LearnerConfig::fast())?;
//!
//! // Learn with any strategy against the shared prepared state: the five
//! // paper systems (`DLearn`, `CastorNoMd`, `CastorExact`, `CastorClean`,
//! // `DLearnRepaired`) or the extension learners (`Foil`, `Tilde`) —
//! // `Strategy::ALL` enumerates all seven.
//! let learned = engine.learn(Strategy::DLearn)?;
//! assert!(learned.clauses().len() <= 4);
//! assert_eq!(Strategy::ALL.len(), 7);
//!
//! // Bind the definition for serving: `predict_batch` grounds and tests
//! // examples in parallel, deterministically.
//! let predictor = engine.predictor(&learned)?;
//! let verdicts = predictor.predict_batch(&[tuple(vec![Value::int(1)])])?;
//! assert_eq!(verdicts.len(), 1);
//! # Ok::<(), dlearn_core::DlearnError>(())
//! ```

#![warn(missing_docs)]

pub mod bottom;
pub mod coalesce;
pub mod config;
pub mod coverage;
pub mod delta;
pub mod engine;
pub mod error;
mod fault;
pub mod generalize;
pub(crate) mod learn;
pub mod learner;
pub mod model;
mod par;
pub mod service;
pub mod swap;
pub mod task;

pub use bottom::{BottomClauseBuilder, ProbeLog};
pub use coalesce::{CoalesceConfig, CoalesceMetrics, Coalescer};
pub use config::LearnerConfig;
pub use coverage::{
    CoverageCounts, CoverageEngine, CoverageOutcome, GroundExample, GroundPatchStats,
    PreparedClause,
};
pub use delta::DeltaReport;
pub use engine::{Engine, Learned, Predictor};
pub use error::DlearnError;
pub use generalize::{generalize, generalize_prepared};
pub use learner::{augment_with_target, baselines, DLearn, LearnOutcome, Learner, Strategy};
pub use model::{ClauseStats, LearnedModel};
pub use service::{
    Budget, PredictorService, ServeResult, ServeVerdict, ServiceConfig, ServiceMetrics,
};
pub use swap::SwapCell;
pub use task::{LearningTask, TargetSpec};
