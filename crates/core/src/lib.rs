//! # dlearn-core — learning over dirty data without cleaning
//!
//! The primary contribution of the paper: a bottom-up relational learner
//! (in the ProGolem/Castor family) that learns Horn-clause definitions of a
//! target relation **directly over a dirty, heterogeneous database**, using
//! matching dependencies and conditional functional dependencies to encode
//! the space of possible repairs inside the learned clauses instead of
//! cleaning the data first.
//!
//! The pipeline is:
//!
//! 1. [`bottom::BottomClauseBuilder`] builds the most specific clause
//!    covering a training example, following exact and similarity joins and
//!    attaching MD/CFD repair literals (Section 4.1).
//! 2. [`generalize::generalize`] drops blocking literals so the clause also
//!    covers further positive examples (Section 4.2).
//! 3. [`coverage::CoverageEngine`] scores candidate clauses with
//!    θ-subsumption-based coverage tests under the repair semantics of
//!    Definitions 3.4 / 3.6 (Section 4.3).
//! 4. [`learner::Learner`] wraps everything in the covering loop
//!    (Algorithm 1) and implements the paper's baselines (Castor-NoMD,
//!    Castor-Exact, Castor-Clean, DLearn-Repaired) as strategies.
//!
//! The main entry point is [`DLearn`]:
//!
//! ```
//! use dlearn_core::{DLearn, LearnerConfig, LearningTask, TargetSpec};
//! use dlearn_relstore::{tuple, DatabaseBuilder, RelationBuilder, Value};
//!
//! let db = DatabaseBuilder::new()
//!     .relation(RelationBuilder::new("movies").int_attr("id").str_attr("title").build())
//!     .relation(RelationBuilder::new("genres").int_attr("id").str_attr("genre").build())
//!     .row("movies", vec![Value::int(1), Value::str("Superbad")])
//!     .row("genres", vec![Value::int(1), Value::str("comedy")])
//!     .build();
//! let mut task = LearningTask::new(db, TargetSpec::new("hit", 1));
//! task.add_constant_attribute("genres", "genre");
//! task.positives.push(tuple(vec![Value::int(1)]));
//! let mut learner = DLearn::new(LearnerConfig::fast());
//! let model = learner.learn(&task);
//! assert!(model.clauses().len() <= 4);
//! ```

#![warn(missing_docs)]

pub mod bottom;
pub mod config;
pub mod coverage;
pub mod generalize;
pub mod learner;
pub mod model;
mod par;
pub mod task;

pub use bottom::BottomClauseBuilder;
pub use config::LearnerConfig;
pub use coverage::{CoverageCounts, CoverageEngine, GroundExample, PreparedClause};
pub use generalize::{generalize, generalize_prepared};
pub use learner::{augment_with_target, baselines, DLearn, LearnOutcome, Learner, Strategy};
pub use model::{ClauseStats, LearnedModel};
pub use task::{LearningTask, TargetSpec};
