//! Order-preserving chunked parallel map, shared by the coverage engine and
//! the covering loop's generalization fan-out.
//!
//! Determinism lives here: items are split into contiguous chunks, each
//! chunk is mapped on one `std::thread::scope` worker, and the per-chunk
//! results are concatenated in chunk order — so the output is always
//! element-for-element identical to the serial map, at any thread count.

/// Map `f` over `items`, fanning out across at most `threads` scoped worker
/// threads in contiguous chunks. `f` receives each item's global index.
/// Runs serially when `threads <= 1` or there are fewer than `min_items`
/// items (not worth the spawn overhead). The result order always matches
/// `items` order.
pub(crate) fn chunked_map<T, R, F>(items: &[T], threads: usize, min_items: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len().max(1));
    if threads <= 1 || items.len() < min_items {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (ci, chunk_items) in items.chunks(chunk).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || {
                chunk_items
                    .iter()
                    .enumerate()
                    .map(|(i, t)| f(ci * chunk + i, t))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_matches_input_order_at_any_thread_count() {
        let items: Vec<u32> = (0..37).collect();
        let serial = chunked_map(&items, 1, 0, |i, &x| (i, x * 2));
        for threads in [2, 3, 8, 64] {
            let parallel = chunked_map(&items, threads, 0, |i, &x| (i, x * 2));
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn small_inputs_run_serially() {
        let items = [1, 2, 3];
        let mapped = chunked_map(&items, 8, 8, |i, &x| i + x);
        assert_eq!(mapped, vec![1, 3, 5]);
    }

    #[test]
    fn global_indices_are_correct_across_chunks() {
        let items: Vec<usize> = (0..100).collect();
        let mapped = chunked_map(&items, 7, 2, |i, &x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(mapped, items);
    }
}
