//! Order-preserving chunked parallel map, shared by the coverage engine and
//! the covering loop's generalization fan-out.
//!
//! Determinism lives here: items are split into contiguous chunks, each
//! chunk is mapped on one `std::thread::scope` worker, and the per-chunk
//! results are concatenated in chunk order — so the output is always
//! element-for-element identical to the serial map, at any thread count.

/// Map `f` over `items`, fanning out across at most `threads` scoped worker
/// threads in contiguous chunks. `f` receives each item's global index.
/// Runs serially when `threads <= 1` or there are fewer than `min_items`
/// items (not worth the spawn overhead). The result order always matches
/// `items` order.
pub(crate) fn chunked_map<T, R, F>(items: &[T], threads: usize, min_items: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len().max(1));
    if threads <= 1 || items.len() < min_items {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (ci, chunk_items) in items.chunks(chunk).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || {
                chunk_items
                    .iter()
                    .enumerate()
                    .map(|(i, t)| f(ci * chunk + i, t))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            // Re-raise the original payload on the calling thread so callers
            // that wrap the whole map in `catch_unwind` (Engine::prepare) see
            // the worker's message, not a generic join error.
            out.push(
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload)),
            );
        }
    });
    out.into_iter().flatten().collect()
}

/// [`chunked_map`] with per-item panic isolation: each item is mapped inside
/// `catch_unwind`, so one poisoned item yields `Err(message)` in its slot
/// while every other item completes normally. Output order still matches
/// `items` order at any thread count.
pub(crate) fn chunked_map_catching<T, R, F>(
    items: &[T],
    threads: usize,
    min_items: usize,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    chunked_map(items, threads, min_items, |i, t| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, t)))
            .map_err(|payload| panic_message(&*payload))
    })
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_matches_input_order_at_any_thread_count() {
        let items: Vec<u32> = (0..37).collect();
        let serial = chunked_map(&items, 1, 0, |i, &x| (i, x * 2));
        for threads in [2, 3, 8, 64] {
            let parallel = chunked_map(&items, threads, 0, |i, &x| (i, x * 2));
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn small_inputs_run_serially() {
        let items = [1, 2, 3];
        let mapped = chunked_map(&items, 8, 8, |i, &x| i + x);
        assert_eq!(mapped, vec![1, 3, 5]);
    }

    #[test]
    fn catching_map_isolates_a_single_panicking_item() {
        let items: Vec<u32> = (0..20).collect();
        for threads in [1, 2, 8] {
            let mapped = chunked_map_catching(&items, threads, 0, |_, &x| {
                if x == 7 {
                    panic!("poisoned item {x}");
                }
                x * 2
            });
            for (i, r) in mapped.iter().enumerate() {
                if i == 7 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("poisoned item 7"), "threads={threads}: {msg}");
                } else {
                    assert_eq!(*r, Ok(i as u32 * 2), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn global_indices_are_correct_across_chunks() {
        let items: Vec<usize> = (0..100).collect();
        let mapped = chunked_map(&items, 7, 2, |i, &x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(mapped, items);
    }
}
