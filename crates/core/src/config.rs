//! Learner configuration.

use dlearn_logic::subsumption::SubsumptionConfig;

/// All tunable parameters of the learner.
///
/// The names follow the paper's evaluation section: `km` is the number of top
/// similarity matches kept per value, `iterations` is the bottom-clause walk
/// depth `d`, and `sample_size` caps the number of literals added per
/// relation to a bottom clause (Section 5).
#[derive(Debug, Clone)]
pub struct LearnerConfig {
    /// Number of top similarity matches per value (`km`).
    pub km: usize,
    /// Bottom-clause construction iterations (`d`).
    pub iterations: usize,
    /// Maximum literals per relation in a bottom clause (`sample size`).
    pub sample_size: usize,
    /// Similarity threshold of the combined operator.
    pub similarity_threshold: f64,
    /// Minimum number of positive examples a clause must cover to be kept.
    pub min_positive_coverage: usize,
    /// Maximum number of clauses in a learned definition.
    pub max_clauses: usize,
    /// Number of positive examples sampled per generalization step (`|E+_s|`).
    pub sample_positives: usize,
    /// Maximum generalization iterations per clause.
    pub max_generalization_rounds: usize,
    /// Cap on the number of repaired clauses expanded per clause.
    pub max_repaired_clauses: usize,
    /// Cap on partial bindings tracked during generalization.
    pub binding_cap: usize,
    /// θ-subsumption search budget and strictness.
    pub subsumption: SubsumptionConfig,
    /// Use matching dependencies (similarity joins) during learning.
    /// Castor-NoMD and Castor-Clean set this to `false`.
    pub use_mds: bool,
    /// Restrict MD matches to exact string equality (Castor-Exact).
    pub exact_md_joins: bool,
    /// Add CFD repair literals to clauses (DLearn-CFD). When `false`, CFD
    /// violations in the data are ignored during clause construction.
    pub use_cfd_repairs: bool,
    /// Number of worker threads for coverage testing (0 = available cores).
    pub coverage_threads: usize,
    /// Number of worker threads for scoring generalization candidates in the
    /// covering loop (0 = available cores). The parallel reduction is
    /// deterministic — best score, ties broken by sample order — so any
    /// thread count learns the identical definition.
    pub generalization_threads: usize,
    /// Number of worker threads for similarity-index construction, passed
    /// through verbatim to `IndexConfig::threads`, which owns the
    /// resolution (0 = available cores). Construction merges per-left-value
    /// chunks in left order, so the built index — and everything learned
    /// from it — is bit-identical at any thread count.
    pub index_threads: usize,
    /// Hot-key fraction of similarity-index blocking, passed through
    /// verbatim to `IndexConfig::hot_key_fraction`: a blocking key covering
    /// more than this fraction of the indexed values gets length-partitioned
    /// postings so probes skip length-incompatible candidates wholesale.
    /// Lossless at any setting — it tunes build speed on skewed
    /// vocabularies, never what gets matched.
    pub index_hot_key_fraction: f64,
    /// RNG seed for sampling (bottom-clause sampling, example sampling).
    pub seed: u64,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            km: 5,
            iterations: 3,
            sample_size: 10,
            similarity_threshold: 0.65,
            min_positive_coverage: 2,
            max_clauses: 8,
            sample_positives: 12,
            max_generalization_rounds: 6,
            max_repaired_clauses: 12,
            binding_cap: 64,
            subsumption: SubsumptionConfig::default(),
            use_mds: true,
            exact_md_joins: false,
            use_cfd_repairs: true,
            coverage_threads: 0,
            generalization_threads: 0,
            index_threads: 0,
            index_hot_key_fraction: dlearn_similarity::IndexConfig::default().hot_key_fraction,
            seed: 7,
        }
    }
}

impl LearnerConfig {
    /// A configuration with small caps, suitable for unit tests, examples and
    /// doc tests.
    pub fn fast() -> Self {
        LearnerConfig {
            km: 2,
            iterations: 3,
            sample_size: 6,
            sample_positives: 6,
            max_generalization_rounds: 3,
            max_repaired_clauses: 6,
            max_clauses: 4,
            ..LearnerConfig::default()
        }
    }

    /// Set `km` (builder style).
    pub fn with_km(mut self, km: usize) -> Self {
        self.km = km;
        self
    }

    /// Set the iteration depth `d` (builder style).
    pub fn with_iterations(mut self, d: usize) -> Self {
        self.iterations = d;
        self
    }

    /// Set the per-relation sample size (builder style).
    pub fn with_sample_size(mut self, sample_size: usize) -> Self {
        self.sample_size = sample_size;
        self
    }

    /// Set the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Toggle adaptive (most-constrained-literal-first) ordering in the
    /// θ-subsumption search (builder style). As long as searches complete
    /// within `subsumption.max_steps`, coverage and generalization
    /// decisions — and therefore the learned definition — are identical
    /// either way (`tests/parallel_determinism.rs` pins this on the movie
    /// workload). When the budget *binds*, ordering matters: adaptive
    /// ordering spends far fewer steps (≈11× on the adversarial bench), so
    /// turning it off can flip a within-budget "yes" into a budgeted "no".
    /// The flag exists for benchmarking the ordering win and as an escape
    /// hatch.
    pub fn with_adaptive_ordering(mut self, adaptive: bool) -> Self {
        self.subsumption.adaptive_ordering = adaptive;
        self
    }

    /// Number of coverage worker threads to actually use.
    pub fn effective_threads(&self) -> usize {
        Self::resolve_threads(self.coverage_threads)
    }

    /// Number of generalization-scoring worker threads to actually use.
    pub fn effective_generalization_threads(&self) -> usize {
        Self::resolve_threads(self.generalization_threads)
    }

    /// Set the similarity-index construction thread count (builder style).
    pub fn with_index_threads(mut self, threads: usize) -> Self {
        self.index_threads = threads;
        self
    }

    /// Set the similarity-index hot-key fraction (builder style).
    pub fn with_index_hot_key_fraction(mut self, fraction: f64) -> Self {
        self.index_hot_key_fraction = fraction;
        self
    }

    /// Validate the configuration for use by a prepared [`crate::Engine`]
    /// session: zero-valued caps that would make the learner a silent no-op
    /// and out-of-range thresholds are rejected up front.
    pub fn validate(&self) -> Result<(), crate::error::DlearnError> {
        use crate::error::DlearnError;
        let nonzero: [(&'static str, usize); 6] = [
            ("iterations", self.iterations),
            ("sample_size", self.sample_size),
            ("max_clauses", self.max_clauses),
            ("max_repaired_clauses", self.max_repaired_clauses),
            ("binding_cap", self.binding_cap),
            ("sample_positives", self.sample_positives),
        ];
        for (field, value) in nonzero {
            if value == 0 {
                return Err(DlearnError::InvalidConfig {
                    field,
                    reason: "must be at least 1".into(),
                });
            }
        }
        if self.use_mds && self.km == 0 {
            return Err(DlearnError::InvalidConfig {
                field: "km",
                reason: "must be at least 1 when matching dependencies are used".into(),
            });
        }
        if !self.similarity_threshold.is_finite()
            || self.similarity_threshold <= 0.0
            || self.similarity_threshold > 1.0
        {
            return Err(DlearnError::InvalidConfig {
                field: "similarity_threshold",
                reason: format!(
                    "must be a finite value in (0, 1], got {}",
                    self.similarity_threshold
                ),
            });
        }
        if !self.index_hot_key_fraction.is_finite()
            || self.index_hot_key_fraction < 0.0
            || self.index_hot_key_fraction > 1.0
        {
            return Err(DlearnError::InvalidConfig {
                field: "index_hot_key_fraction",
                reason: format!(
                    "must be a finite value in [0, 1], got {}",
                    self.index_hot_key_fraction
                ),
            });
        }
        Ok(())
    }

    fn resolve_threads(requested: usize) -> usize {
        if requested > 0 {
            requested
        } else {
            // The auto-detect cap is owned by the similarity crate and
            // shared with `IndexConfig::effective_threads`, so "0 threads"
            // means the same thing on every knob of the stack.
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(dlearn_similarity::MAX_AUTO_THREADS)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_defaults() {
        let c = LearnerConfig::default();
        assert_eq!(c.sample_size, 10, "paper fixes sample size to 10");
        assert_eq!(c.km, 5);
        assert!(c.use_mds && c.use_cfd_repairs);
    }

    #[test]
    fn builders_override_fields() {
        let c = LearnerConfig::fast()
            .with_km(10)
            .with_iterations(4)
            .with_sample_size(3)
            .with_seed(99);
        assert_eq!(c.km, 10);
        assert_eq!(c.iterations, 4);
        assert_eq!(c.sample_size, 3);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn adaptive_ordering_builder_reaches_subsumption_config() {
        assert!(LearnerConfig::default().subsumption.adaptive_ordering);
        let c = LearnerConfig::fast().with_adaptive_ordering(false);
        assert!(!c.subsumption.adaptive_ordering);
    }

    #[test]
    fn effective_threads_is_positive() {
        assert!(LearnerConfig::default().effective_threads() >= 1);
        let c = LearnerConfig {
            coverage_threads: 3,
            ..LearnerConfig::default()
        };
        assert_eq!(c.effective_threads(), 3);
    }

    #[test]
    fn index_threads_pass_through_to_the_index_config() {
        assert_eq!(LearnerConfig::default().index_threads, 0);
        let c = LearnerConfig::fast().with_index_threads(5);
        assert_eq!(c.index_threads, 5);
    }

    #[test]
    fn hot_key_fraction_defaults_track_the_index_and_validate() {
        let c = LearnerConfig::default();
        assert_eq!(
            c.index_hot_key_fraction,
            dlearn_similarity::IndexConfig::default().hot_key_fraction,
            "learner default must track the index default"
        );
        assert!(c.validate().is_ok());
        assert!(LearnerConfig::fast()
            .with_index_hot_key_fraction(1.5)
            .validate()
            .is_err());
        assert!(LearnerConfig::fast()
            .with_index_hot_key_fraction(f64::NAN)
            .validate()
            .is_err());
        assert!(LearnerConfig::fast()
            .with_index_hot_key_fraction(0.0)
            .validate()
            .is_ok());
    }
}
