//! The learner subsystem: strategy *refiners* over prepared
//! [`StrategyPlan`] state.
//!
//! [`crate::Engine::prepare`] front-loads everything expensive — the MD
//! similarity catalog and the ground bottom clauses of the training
//! examples — into a [`StrategyPlan`]. A [`Refiner`] is a hypothesis-search
//! procedure over that shared state: it consumes the plan's
//! [`crate::CoverageEngine`] (the single coverage semantics of Definitions
//! 3.4/3.6, repairs included) and produces a Horn [`Definition`] plus
//! per-clause statistics. Three refiners ship:
//!
//! * [`covering::CoveringRefiner`] — the paper's bottom-up covering loop
//!   (Algorithm 1): build a seed bottom clause, generalize it toward sampled
//!   positives, accept, repeat. Runs for the five paper strategies.
//! * [`foil::FoilRefiner`] — top-down FOIL-style search
//!   ([`crate::Strategy::Foil`]): specialize from the head by *adding*
//!   bottom-clause literals chosen by information gain over coverage counts.
//! * [`tilde::TildeRefiner`] — a TILDE-style first-order decision tree
//!   ([`crate::Strategy::Tilde`]): internal nodes are conjunctive tests
//!   drawn from the bottom clauses, split by gain ratio; positive leaves
//!   become the clauses of the learned definition.
//!
//! Every refiner is deterministic at any thread count: parallel fan-outs go
//! through the order-preserving [`crate::par::chunked_map`], scores are pure
//! functions of coverage counts, and ties break on the earliest candidate in
//! construction order.

pub(crate) mod covering;
pub(crate) mod foil;
pub(crate) mod tilde;

use std::collections::BTreeSet;

use dlearn_logic::{Clause, Definition, Term, Var};

use crate::engine::StrategyPlan;
use crate::learner::Strategy;
use crate::model::ClauseStats;

/// The outcome of one refinement run over a strategy plan.
pub(crate) struct Refined {
    /// The learned Horn definition.
    pub(crate) definition: Definition,
    /// Per-clause training coverage, index-aligned with the definition.
    pub(crate) stats: Vec<ClauseStats>,
    /// Bottom clauses grounded for the run (counting the plan's prepared
    /// ground examples, which every refiner reuses).
    pub(crate) bottom_clauses_built: usize,
}

/// A hypothesis-search procedure over a prepared strategy plan.
pub(crate) trait Refiner {
    /// Search the plan's hypothesis space and return a definition.
    fn refine(&self, plan: &StrategyPlan) -> Refined;
}

/// Run the refiner a strategy selects against its plan. The fault checkpoint
/// makes the whole search a quarantinable site: an injected (or real) panic
/// inside any refiner surfaces from [`crate::Engine::learn`] as a typed
/// [`crate::DlearnError::WorkerPanicked`], never a process abort.
pub(crate) fn refine(strategy: Strategy, plan: &StrategyPlan) -> Refined {
    let _ = crate::fault::checkpoint(crate::fault::Site::Learn, strategy.name());
    match strategy {
        Strategy::Foil => foil::FoilRefiner.refine(plan),
        Strategy::Tilde => tilde::TildeRefiner.refine(plan),
        _ => covering::CoveringRefiner.refine(plan),
    }
}

/// The covering-style acceptance criterion shared by the clausal refiners: a
/// clause is kept when it has a non-trivial body, covers enough of the still
/// uncovered positives, and covers more positives than negatives.
pub(crate) fn accept_clause(
    clause: &Clause,
    positives_covered: usize,
    negatives_covered: usize,
    min_positive_coverage: usize,
    uncovered: usize,
) -> bool {
    !clause.body.is_empty()
        && positives_covered >= min_positive_coverage.min(uncovered)
        && positives_covered > negatives_covered
}

/// Restrict a bottom clause to the selected body literals (by body index),
/// then re-establish head-connectedness. Literals whose connection chain was
/// not selected are dropped again by the cleanup, so the result is always a
/// valid head-connected clause; repair groups follow their literals exactly
/// as in generalization.
pub(crate) fn subclause(bottom: &Clause, keep: &[bool]) -> Clause {
    debug_assert_eq!(keep.len(), bottom.body.len());
    let mut clause = bottom.clone();
    let mut index = 0;
    clause.body.retain(|_| {
        let kept = keep[index];
        index += 1;
        kept
    });
    clause.retain_head_connected();
    clause
}

/// Extract the head-connected *test* rooted at body literal `at`: the literal
/// itself plus a backward chain of earlier literals linking its variables to
/// the head. Bottom-clause construction walks outward from the head, so a
/// literal's connection chain always lies among the literals before it;
/// scanning backwards greedily yields a deterministic, short support set.
/// Returns `None` when no chain reaches the head (the literal would be
/// dropped by head-connectedness cleanup anyway).
pub(crate) fn connected_test(bottom: &Clause, at: usize) -> Option<Clause> {
    let head_vars: BTreeSet<Var> = bottom.head.variables();
    let mut keep = vec![false; bottom.body.len()];
    keep[at] = true;
    let mut frontier: BTreeSet<Var> = bottom.body[at].variables();
    let mut connected = frontier.is_empty() || frontier.iter().any(|v| head_vars.contains(v));
    let mut index = at;
    while !connected && index > 0 {
        index -= 1;
        let vars = bottom.body[index].variables();
        if vars.iter().any(|v| frontier.contains(v)) {
            keep[index] = true;
            frontier.extend(vars);
            connected = frontier.iter().any(|v| head_vars.contains(v));
        }
    }
    if !connected {
        return None;
    }
    let clause = subclause(bottom, &keep);
    if clause.body.is_empty() {
        None
    } else {
        Some(clause)
    }
}

/// Conjoin head-connected tests into one clause under a shared head. Each
/// test keeps the head variables (its existential root) and has every other
/// variable renamed into a fresh range, so tests quantify their own join
/// variables independently — the hypothesis language of a TILDE path.
pub(crate) fn conjoin_tests(tests: &[&Clause]) -> Option<Clause> {
    let first = tests.first()?;
    let head = first.head.clone();
    let head_vars: BTreeSet<Var> = head.variables();
    let mut next = first
        .variables()
        .iter()
        .map(|v| v.0)
        .max()
        .map_or(0, |m| m + 1)
        .max(head_vars.iter().map(|v| v.0 + 1).max().unwrap_or(0));
    let mut out = Clause::new(head);
    for test in tests {
        let mut renaming = dlearn_logic::Substitution::new();
        for v in test.variables() {
            if !head_vars.contains(&v) {
                renaming.bind(v, Term::var(next));
                next += 1;
            }
        }
        let renamed = test.apply(&renaming);
        for literal in renamed.body {
            out.push_unique(literal);
        }
        for group in renamed.repairs {
            out.push_repair(group);
        }
    }
    Some(out)
}

/// Binary entropy (in bits) of a node holding `p` positive and `n` negative
/// examples; 0 for empty or pure nodes.
pub(crate) fn entropy(p: usize, n: usize) -> f64 {
    let total = (p + n) as f64;
    if p == 0 || n == 0 {
        return 0.0;
    }
    let pp = p as f64 / total;
    let pn = n as f64 / total;
    -(pp * pp.log2() + pn * pn.log2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_logic::Literal;

    fn bottom() -> Clause {
        // t(v0) <- a(v0, v1), b(v1, 'x'), c(v2, 'y')   (c is disconnected)
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        c.push_unique(Literal::relation("a", vec![Term::var(0), Term::var(1)]));
        c.push_unique(Literal::relation(
            "b",
            vec![Term::var(1), Term::constant("x")],
        ));
        c.push_unique(Literal::relation(
            "c",
            vec![Term::var(2), Term::constant("y")],
        ));
        c
    }

    #[test]
    fn subclause_reestablishes_head_connectedness() {
        let b = bottom();
        // Selecting only b(v1, 'x') leaves it disconnected: empty body.
        let c = subclause(&b, &[false, true, false]);
        assert!(c.body.is_empty());
        // Selecting a + b keeps the chain.
        let c = subclause(&b, &[true, true, false]);
        assert_eq!(c.body.len(), 2);
    }

    #[test]
    fn connected_test_pulls_the_backward_chain() {
        let b = bottom();
        let t = connected_test(&b, 1).expect("b is reachable through a");
        assert_eq!(t.body.len(), 2, "{t}");
        assert!(
            connected_test(&b, 2).is_none(),
            "c has no chain to the head"
        );
    }

    #[test]
    fn conjoin_renames_non_head_variables_apart() {
        let b = bottom();
        let t = connected_test(&b, 1).unwrap();
        let joined = conjoin_tests(&[&t, &t]).unwrap();
        // Two copies of the same test quantify their chains independently:
        // same head, disjoint body variable ranges (duplicates deduplicate
        // only if literally identical after renaming — they are not).
        assert_eq!(joined.head, t.head);
        assert_eq!(joined.body.len(), 4, "{joined}");
    }

    #[test]
    fn entropy_is_zero_on_pure_nodes_and_one_on_even_splits() {
        assert_eq!(entropy(5, 0), 0.0);
        assert_eq!(entropy(0, 5), 0.0);
        assert!((entropy(4, 4) - 1.0).abs() < 1e-12);
    }
}
