//! FOIL-style top-down refinement over the shared prepared state
//! ([`crate::Strategy::Foil`]).
//!
//! Where the covering loop searches bottom-up (start maximally specific,
//! *drop* literals), FOIL searches top-down: start from the bare head —
//! which covers everything — and repeatedly *add* the body literal of the
//! seed's bottom clause with the highest information gain
//!
//! ```text
//! gain(L) = p1 · ( log2(p1 / (p1 + n1)) − log2(p0 / (p0 + n0)) )
//! ```
//!
//! where `p0`/`n0` are the uncovered-positive and negative coverage counts
//! of the current clause and `p1`/`n1` those of the clause extended with
//! `L`, both computed against the plan's [`CoverageEngine`] — so FOIL is
//! scored under exactly the repair-aware coverage semantics (Definitions
//! 3.4/3.6) as every other strategy, and dirty-data handling composes with
//! it for free. Candidate literals come from the seed example's bottom
//! clause, which bounds the search to literals that can actually reach the
//! example (the classic FOIL-over-bottom-clause restriction).
//!
//! Determinism: candidates are scored through the order-preserving
//! [`crate::par::chunked_map`] fan-out (masks computed serially inside the
//! fan-out so thread counts do not multiply), gain is a pure function of
//! coverage counts, and ties break on the earliest bottom-clause body
//! position — bit-identical definitions at any thread count.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dlearn_logic::{Clause, Definition};

use crate::bottom::BottomClauseBuilder;
use crate::config::LearnerConfig;
use crate::coverage::{CoverageEngine, PreparedClause};
use crate::engine::StrategyPlan;
use crate::model::ClauseStats;

use super::{accept_clause, subclause, Refined, Refiner};

/// Minimum gain a literal must contribute to be added: guards against
/// floating-point noise keeping the loop alive on literals that change
/// nothing.
const GAIN_EPSILON: f64 = 1e-9;

/// Cap on the number of specialization steps per clause, over and above the
/// natural bound of the bottom clause's body length. Keeps pathological
/// bottom clauses from building very long (and very slow to test) clauses.
const MAX_LITERALS: usize = 12;

/// Top-down gain-driven clause search (outer loop: classic covering).
pub(crate) struct FoilRefiner;

impl Refiner for FoilRefiner {
    fn refine(&self, plan: &StrategyPlan) -> Refined {
        let task = &plan.task;
        let config = &plan.config;
        let engine = &plan.coverage;
        let builder = BottomClauseBuilder::new(task, &plan.catalog, config);
        let mut bottom_clauses_built = task.positives.len() + task.negatives.len();

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut uncovered: Vec<usize> = (0..task.positives.len()).collect();
        let mut definition = Definition::new();
        let mut stats: Vec<ClauseStats> = Vec::new();

        while !uncovered.is_empty() && definition.len() < config.max_clauses {
            let seed_example = uncovered[0];
            let bottom = builder.build(&task.positives[seed_example], &mut rng);
            bottom_clauses_built += 1;
            if bottom.body.is_empty() {
                uncovered.remove(0);
                continue;
            }

            let grown = specialize(&bottom, engine, config, &uncovered);
            if accept_clause(
                &grown.clause,
                grown.positives_covered,
                grown.negatives_covered,
                config.min_positive_coverage,
                uncovered.len(),
            ) {
                uncovered.retain(|&i| !grown.positive_mask[i]);
                if uncovered.first() == Some(&seed_example) {
                    // Defensive: never loop forever on an uncoverable seed.
                    uncovered.remove(0);
                }
                definition.push(grown.clause);
                stats.push(ClauseStats {
                    positives_covered: grown.positives_covered,
                    negatives_covered: grown.negatives_covered,
                });
            } else {
                uncovered.remove(0);
            }
        }

        Refined {
            definition,
            stats,
            bottom_clauses_built,
        }
    }
}

/// One scored extension candidate: `(gain, bottom-body index, clause,
/// positive mask, negative mask)`.
type Scored = (f64, usize, Clause, Vec<bool>, Vec<bool>);

/// A specialized clause with its final training coverage.
struct Specialized {
    clause: Clause,
    positive_mask: Vec<bool>,
    positives_covered: usize,
    negatives_covered: usize,
}

/// Grow one clause: start from the bare head and add the highest-gain
/// bottom-clause literal until the clause is consistent (covers no
/// negatives), no literal has positive gain, or the length cap binds.
fn specialize(
    bottom: &Clause,
    engine: &CoverageEngine,
    config: &LearnerConfig,
    uncovered: &[usize],
) -> Specialized {
    let body_len = bottom.body.len();
    let mut selected = vec![false; body_len];
    let mut current = subclause(bottom, &selected);
    let initial = PreparedClause::prepare(current.clone(), config);
    let mut positive_mask = engine.positive_mask(&initial);
    let mut negative_mask = engine.negative_mask(&initial);

    for _step in 0..body_len.min(MAX_LITERALS) {
        let p0 = uncovered.iter().filter(|&&i| positive_mask[i]).count();
        let n0 = negative_mask.iter().filter(|&&b| b).count();
        if p0 == 0 || (n0 == 0 && !current.body.is_empty()) {
            // Nothing left to gain from, or already consistent.
            break;
        }
        let candidates: Vec<usize> = (0..body_len).filter(|&i| !selected[i]).collect();
        if candidates.is_empty() {
            break;
        }

        // Score every candidate literal: the same parallel fan-out (and the
        // same serial-inside-fan-out masking) as generalization scoring.
        let threads = config.effective_generalization_threads();
        let fanned_out = threads > 1 && candidates.len() >= 2;
        let current_len = current.body.len();
        let scored = crate::par::chunked_map(&candidates, threads, 2, |_, &index| {
            let mut keep = selected.clone();
            keep[index] = true;
            let candidate = subclause(bottom, &keep);
            if candidate.body.len() <= current_len {
                // The literal was dropped again by head-connectedness
                // cleanup: it cannot attach to the clause yet.
                return None;
            }
            let prepared = PreparedClause::prepare(candidate.clone(), config);
            let (pos, neg) = if fanned_out {
                (
                    engine.positive_mask_serial(&prepared),
                    engine.negative_mask_serial(&prepared),
                )
            } else {
                (
                    engine.positive_mask(&prepared),
                    engine.negative_mask(&prepared),
                )
            };
            let p1 = uncovered.iter().filter(|&&i| pos[i]).count();
            if p1 == 0 {
                return None;
            }
            let n1 = neg.iter().filter(|&&b| b).count();
            let gain = p1 as f64 * (info(p1, n1) - info(p0, n0));
            Some((gain, index, candidate, pos, neg))
        });

        // First strict maximum in candidate (= bottom-clause body) order.
        let mut best: Option<Scored> = None;
        for entry in scored.into_iter().flatten() {
            if best.as_ref().map(|b| entry.0 > b.0).unwrap_or(true) {
                best = Some(entry);
            }
        }
        match best {
            Some((gain, index, candidate, pos, neg)) if gain > GAIN_EPSILON => {
                selected[index] = true;
                current = candidate;
                positive_mask = pos;
                negative_mask = neg;
            }
            _ => break,
        }
    }

    Specialized {
        clause: current,
        positives_covered: positive_mask.iter().filter(|&&b| b).count(),
        negatives_covered: negative_mask.iter().filter(|&&b| b).count(),
        positive_mask,
    }
}

/// `log2(p / (p + n))` — the information carried by a positive verdict at a
/// node with `p` covered positives and `n` covered negatives. Callers
/// guarantee `p >= 1`.
fn info(p: usize, n: usize) -> f64 {
    debug_assert!(p >= 1);
    (p as f64 / (p + n) as f64).log2()
}
