//! TILDE-style first-order decision tree over the shared prepared state
//! ([`crate::Strategy::Tilde`]).
//!
//! The tree's internal nodes are conjunctive *tests* — head-connected
//! sub-clauses drawn from the training positives' bottom clauses (a literal
//! plus its backward connection chain, see [`super::connected_test`]) — and
//! each node splits its examples into the test's yes/no branches. Tests are
//! chosen by **gain ratio** (C4.5): information gain of the split divided by
//! the split's own entropy, which stops the tree from preferring tests that
//! shave off single examples. Positive leaves are then read back as clauses:
//! the conjunction of the yes-tests along the leaf's path (each test keeps
//! the head variables and quantifies its own chain variables, see
//! [`super::conjoin_tests`]). The resulting [`Definition`] is ordinary Horn
//! clauses, so `Predictor`/`PredictorService` serve a TILDE model unchanged.
//!
//! Because the served semantics is the clause disjunction (failed tests on
//! the path are not representable in a positive clause body), every emitted
//! clause is re-scored under the plan's real repair-aware coverage and kept
//! only while it separates training positives from negatives — the same
//! guard the covering loop applies.
//!
//! Tree building itself evaluates tests through per-test coverage masks
//! computed once up front (fanned out through the order-preserving
//! [`crate::par::chunked_map`], masks serial inside the fan-out); node
//! splits are then pure bit-mask counting. Ties break on the earliest test
//! in extraction order, so trees — and the definitions read off them — are
//! bit-identical at any thread count.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dlearn_logic::{Clause, Definition};

use crate::bottom::BottomClauseBuilder;
use crate::coverage::PreparedClause;
use crate::engine::StrategyPlan;
use crate::model::ClauseStats;

use super::{conjoin_tests, connected_test, entropy, Refined, Refiner};

/// Maximum tree depth (longest path of tests). Depth counts *both* branch
/// directions, and only satisfied tests end up in a leaf's clause, so a
/// disjunctive concept with `k` cases needs roughly `2k` depth — plus the
/// no-branch chain walked before the last case's first yes — for its leaf.
const MAX_DEPTH: usize = 24;

/// Minimum number of positives a leaf must hold to be read back as a clause;
/// single-example leaves are overwhelmingly sampling noise.
const MIN_LEAF_POSITIVES: usize = 2;

/// Cap on the candidate-test pool. Tests are collected in positive-example
/// order, so the cap keeps the earliest (and, for tree-shaped concepts, the
/// most example-backed) tests deterministically.
const MAX_TESTS: usize = 128;

/// Minimum raw information gain a split must achieve; below this the node
/// becomes a leaf.
const MIN_GAIN: f64 = 1e-6;

/// First-order decision-tree learner.
pub(crate) struct TildeRefiner;

/// A candidate test with its precomputed coverage masks over the training
/// positives and negatives.
struct Test {
    clause: Clause,
    pos: Vec<bool>,
    neg: Vec<bool>,
}

impl Refiner for TildeRefiner {
    fn refine(&self, plan: &StrategyPlan) -> Refined {
        let task = &plan.task;
        let config = &plan.config;
        let engine = &plan.coverage;
        let builder = BottomClauseBuilder::new(task, &plan.catalog, config);
        let mut bottom_clauses_built = task.positives.len() + task.negatives.len();

        // 1. Candidate tests: every head-connected sub-clause rooted at a
        // body literal of some positive's bottom clause, deduplicated by
        // canonical form, in first-seen order.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut candidates: Vec<Clause> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut head: Option<dlearn_logic::Literal> = None;
        'examples: for example in &task.positives {
            let bottom = builder.build(example, &mut rng);
            bottom_clauses_built += 1;
            if bottom.body.is_empty() {
                continue;
            }
            let expected_head = head.get_or_insert_with(|| bottom.head.clone());
            if bottom.head != *expected_head {
                // Heads must agree for tests to conjoin; bottom clauses of a
                // shared target only diverge on degenerate duplicate-value
                // examples, which are skipped.
                continue;
            }
            for at in 0..bottom.body.len() {
                if let Some(test) = connected_test(&bottom, at) {
                    if seen.insert(test.canonical_string()) {
                        candidates.push(test);
                    }
                }
                if candidates.len() >= MAX_TESTS {
                    break 'examples;
                }
            }
        }

        // 2. Coverage masks per test, computed once: node splits below are
        // pure bit-mask counting. Same fan-out shape as generalization
        // scoring (masks serial inside the fan-out).
        let threads = config.effective_generalization_threads();
        let fanned_out = threads > 1 && candidates.len() >= 2;
        let tests: Vec<Test> = crate::par::chunked_map(&candidates, threads, 2, |_, test| {
            let prepared = PreparedClause::prepare(test.clone(), config);
            let (pos, neg) = if fanned_out {
                (
                    engine.positive_mask_serial(&prepared),
                    engine.negative_mask_serial(&prepared),
                )
            } else {
                (
                    engine.positive_mask(&prepared),
                    engine.negative_mask(&prepared),
                )
            };
            Test {
                clause: test.clone(),
                pos,
                neg,
            }
        });

        // 3. Grow the tree and collect positive-leaf paths (as test indices).
        let all_pos: Vec<usize> = (0..task.positives.len()).collect();
        let all_neg: Vec<usize> = (0..task.negatives.len()).collect();
        let mut paths: Vec<Vec<usize>> = Vec::new();
        grow(&tests, &all_pos, &all_neg, &Vec::new(), 0, &mut paths);

        // 4. Read the leaf paths back as clauses against the real
        // (conjoined-clause) coverage, deduplicate, and keep only clauses
        // that separate. Two corrections are needed because a clause keeps
        // only the path's *satisfied* tests — the failed no-branch tests
        // that also routed examples are not expressible in a definite
        // clause body, so the clause covers a superset of the leaf's
        // examples:
        //
        // * **Refine**: a leaf that was pure over its local examples can
        //   measure dirty (negatives that diverged at an earlier yes-branch
        //   still satisfy the path tests). Greedily conjoin the test that
        //   most reduces real negative coverage until the clause separates
        //   or no addition helps.
        // * **Simplify**: a path also records splits that routed *other*
        //   examples — e.g. a `gold ∧ web ∧ east` path whose purity only
        //   needs `web ∧ east`. Each accidental conjunct cuts held-out
        //   recall, so tests whose removal does not admit a single extra
        //   training negative are dropped (coverage is monotone under
        //   conjunct removal: positives can only grow).
        let mut definition = Definition::new();
        let mut stats: Vec<ClauseStats> = Vec::new();
        let mut emitted: HashSet<String> = HashSet::new();
        for path in &paths {
            let mut kept: Vec<usize> = path.clone();
            let mut measured = match measure(&kept, &tests, engine, config) {
                Some(m) => m,
                None => continue,
            };
            // Refine: drive real negative coverage down by conjoining more
            // tests (first strict minimum of (negatives, -positives) in
            // test order), as long as enough positives survive.
            while measured.negatives_covered > 0 {
                let mut best: Option<(usize, Measured)> = None;
                for index in 0..tests.len() {
                    if kept.contains(&index) {
                        continue;
                    }
                    let mut with = kept.clone();
                    with.push(index);
                    if let Some(m) = measure(&with, &tests, engine, config) {
                        if m.positives_covered >= MIN_LEAF_POSITIVES
                            && m.negatives_covered < measured.negatives_covered
                            && best
                                .as_ref()
                                .map(|(_, b)| {
                                    (m.negatives_covered, usize::MAX - m.positives_covered)
                                        < (b.negatives_covered, usize::MAX - b.positives_covered)
                                })
                                .unwrap_or(true)
                        {
                            best = Some((index, m));
                        }
                    }
                }
                match best {
                    Some((index, m)) => {
                        kept.push(index);
                        measured = m;
                    }
                    None => break,
                }
            }
            // Simplify: drop conjuncts whose removal admits no extra
            // training negative.
            let mut at = 0;
            while kept.len() > 1 && at < kept.len() {
                let mut without = kept.clone();
                without.remove(at);
                match measure(&without, &tests, engine, config) {
                    Some(m) if m.negatives_covered <= measured.negatives_covered => {
                        kept = without;
                        measured = m;
                    }
                    _ => at += 1,
                }
            }
            if !emitted.insert(measured.clause.canonical_string()) {
                continue;
            }
            // Same decisiveness bar as the leaf rule, but on the clause's
            // *real* coverage: the path clause covers a superset of the
            // leaf's examples (failed no-branch tests are not in its body),
            // so a leaf that looked pure can measure dirty.
            if measured.positives_covered >= MIN_LEAF_POSITIVES
                && measured.positives_covered > 2 * measured.negatives_covered
            {
                definition.push(measured.clause);
                stats.push(ClauseStats {
                    positives_covered: measured.positives_covered,
                    negatives_covered: measured.negatives_covered,
                });
            }
        }

        Refined {
            definition,
            stats,
            bottom_clauses_built,
        }
    }
}

/// A conjoined path clause with its training coverage.
struct Measured {
    clause: Clause,
    positives_covered: usize,
    negatives_covered: usize,
}

/// Conjoin the tests at `indices` and measure the clause's real coverage
/// (the engine's repair-aware semantics over the conjoined clause — not the
/// per-test masks, whose intersection over-approximates shared-variable
/// joins).
fn measure(
    indices: &[usize],
    tests: &[Test],
    engine: &crate::coverage::CoverageEngine,
    config: &crate::config::LearnerConfig,
) -> Option<Measured> {
    let path_tests: Vec<&Clause> = indices.iter().map(|&t| &tests[t].clause).collect();
    let clause = conjoin_tests(&path_tests)?;
    if clause.body.is_empty() {
        return None;
    }
    let prepared = PreparedClause::prepare(clause.clone(), config);
    let positives_covered = engine
        .positive_mask(&prepared)
        .iter()
        .filter(|&&b| b)
        .count();
    let negatives_covered = engine
        .negative_mask(&prepared)
        .iter()
        .filter(|&&b| b)
        .count();
    Some(Measured {
        clause,
        positives_covered,
        negatives_covered,
    })
}

/// Recursively split a node's examples on the best gain-ratio test,
/// collecting the path of every positive leaf. `pos`/`neg` hold training
/// example indices reaching the node; `path` holds the indices of the tests
/// satisfied along the way (failed tests are not recorded — they are not
/// expressible in the emitted clauses).
fn grow(
    tests: &[Test],
    pos: &[usize],
    neg: &[usize],
    path: &[usize],
    depth: usize,
    paths: &mut Vec<Vec<usize>>,
) {
    if pos.is_empty() {
        return; // Negative leaf.
    }
    // A positive leaf must be decisively positive: enough support and at
    // most half as many negatives as positives. Emitting looser majority
    // leaves trades held-out precision for training recall — a bad trade,
    // since the emitted clause generalizes to everything satisfying the
    // path's tests, not just the node's examples.
    let leaf = |paths: &mut Vec<Vec<usize>>| {
        if pos.len() >= MIN_LEAF_POSITIVES && pos.len() > 2 * neg.len() && !path.is_empty() {
            paths.push(path.to_vec());
        }
    };
    if neg.is_empty() || depth >= MAX_DEPTH {
        leaf(paths);
        return;
    }

    // Best gain-ratio split; first strict maximum in test order.
    let node_entropy = entropy(pos.len(), neg.len());
    let total = (pos.len() + neg.len()) as f64;
    let mut best: Option<(f64, usize)> = None;
    for (index, test) in tests.iter().enumerate() {
        if path.contains(&index) {
            continue; // Re-testing a satisfied test cannot split.
        }
        let yes_p = pos.iter().filter(|&&i| test.pos[i]).count();
        let yes_n = neg.iter().filter(|&&i| test.neg[i]).count();
        let no_p = pos.len() - yes_p;
        let no_n = neg.len() - yes_n;
        let yes = yes_p + yes_n;
        let no = no_p + no_n;
        if yes == 0 || no == 0 {
            continue; // Degenerate split.
        }
        let gain = node_entropy
            - (yes as f64 / total) * entropy(yes_p, yes_n)
            - (no as f64 / total) * entropy(no_p, no_n);
        if gain <= MIN_GAIN {
            continue;
        }
        let split_info = entropy(yes, no);
        let ratio = gain / split_info;
        if best.map(|(r, _)| ratio > r).unwrap_or(true) {
            best = Some((ratio, index));
        }
    }

    match best {
        None => leaf(paths),
        Some((_, index)) => {
            let test = &tests[index];
            let yes_pos: Vec<usize> = pos.iter().copied().filter(|&i| test.pos[i]).collect();
            let yes_neg: Vec<usize> = neg.iter().copied().filter(|&i| test.neg[i]).collect();
            let no_pos: Vec<usize> = pos.iter().copied().filter(|&i| !test.pos[i]).collect();
            let no_neg: Vec<usize> = neg.iter().copied().filter(|&i| !test.neg[i]).collect();
            let mut yes_path = path.to_vec();
            yes_path.push(index);
            grow(tests, &yes_pos, &yes_neg, &yes_path, depth + 1, paths);
            grow(tests, &no_pos, &no_neg, path, depth + 1, paths);
        }
    }
}
