//! The paper's bottom-up covering loop (Algorithm 1), extracted from the
//! engine into a [`Refiner`] so it is one search procedure among several
//! over the same prepared state.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dlearn_logic::{Clause, Definition, NumberedClause};

use crate::bottom::BottomClauseBuilder;
use crate::config::LearnerConfig;
use crate::coverage::{CoverageEngine, PreparedClause};
use crate::engine::StrategyPlan;
use crate::generalize::generalize_prepared;
use crate::model::ClauseStats;

use super::{accept_clause, Refined, Refiner};

/// The covering loop (Algorithm 1) over a strategy's prepared artifacts:
/// generalize a seed bottom clause toward sampled uncovered positives,
/// hill-climbing on the clause score, until the positives are covered or the
/// clause budget runs out.
pub(crate) struct CoveringRefiner;

impl Refiner for CoveringRefiner {
    fn refine(&self, plan: &StrategyPlan) -> Refined {
        let task = &plan.task;
        let config = &plan.config;
        let engine = &plan.coverage;
        let builder = BottomClauseBuilder::new(task, &plan.catalog, config);
        let mut bottom_clauses_built = task.positives.len() + task.negatives.len();

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut uncovered: Vec<usize> = (0..task.positives.len()).collect();
        let mut definition = Definition::new();
        let mut stats: Vec<ClauseStats> = Vec::new();

        while !uncovered.is_empty() && definition.len() < config.max_clauses {
            let seed_example = uncovered[0];
            let bottom = builder.build(&task.positives[seed_example], &mut rng);
            bottom_clauses_built += 1;
            if bottom.body.is_empty() {
                uncovered.remove(0);
                continue;
            }

            // LearnClause: generalize the bottom clause against sampled
            // uncovered positives, hill-climbing on the clause score.
            let mut current = bottom;
            let mut current_prepared = PreparedClause::prepare(current.clone(), config);
            let mut current_score = engine.score(&current_prepared);
            for _round in 0..config.max_generalization_rounds {
                let mut sample: Vec<usize> = uncovered
                    .iter()
                    .copied()
                    .filter(|&i| i != seed_example)
                    .collect();
                sample.shuffle(&mut rng);
                sample.truncate(config.sample_positives);
                if sample.is_empty() {
                    break;
                }
                let best = best_generalization(
                    engine,
                    &current,
                    current_prepared.numbered(),
                    &sample,
                    config,
                );
                match best {
                    Some((score, prepared)) if score > current_score => {
                        current = prepared.clause.clone();
                        current_prepared = prepared;
                        current_score = score;
                    }
                    _ => break,
                }
            }

            // Minimum criterion: the clause must cover enough positives and
            // more positives than negatives.
            let positive_mask = engine.positive_mask(&current_prepared);
            let positives_covered = positive_mask.iter().filter(|&&b| b).count();
            let negatives_covered = engine
                .negative_mask(&current_prepared)
                .iter()
                .filter(|&&b| b)
                .count();
            if accept_clause(
                &current,
                positives_covered,
                negatives_covered,
                config.min_positive_coverage,
                uncovered.len(),
            ) {
                definition.push(current);
                stats.push(ClauseStats {
                    positives_covered,
                    negatives_covered,
                });
                uncovered.retain(|&i| !positive_mask[i]);
                if uncovered.first() == Some(&seed_example) {
                    // Defensive: never loop forever on an uncoverable seed.
                    uncovered.remove(0);
                }
            } else {
                uncovered.remove(0);
            }
        }

        Refined {
            definition,
            stats,
            bottom_clauses_built,
        }
    }
}

/// Score every sampled generalization candidate and return the best one.
///
/// The per-candidate work — generalize `current` toward the sampled
/// positive's ground bottom clause, expand/renumber the result, score it
/// against the full training set — is independent across samples, so it fans
/// out across `std::thread::scope` workers in contiguous chunks (the same
/// order-preserving [`crate::par::chunked_map`] the coverage masks use).
/// Workers score with [`CoverageEngine::score_serial`] so the per-mask
/// coverage threads do not multiply underneath the fan-out (cores², with
/// both knobs defaulting to available cores). The reduction is deterministic
/// and matches the serial loop exactly: highest score wins, ties broken by
/// the earliest sample position, so learned definitions are bit-identical at
/// any thread count.
fn best_generalization(
    engine: &CoverageEngine,
    current: &Clause,
    current_numbered: &NumberedClause,
    sample: &[usize],
    config: &LearnerConfig,
) -> Option<(i64, PreparedClause)> {
    let threads = config.effective_generalization_threads();
    let fanned_out = threads > 1 && sample.len() >= 2;
    let scored = crate::par::chunked_map(sample, threads, 2, |_, &ei| {
        let target_ground = &engine.positive(ei).ground;
        let candidate =
            generalize_prepared(current, current_numbered, target_ground, config.binding_cap)?;
        if candidate.body.is_empty() {
            return None;
        }
        let prepared = PreparedClause::prepare(candidate, config);
        let score = if fanned_out {
            engine.score_serial(&prepared)
        } else {
            engine.score(&prepared)
        };
        Some((score, prepared))
    });

    // First strict maximum in sample order — identical to the serial loop.
    let mut best: Option<(i64, PreparedClause)> = None;
    for entry in scored.into_iter().flatten() {
        if best.as_ref().map(|(s, _)| entry.0 > *s).unwrap_or(true) {
            best = Some(entry);
        }
    }
    best
}
