//! Bottom-clause construction over a dirty database (Algorithm 2).
//!
//! The bottom clause `C_e` of a training example `e` is the most specific
//! clause in the hypothesis space that covers `e`. It is built by walking the
//! database from the example's values for `d` iterations, following both
//! exact value matches (hash-index selections) and similarity matches
//! prescribed by the task's matching dependencies, then turning every
//! relevant tuple into a literal. Similarity matches additionally contribute
//! a similarity literal `x ≈ t` plus an MD repair group, and CFD violations
//! among the collected literals contribute CFD repair groups (Section 4.1).

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use dlearn_constraints::MdCatalog;
use dlearn_logic::repair::{CondAtom, RepairGroup, RepairOrigin};
use dlearn_logic::{Clause, Literal, Term, Var};
use dlearn_relstore::{RelId, Sym, Tuple, Value};

use crate::config::LearnerConfig;
use crate::task::LearningTask;

/// Maximum number of frontier values explored per walk iteration; keeps the
/// relevant-tuple walk bounded on very dense databases.
const MAX_FRONTIER: usize = 256;

/// The exact probes one bottom-clause construction executed against the
/// database and the MD catalog.
///
/// The walk of Algorithm 2 reads its inputs only through two kinds of probe:
/// hash-index selections `select_eq(attribute, value)` and similarity-index
/// lookups for a symbol under one MD. Everything else — RNG consumption,
/// capacity bookkeeping, literal emission — is a pure function of the probe
/// *results*. So if no probe in the log is affected by a database delta, the
/// construction replayed on the mutated database returns a bit-identical
/// clause, and the stored ground clause can be reused as-is. (Tuple-id
/// renumbering under deletions is order-preserving and the emitted clause
/// contains no tuple ids, so unaffected probe results survive renumbering.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeLog {
    /// Exact-selection probes: `(relation, attribute, value)` triples.
    pub(crate) values: HashSet<(RelId, usize, Value)>,
    /// Similarity probes: `(md position, probed symbol)` pairs. A probe is
    /// affected when the delta changed the symbol's match list on either
    /// side of that MD's index.
    pub(crate) sims: HashSet<(usize, Sym)>,
}

impl ProbeLog {
    /// Number of distinct exact-selection probes recorded.
    pub fn value_probes(&self) -> usize {
        self.values.len()
    }

    /// Number of distinct similarity probes recorded.
    pub fn sim_probes(&self) -> usize {
        self.sims.len()
    }
}

/// Builds bottom clauses (and ground bottom clauses) for training examples.
pub struct BottomClauseBuilder<'a> {
    task: &'a LearningTask,
    catalog: &'a MdCatalog,
    config: &'a LearnerConfig,
    /// Interned copy of `task.sources`, resolved once so the per-tuple walk
    /// never hashes a source string.
    sources: HashMap<RelId, Sym>,
    /// Interned `task.target_source`.
    target_source: Option<Sym>,
}

impl<'a> BottomClauseBuilder<'a> {
    /// Create a builder for a task. The MD catalog must have been built over
    /// the same database (it is empty for learners that ignore MDs).
    pub fn new(task: &'a LearningTask, catalog: &'a MdCatalog, config: &'a LearnerConfig) -> Self {
        let sources = task
            .sources
            .iter()
            .map(|(rel, src)| (RelId::intern(rel), Sym::intern(src)))
            .collect();
        let target_source = task.target_source.as_ref().map(Sym::intern);
        BottomClauseBuilder {
            task,
            catalog,
            config,
            sources,
            target_source,
        }
    }

    /// The declared source of a relation, as an interned symbol (`None` when
    /// no sources are declared or the relation is unlisted).
    fn source_sym(&self, relation: RelId) -> Option<Sym> {
        self.sources.get(&relation).copied()
    }

    /// Build the bottom clause for one example.
    pub fn build(&self, example: &Tuple, rng: &mut StdRng) -> Clause {
        self.build_inner(example, rng, None)
    }

    /// Build the bottom clause for one example, recording every database and
    /// similarity probe the walk executes (see [`ProbeLog`]).
    pub fn build_probed(&self, example: &Tuple, rng: &mut StdRng) -> (Clause, ProbeLog) {
        let mut probes = ProbeLog::default();
        let clause = self.build_inner(example, rng, Some(&mut probes));
        (clause, probes)
    }

    fn build_inner(
        &self,
        example: &Tuple,
        rng: &mut StdRng,
        mut probes: Option<&mut ProbeLog>,
    ) -> Clause {
        let mut state = BuildState::new();

        // Head literal: one variable per example value.
        let head_args: Vec<Term> = example.values().iter().map(|v| state.var_for(*v)).collect();
        let head = Literal::relation(&self.task.target.name, head_args);
        let mut clause = Clause::new(head);

        let mut frontier: Vec<Value> = example.values().to_vec();
        for v in &frontier {
            state.known.insert(*v);
            if let Some(src) = self.target_source {
                state.value_sources.entry(*v).or_default().insert(src);
            }
        }

        // Relevant-tuple walk (Algorithm 2).
        for _round in 0..self.config.iterations {
            if frontier.is_empty() {
                break;
            }
            if frontier.len() > MAX_FRONTIER {
                frontier.shuffle(rng);
                frontier.truncate(MAX_FRONTIER);
            }
            let mut next_frontier: Vec<Value> = Vec::new();

            // Exact selections over every relation and attribute. When the
            // task declares relation sources, exact joins only stay within a
            // source; crossing sources requires a matching dependency.
            for relation in self.task.database.relations() {
                let rel_id = relation.rel_id();
                let capacity = self
                    .config
                    .sample_size
                    .saturating_sub(state.per_relation.get(&rel_id).copied().unwrap_or(0));
                if capacity == 0 {
                    continue;
                }
                let rel_source = self.source_sym(rel_id);
                let mut candidate_ids: Vec<usize> = Vec::new();
                for attr in 0..relation.schema().arity() {
                    for v in &frontier {
                        if !state.allows_source(v, rel_source) {
                            continue;
                        }
                        if let Some(log) = probes.as_deref_mut() {
                            log.values.insert((rel_id, attr, *v));
                        }
                        for &id in relation.select_eq(attr, v) {
                            candidate_ids.push(id);
                        }
                    }
                }
                candidate_ids.sort_unstable();
                candidate_ids.dedup();
                candidate_ids.retain(|id| !state.collected.contains(&(rel_id, *id)));
                if candidate_ids.len() > capacity {
                    candidate_ids.shuffle(rng);
                    candidate_ids.truncate(capacity);
                    candidate_ids.sort_unstable();
                }
                for id in candidate_ids {
                    state.collect(
                        rel_id,
                        id,
                        relation.tuple(id).expect("valid id"),
                        rel_source,
                        &mut next_frontier,
                    );
                }
            }

            // Similarity selections prescribed by the MDs (ψ in Algorithm 2).
            if self.config.use_mds {
                self.similarity_probe(
                    &frontier,
                    &mut state,
                    &mut next_frontier,
                    rng,
                    probes.as_deref_mut(),
                );
            }

            frontier = next_frontier;
        }

        // Turn collected tuples into body literals.
        let mut literal_sources: Vec<(usize, RelId, usize)> = Vec::new();
        let mut ordered: Vec<(RelId, usize)> = state.collected.iter().copied().collect();
        ordered.sort(); // RelId orders by name: same order as the String era
        for (rel_id, id) in ordered {
            // Invariant: every (rel_id, id) in `collected` came out of a
            // select over this database earlier in the walk. Task-shape
            // errors (unknown relations in MDs/CFDs, bad example arity) are
            // rejected at `Engine::prepare` time and never reach here.
            let relation = self
                .task
                .database
                .relation(rel_id)
                .expect("collected (relation, id) pairs come from this database");
            let tuple = relation
                .tuple(id)
                .expect("collected (relation, id) pairs come from this database");
            let args: Vec<Term> = tuple
                .values()
                .iter()
                .enumerate()
                .map(|(p, v)| {
                    if v.is_null() {
                        // Every NULL is its own variable: NULLs never join.
                        state.fresh_var()
                    } else if self.task.is_constant_attribute(rel_id, p) {
                        Term::Const(*v)
                    } else {
                        state.var_for(*v)
                    }
                })
                .collect();
            let literal = Literal::relation(rel_id, args);
            if clause.push_unique(literal) {
                literal_sources.push((clause.body.len() - 1, rel_id, id));
            }
        }

        // Similarity literals and MD repair groups.
        if self.config.use_mds {
            let matches = state.similarity_matches.clone();
            for (left, right, md_pos) in &matches {
                let (Some(tl), Some(tr)) = (state.term_of(left), state.term_of(right)) else {
                    continue;
                };
                if tl == tr {
                    continue;
                }
                let (Some(vl), Some(vr)) = (tl.as_var(), tr.as_var()) else {
                    continue;
                };
                let sim = Literal::Similar(tl, tr);
                clause.push_unique(sim.clone());
                let fresh = state.fresh_var();
                clause.push_repair(RepairGroup::new(
                    RepairOrigin::Md(*md_pos),
                    vec![CondAtom::Sim(tl, tr)],
                    vec![(vl, fresh), (vr, fresh)],
                    vec![sim],
                ));
            }
        }

        // CFD repair groups for violations among the collected literals.
        if self.config.use_cfd_repairs {
            self.add_cfd_repairs(&mut clause, &literal_sources);
        }

        clause.retain_head_connected();
        clause
    }

    /// Probe the MD similarity indexes with the frontier values and collect
    /// the matched tuples from the opposite relation of each MD.
    fn similarity_probe(
        &self,
        frontier: &[Value],
        state: &mut BuildState,
        next_frontier: &mut Vec<Value>,
        rng: &mut StdRng,
        mut probes: Option<&mut ProbeLog>,
    ) {
        for md_index in self.catalog.indexes() {
            for (probe_relation, target_relation, target_attr) in [
                (
                    md_index.md.left_relation,
                    md_index.md.right_relation,
                    md_index.md.identify_right,
                ),
                (
                    md_index.md.right_relation,
                    md_index.md.left_relation,
                    md_index.md.identify_left,
                ),
            ] {
                let Some(target_rel) = self.task.database.relation(target_relation) else {
                    continue;
                };
                let Some(attr_idx) = target_rel.schema().attribute_pos(target_attr) else {
                    continue;
                };
                // Loop-invariant: the source only depends on the target
                // relation, not on the frontier value or the match.
                let target_source = self.source_sym(target_relation);
                for v in frontier {
                    let Some(s) = v.as_sym() else { continue };
                    if let Some(log) = probes.as_deref_mut() {
                        log.sims.insert((md_index.md_position, s));
                    }
                    let matches = md_index.matches_for(probe_relation, s);
                    // The example's values do not belong to any relation, so
                    // also probe them against both sides.
                    let matches =
                        if matches.is_empty() && probe_relation == md_index.md.left_relation {
                            md_index.matches_from_right(s)
                        } else {
                            matches
                        };
                    for m in matches.iter().take(self.config.km) {
                        let capacity = self.config.sample_size.saturating_sub(
                            state
                                .per_relation
                                .get(&target_relation)
                                .copied()
                                .unwrap_or(0),
                        );
                        if capacity == 0 {
                            break;
                        }
                        let matched_value = Value::Str(m.value);
                        if let Some(log) = probes.as_deref_mut() {
                            log.values
                                .insert((target_relation, attr_idx, matched_value));
                        }
                        let mut ids: Vec<usize> =
                            target_rel.select_eq(attr_idx, &matched_value).to_vec();
                        ids.retain(|id| !state.collected.contains(&(target_relation, *id)));
                        if ids.len() > capacity {
                            ids.shuffle(rng);
                            ids.truncate(capacity);
                        }
                        let mut hit = ids.is_empty()
                            && state.collected.iter().any(|(r, id)| {
                                *r == target_relation
                                    && target_rel.tuple(*id).and_then(|t| t.value(attr_idx))
                                        == Some(&matched_value)
                            });
                        for id in ids {
                            state.collect(
                                target_relation,
                                id,
                                target_rel.tuple(id).expect("valid id"),
                                target_source,
                                next_frontier,
                            );
                            hit = true;
                        }
                        if hit {
                            state.record_similarity(*v, matched_value, md_index.md_position);
                        }
                    }
                }
            }
        }
    }

    /// Scan the clause for CFD violations (using the source tuples' actual
    /// values) and add the corresponding repair groups. Following the
    /// minimal-repair reduction at the end of Section 4.1, only right-hand
    /// side repairs over the existing variables are introduced.
    fn add_cfd_repairs(&self, clause: &mut Clause, literal_sources: &[(usize, RelId, usize)]) {
        for (ci, cfd) in self.task.cfds.iter().enumerate() {
            let Some(relation) = self.task.database.relation(cfd.relation) else {
                continue;
            };
            let lhs_indices = cfd.lhs_indices(relation);
            let rhs_index = cfd.rhs_index(relation);
            let members: Vec<&(usize, RelId, usize)> = literal_sources
                .iter()
                .filter(|(_, r, _)| *r == cfd.relation)
                .collect();
            for (a, (body_a, _, id_a)) in members.iter().enumerate() {
                for (body_b, _, id_b) in members.iter().skip(a + 1) {
                    let t1 = relation.tuple(*id_a).expect("valid id");
                    let t2 = relation.tuple(*id_b).expect("valid id");
                    if !cfd.violates(t1, t2, &lhs_indices, rhs_index) {
                        continue;
                    }
                    let z1 = *clause.body[*body_a].args()[rhs_index];
                    let z2 = *clause.body[*body_b].args()[rhs_index];
                    let (Some(_v1), Some(v2)) = (z1.as_var(), z2.as_var()) else {
                        // Constant right-hand sides are not repaired at the
                        // clause level (see DESIGN.md); generators keep CFD
                        // right-hand sides variablized.
                        continue;
                    };
                    if z1 == z2 {
                        continue;
                    }
                    clause.push_repair(RepairGroup::new(
                        RepairOrigin::Cfd(ci),
                        vec![CondAtom::Neq(z1, z2)],
                        vec![(v2, z1)],
                        vec![],
                    ));
                }
            }
        }
    }
}

/// Mutable state of one bottom-clause construction.
struct BuildState {
    value_to_var: HashMap<Value, Var>,
    next_var: u32,
    known: HashSet<Value>,
    /// Sources each value has been observed in (used to forbid exact joins
    /// across sources when the task declares relation sources).
    value_sources: HashMap<Value, HashSet<Sym>>,
    collected: HashSet<(RelId, usize)>,
    per_relation: HashMap<RelId, usize>,
    similarity_matches: Vec<(Value, Value, usize)>,
    similarity_seen: HashSet<(Value, Value, usize)>,
}

impl BuildState {
    fn new() -> Self {
        BuildState {
            value_to_var: HashMap::new(),
            next_var: 0,
            known: HashSet::new(),
            value_sources: HashMap::new(),
            collected: HashSet::new(),
            per_relation: HashMap::new(),
            similarity_matches: Vec::new(),
            similarity_seen: HashSet::new(),
        }
    }

    fn var_for(&mut self, value: Value) -> Term {
        if let Some(v) = self.value_to_var.get(&value) {
            return Term::Var(*v);
        }
        let v = Var(self.next_var);
        self.next_var += 1;
        self.value_to_var.insert(value, v);
        Term::Var(v)
    }

    fn fresh_var(&mut self) -> Term {
        let v = Var(self.next_var);
        self.next_var += 1;
        Term::Var(v)
    }

    fn term_of(&self, value: &Value) -> Option<Term> {
        self.value_to_var.get(value).map(|v| Term::Var(*v))
    }

    fn collect(
        &mut self,
        relation: RelId,
        id: usize,
        tuple: &Tuple,
        source: Option<Sym>,
        next_frontier: &mut Vec<Value>,
    ) {
        if !self.collected.insert((relation, id)) {
            return;
        }
        *self.per_relation.entry(relation).or_default() += 1;
        for v in tuple.values() {
            if v.is_null() {
                continue;
            }
            if let Some(src) = source {
                self.value_sources.entry(*v).or_default().insert(src);
            }
            if self.known.insert(*v) {
                next_frontier.push(*v);
            }
        }
    }

    /// `true` when exact joins on `value` are allowed into a relation of the
    /// given source: either no sources are declared, the value has been seen
    /// in that source, or the value has no recorded source at all.
    fn allows_source(&self, value: &Value, source: Option<Sym>) -> bool {
        match source {
            None => true,
            Some(src) => self
                .value_sources
                .get(value)
                .map(|set| set.contains(&src))
                .unwrap_or(true),
        }
    }

    fn record_similarity(&mut self, left: Value, right: Value, md_pos: usize) {
        if self.similarity_seen.insert((left, right, md_pos)) {
            self.similarity_matches.push((left, right, md_pos));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TargetSpec;
    use dlearn_constraints::{Cfd, MatchingDependency};
    use dlearn_relstore::{tuple, DatabaseBuilder, RelationBuilder};
    use dlearn_similarity::IndexConfig;
    use rand::SeedableRng;

    /// The example movie database of Table 2 in the paper, plus a BOM-style
    /// relation reachable only through a similarity match.
    fn movie_task() -> LearningTask {
        let db = DatabaseBuilder::new()
            .relation(
                RelationBuilder::new("movies")
                    .int_attr("id")
                    .str_attr("title")
                    .int_attr("year")
                    .build(),
            )
            .relation(
                RelationBuilder::new("mov2genres")
                    .int_attr("id")
                    .str_attr("genre")
                    .build(),
            )
            .relation(
                RelationBuilder::new("mov2countries")
                    .int_attr("id")
                    .str_attr("country")
                    .build(),
            )
            .relation(
                RelationBuilder::new("mov2releasedate")
                    .int_attr("id")
                    .str_attr("month")
                    .int_attr("year")
                    .build(),
            )
            .row(
                "movies",
                vec![
                    Value::int(1),
                    Value::str("Superbad (2007)"),
                    Value::int(2007),
                ],
            )
            .row(
                "movies",
                vec![
                    Value::int(2),
                    Value::str("Zoolander (2001)"),
                    Value::int(2001),
                ],
            )
            .row(
                "movies",
                vec![
                    Value::int(3),
                    Value::str("Orphanage (2007)"),
                    Value::int(2007),
                ],
            )
            .row("mov2genres", vec![Value::int(1), Value::str("comedy")])
            .row("mov2genres", vec![Value::int(2), Value::str("comedy")])
            .row("mov2genres", vec![Value::int(3), Value::str("drama")])
            .row("mov2countries", vec![Value::int(1), Value::str("USA")])
            .row("mov2countries", vec![Value::int(2), Value::str("USA")])
            .row("mov2countries", vec![Value::int(3), Value::str("Spain")])
            .row(
                "mov2releasedate",
                vec![Value::int(1), Value::str("August"), Value::int(2007)],
            )
            .row(
                "mov2releasedate",
                vec![Value::int(2), Value::str("September"), Value::int(2001)],
            )
            .build();
        let mut task = LearningTask::new(
            db,
            TargetSpec::with_attributes("highGrossing", vec!["title"]),
        );
        task.mds.push(MatchingDependency::simple(
            "titles",
            "highGrossing",
            "title",
            "movies",
            "title",
        ));
        task.add_constant_attribute("mov2genres", "genre");
        task.add_constant_attribute("mov2countries", "country");
        task.add_constant_attribute("mov2releasedate", "month");
        task.positives.push(tuple(vec![Value::str("Superbad")]));
        task.negatives.push(tuple(vec![Value::str("Orphanage")]));
        task
    }

    /// MDs whose left relation is the *target* relation cannot be indexed
    /// from the database (the target has no stored tuples), so the catalog is
    /// built over the right relation against the example values manually in
    /// `Learner`; here we emulate it by indexing movies titles against
    /// themselves plus the example strings through a small helper task.
    fn catalog_for(task: &LearningTask, km: usize) -> MdCatalog {
        let mut config = IndexConfig::top_k(km);
        config.operator = dlearn_similarity::SimilarityOperator::with_threshold(0.6);
        MdCatalog::build(
            &task.mds,
            &crate::learner::augment_with_target(task),
            &config,
        )
    }

    #[test]
    fn bottom_clause_reaches_tuples_through_similarity() {
        let task = movie_task();
        let catalog = catalog_for(&task, 2);
        let config = LearnerConfig::fast();
        let builder = BottomClauseBuilder::new(&task, &catalog, &config);
        let mut rng = StdRng::seed_from_u64(1);
        let clause = builder.build(&task.positives[0], &mut rng);

        let relations: Vec<&str> = clause
            .body
            .iter()
            .filter_map(|l| l.relation_name())
            .collect();
        assert!(relations.contains(&"movies"), "clause: {clause}");
        assert!(relations.contains(&"mov2genres"), "clause: {clause}");
        assert!(
            clause
                .body
                .iter()
                .any(|l| matches!(l, Literal::Similar(_, _))),
            "similarity literal expected: {clause}"
        );
        assert!(
            !clause.repairs.is_empty(),
            "MD repair group expected: {clause}"
        );
        assert!(
            clause.body.iter().any(|l| l
                .args()
                .iter()
                .any(|t| **t == Term::Const(Value::str("comedy")))),
            "genre should stay a constant: {clause}"
        );
    }

    #[test]
    fn without_mds_the_other_source_is_unreachable() {
        let task = movie_task();
        let catalog = MdCatalog::default();
        let config = LearnerConfig {
            use_mds: false,
            ..LearnerConfig::fast()
        };
        let builder = BottomClauseBuilder::new(&task, &catalog, &config);
        let mut rng = StdRng::seed_from_u64(1);
        let clause = builder.build(&task.positives[0], &mut rng);
        // "Superbad" does not exactly match "Superbad (2007)", so nothing in
        // the database is reachable from the example.
        assert!(clause.body.is_empty(), "clause: {clause}");
    }

    #[test]
    fn sample_size_caps_literals_per_relation() {
        let task = movie_task();
        let catalog = catalog_for(&task, 5);
        let config = LearnerConfig {
            sample_size: 1,
            ..LearnerConfig::fast()
        };
        let builder = BottomClauseBuilder::new(&task, &catalog, &config);
        let mut rng = StdRng::seed_from_u64(3);
        let clause = builder.build(&task.positives[0], &mut rng);
        let movies_count = clause
            .body
            .iter()
            .filter(|l| l.relation_name() == Some("movies"))
            .count();
        assert!(movies_count <= 1, "clause: {clause}");
    }

    #[test]
    fn cfd_violations_produce_repair_groups() {
        // Two release-date tuples for the same movie with different years
        // violate id -> year.
        let mut task = movie_task();
        task.database
            .insert(
                "mov2releasedate",
                tuple(vec![Value::int(1), Value::str("August"), Value::int(2009)]),
            )
            .unwrap();
        task.cfds
            .push(Cfd::fd("rd_year", "mov2releasedate", vec!["id"], "year"));
        let catalog = catalog_for(&task, 2);
        let config = LearnerConfig::fast();
        let builder = BottomClauseBuilder::new(&task, &catalog, &config);
        let mut rng = StdRng::seed_from_u64(1);
        let clause = builder.build(&task.positives[0], &mut rng);
        assert!(
            clause.repairs.iter().any(|g| g.origin.is_cfd()),
            "expected a CFD repair group: {clause}"
        );
    }

    #[test]
    fn construction_is_deterministic_for_a_fixed_seed() {
        let task = movie_task();
        let catalog = catalog_for(&task, 2);
        let config = LearnerConfig::fast();
        let builder = BottomClauseBuilder::new(&task, &catalog, &config);
        let a = builder.build(&task.positives[0], &mut StdRng::seed_from_u64(5));
        let b = builder.build(&task.positives[0], &mut StdRng::seed_from_u64(5));
        assert_eq!(a.canonical_string(), b.canonical_string());
    }
}
