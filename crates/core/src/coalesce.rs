//! A queued, coalescing front-end for [`PredictorService`].
//!
//! Many independent callers each holding one tuple is the worst traffic
//! shape for a batch-oriented service: every call pays the full batch setup
//! (snapshot load, builder construction, worker fan-out) for a single
//! example. The [`Coalescer`] turns that shape back into batches: callers
//! enqueue requests on a bounded MPSC queue and block on a private reply
//! channel; a dedicated batcher thread drains up to
//! [`CoalesceConfig::max_coalesce`] requests (lingering at most
//! [`CoalesceConfig::max_wait`] for stragglers), groups them by [`Budget`],
//! issues one [`PredictorService::predict_batch_with`] call per group, and
//! fans the index-aligned results back to each caller.
//!
//! **Determinism contract:** serving is a pure function of
//! `(tuple, model snapshot, budget)` — grounding derives its RNG from the
//! session seed alone, and the service dedups repeated tuples within a
//! batch. Coalescing therefore never changes a verdict: every caller
//! receives a result bit-identical to what a solo
//! [`PredictorService::predict_batch_with`] call with its own tuple and
//! budget would return against the same epoch. `tests/swap_stress.rs` pins
//! this coalesced-vs-sequential parity at 1/2/8 concurrent callers, with
//! and without hot swaps in flight.
//!
//! Requests in one coalesced batch may carry different budgets; budget
//! groups are served as separate batches (still under one drained queue
//! slice), so a zero deadline or a zeroed step cap degrades only the
//! requests that asked for it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dlearn_relstore::Tuple;

use crate::error::DlearnError;
use crate::service::{Budget, PredictorService, ServeResult};

/// Configuration of a [`Coalescer`].
#[derive(Debug, Clone)]
pub struct CoalesceConfig {
    /// Maximum requests coalesced into one drained batch.
    pub max_coalesce: usize,
    /// How long the batcher lingers for more requests once it holds at
    /// least one (the added latency ceiling a request can pay for batching).
    pub max_wait: Duration,
    /// Bound on queued (not yet drained) requests; submitters block when
    /// the queue is full.
    pub queue_capacity: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            max_coalesce: 32,
            max_wait: Duration::from_millis(2),
            queue_capacity: 1024,
        }
    }
}

/// A point-in-time snapshot of a coalescer's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoalesceMetrics {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Drained batches handed to the service (before budget grouping).
    pub batches: u64,
    /// Total requests across all drained batches.
    pub coalesced_tuples: u64,
    /// Size of the largest single drained batch.
    pub largest_batch: u64,
    /// Drains triggered by a full batch (`max_coalesce` reached).
    pub full_drains: u64,
    /// Drains triggered by the linger timer (`max_wait` elapsed).
    pub timer_drains: u64,
}

/// One queued request: the tuple, the caller's budget (`None` = the
/// service's default), and the channel its result goes back on.
struct Request {
    tuple: Tuple,
    budget: Option<Budget>,
    reply: mpsc::Sender<ServeResult>,
}

struct Queue {
    items: VecDeque<Request>,
    closed: bool,
}

struct Inner {
    service: Arc<PredictorService>,
    config: CoalesceConfig,
    queue: Mutex<Queue>,
    not_empty: Condvar,
    not_full: Condvar,
    submitted: AtomicU64,
    batches: AtomicU64,
    coalesced_tuples: AtomicU64,
    largest_batch: AtomicU64,
    full_drains: AtomicU64,
    timer_drains: AtomicU64,
}

impl Inner {
    /// Enqueue pre-built requests, blocking while the queue is over
    /// capacity. All of `requests` goes in under one lock acquisition, so a
    /// multi-request submission is drained as contiguously as `max_coalesce`
    /// allows.
    fn enqueue(&self, requests: Vec<Request>) -> Result<(), DlearnError> {
        let n = requests.len() as u64;
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        while !q.closed && q.items.len() >= self.config.queue_capacity {
            q = self.not_full.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        if q.closed {
            return Err(DlearnError::CoalescerClosed);
        }
        q.items.extend(requests);
        drop(q);
        self.submitted.fetch_add(n, Ordering::Relaxed);
        self.not_empty.notify_one();
        Ok(())
    }

    /// The batcher loop: wait for work, drain a batch, serve it, fan out.
    fn run(&self) {
        loop {
            let batch = match self.next_batch() {
                Some(batch) => batch,
                None => return,
            };
            self.serve(batch);
        }
    }

    /// Block until at least one request is queued (or the queue closes and
    /// drains empty), then collect up to `max_coalesce` requests, lingering
    /// at most `max_wait` past the first one.
    fn next_batch(&self) -> Option<Vec<Request>> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !q.items.is_empty() {
                break;
            }
            if q.closed {
                return None;
            }
            q = self.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        let mut batch = Vec::new();
        let deadline = Instant::now() + self.config.max_wait;
        let mut full = true;
        loop {
            while batch.len() < self.config.max_coalesce {
                match q.items.pop_front() {
                    Some(r) => batch.push(r),
                    None => break,
                }
            }
            if batch.len() >= self.config.max_coalesce {
                break;
            }
            // Linger for stragglers: a request arriving within `max_wait`
            // rides this batch instead of paying its own service call.
            let now = Instant::now();
            if q.closed || now >= deadline {
                full = false;
                break;
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        drop(q);
        self.not_full.notify_all();
        if full {
            self.full_drains.fetch_add(1, Ordering::Relaxed);
        } else {
            self.timer_drains.fetch_add(1, Ordering::Relaxed);
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.coalesced_tuples
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.largest_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        Some(batch)
    }

    /// Serve one drained batch: group requests by budget (first-occurrence
    /// order), one `predict_batch_with` call per group, results fanned back
    /// per request. A caller that gave up waiting just drops its receiver;
    /// the failed send is ignored.
    fn serve(&self, batch: Vec<Request>) {
        let mut groups: Vec<(Option<Budget>, Vec<usize>)> = Vec::new();
        for (i, r) in batch.iter().enumerate() {
            match groups.iter_mut().find(|(b, _)| *b == r.budget) {
                Some((_, members)) => members.push(i),
                None => groups.push((r.budget, vec![i])),
            }
        }
        for (budget, members) in groups {
            let tuples: Vec<Tuple> = members.iter().map(|&i| batch[i].tuple.clone()).collect();
            let results = match budget {
                Some(b) => self.service.predict_batch_with(&tuples, &b),
                None => self.service.predict_batch(&tuples),
            };
            for (&i, result) in members.iter().zip(results) {
                let _ = batch[i].reply.send(result);
            }
        }
    }

    fn close(&self) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.closed = true;
        drop(q);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A coalescing batch front-end over a shared [`PredictorService`]: see the
/// [module docs](crate::coalesce) for the batching and determinism contract.
///
/// `Coalescer` is `Send + Sync`; callers on any thread submit through a
/// shared reference and block until their result arrives. Dropping the
/// coalescer closes the queue, serves every already-queued request, and
/// joins the batcher thread.
pub struct Coalescer {
    inner: Arc<Inner>,
    batcher: Option<JoinHandle<()>>,
}

impl Coalescer {
    /// Start a coalescer (and its batcher thread) over a shared service.
    pub fn new(service: Arc<PredictorService>, config: CoalesceConfig) -> Coalescer {
        let inner = Arc::new(Inner {
            service,
            config: CoalesceConfig {
                max_coalesce: config.max_coalesce.max(1),
                queue_capacity: config.queue_capacity.max(1),
                ..config
            },
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            submitted: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced_tuples: AtomicU64::new(0),
            largest_batch: AtomicU64::new(0),
            full_drains: AtomicU64::new(0),
            timer_drains: AtomicU64::new(0),
        });
        let worker = inner.clone();
        let batcher = std::thread::Builder::new()
            .name("dlearn-coalescer".into())
            .spawn(move || worker.run())
            .expect("spawn coalescer batcher");
        Coalescer {
            inner,
            batcher: Some(batcher),
        }
    }

    /// Submit one tuple under the service's default budget and block until
    /// its verdict arrives.
    pub fn submit(&self, tuple: Tuple) -> ServeResult {
        self.submit_inner(tuple, None)
    }

    /// Submit one tuple under an explicit budget and block until its
    /// verdict arrives.
    pub fn submit_with(&self, tuple: Tuple, budget: Budget) -> ServeResult {
        self.submit_inner(tuple, Some(budget))
    }

    /// Submit several (tuple, budget) requests in one queue transaction and
    /// block until all verdicts arrive, index-aligned with `items`. The
    /// requests enter the queue contiguously, so up to
    /// [`CoalesceConfig::max_coalesce`] of them coalesce into one batch
    /// even with no concurrent callers.
    pub fn submit_many_with(&self, items: &[(Tuple, Budget)]) -> Vec<ServeResult> {
        let mut receivers = Vec::with_capacity(items.len());
        let mut requests = Vec::with_capacity(items.len());
        for (tuple, budget) in items {
            let (tx, rx) = mpsc::channel();
            receivers.push(rx);
            requests.push(Request {
                tuple: tuple.clone(),
                budget: Some(*budget),
                reply: tx,
            });
        }
        if let Err(e) = self.inner.enqueue(requests) {
            return items.iter().map(|_| Err(e.clone())).collect();
        }
        receivers
            .into_iter()
            .map(|rx| rx.recv().unwrap_or(Err(DlearnError::CoalescerClosed)))
            .collect()
    }

    fn submit_inner(&self, tuple: Tuple, budget: Option<Budget>) -> ServeResult {
        let (tx, rx) = mpsc::channel();
        self.inner.enqueue(vec![Request {
            tuple,
            budget,
            reply: tx,
        }])?;
        rx.recv().unwrap_or(Err(DlearnError::CoalescerClosed))
    }

    /// A snapshot of the coalescer's counters.
    pub fn metrics(&self) -> CoalesceMetrics {
        CoalesceMetrics {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            coalesced_tuples: self.inner.coalesced_tuples.load(Ordering::Relaxed),
            largest_batch: self.inner.largest_batch.load(Ordering::Relaxed),
            full_drains: self.inner.full_drains.load(Ordering::Relaxed),
            timer_drains: self.inner.timer_drains.load(Ordering::Relaxed),
        }
    }

    /// The service this coalescer batches for.
    pub fn service(&self) -> &Arc<PredictorService> {
        &self.inner.service
    }
}

impl std::fmt::Debug for Coalescer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coalescer")
            .field("config", &self.inner.config)
            .field("metrics", &self.metrics())
            .finish()
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        self.inner.close();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
    }
}
