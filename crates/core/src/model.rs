//! The legacy learned-model type, now a thin wrapper over an engine-bound
//! [`Predictor`].
//!
//! [`LearnedModel`] predates the session API: it bundled the definition with
//! a private copy of the task, catalog and config so it could predict. It
//! survives as a compatibility facade over [`Predictor`] — same method
//! surface, same deterministic predictions — for callers of the deprecated
//! one-shot entry points. New code should hold a [`crate::Learned`] value
//! and bind it with [`crate::Engine::predictor`].

use dlearn_logic::{Clause, Definition};
use dlearn_relstore::Tuple;

use crate::config::LearnerConfig;
use crate::engine::Predictor;

/// Per-clause training coverage statistics, mirroring the annotations the
/// paper prints next to each learned clause ("positive covered=…, negative
/// covered=…").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClauseStats {
    /// Positive training examples covered by the clause.
    pub positives_covered: usize,
    /// Negative training examples covered by the clause.
    pub negatives_covered: usize,
}

/// A learned Horn definition bound to the (possibly preprocessed) database
/// and constraint catalogs it was trained over, so it can be applied to new
/// examples. Compatibility facade over [`Predictor`].
pub struct LearnedModel {
    predictor: Predictor,
}

impl LearnedModel {
    /// Wrap an engine-bound predictor (used by the deprecated one-shot
    /// entry points).
    pub(crate) fn from_predictor(predictor: Predictor) -> Self {
        LearnedModel { predictor }
    }

    /// The learned Horn definition.
    pub fn definition(&self) -> &Definition {
        self.predictor.definition()
    }

    /// The learned clauses.
    pub fn clauses(&self) -> &[Clause] {
        self.predictor.definition().clauses()
    }

    /// Per-clause coverage statistics over the training data.
    pub fn stats(&self) -> &[ClauseStats] {
        self.predictor.stats()
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &LearnerConfig {
        self.predictor.config()
    }

    /// Predict whether a (new) example tuple belongs to the target relation:
    /// the definition covers the example iff at least one clause covers it
    /// (Section 2.1), using the positive-coverage semantics of Definition 3.4
    /// over the example's ground bottom clause.
    ///
    /// Legacy infallible surface: a tuple of the wrong arity yields `false`
    /// (it cannot be covered). [`Predictor::predict`] reports it as a typed
    /// error instead.
    pub fn predict(&self, example: &Tuple) -> bool {
        self.predictor.predict(example).unwrap_or(false)
    }

    /// Predict a batch of examples (parallel over the configured coverage
    /// threads, deterministic and index-aligned with the input).
    pub fn predict_all(&self, examples: &[Tuple]) -> Vec<bool> {
        match self.predictor.predict_batch(examples) {
            Ok(verdicts) => verdicts,
            // Some tuple has the wrong arity: fall back to per-example
            // prediction so well-formed tuples still get real verdicts.
            Err(_) => examples.iter().map(|e| self.predict(e)).collect(),
        }
    }

    /// Render the definition with its per-clause coverage annotations.
    pub fn render(&self) -> String {
        crate::engine::render_definition(self.definition(), self.stats())
    }
}

impl std::fmt::Debug for LearnedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LearnedModel")
            .field("clauses", &self.definition().len())
            .field("stats", &self.stats())
            .finish()
    }
}
