//! Learned models: the definition plus everything needed to apply it to new
//! examples.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dlearn_constraints::MdCatalog;
use dlearn_logic::{Clause, Definition};
use dlearn_relstore::Tuple;

use crate::bottom::BottomClauseBuilder;
use crate::config::LearnerConfig;
use crate::coverage::{GroundExample, PreparedClause};
use crate::task::LearningTask;

/// Per-clause training coverage statistics, mirroring the annotations the
/// paper prints next to each learned clause ("positive covered=…, negative
/// covered=…").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClauseStats {
    /// Positive training examples covered by the clause.
    pub positives_covered: usize,
    /// Negative training examples covered by the clause.
    pub negatives_covered: usize,
}

/// A learned Horn definition bound to the (possibly preprocessed) database
/// and constraint catalogs it was trained over, so it can be applied to new
/// examples.
pub struct LearnedModel {
    definition: Definition,
    stats: Vec<ClauseStats>,
    task: LearningTask,
    catalog: MdCatalog,
    config: LearnerConfig,
    prepared: Vec<PreparedClause>,
}

impl LearnedModel {
    /// Assemble a model (used by the learner).
    pub(crate) fn new(
        definition: Definition,
        stats: Vec<ClauseStats>,
        task: LearningTask,
        catalog: MdCatalog,
        config: LearnerConfig,
    ) -> Self {
        let prepared = definition
            .clauses()
            .iter()
            .map(|c| PreparedClause::prepare(c.clone(), &config))
            .collect();
        LearnedModel {
            definition,
            stats,
            task,
            catalog,
            config,
            prepared,
        }
    }

    /// The learned Horn definition.
    pub fn definition(&self) -> &Definition {
        &self.definition
    }

    /// The learned clauses.
    pub fn clauses(&self) -> &[Clause] {
        self.definition.clauses()
    }

    /// Per-clause coverage statistics over the training data.
    pub fn stats(&self) -> &[ClauseStats] {
        &self.stats
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &LearnerConfig {
        &self.config
    }

    /// Predict whether a (new) example tuple belongs to the target relation:
    /// the definition covers the example iff at least one clause covers it
    /// (Section 2.1), using the positive-coverage semantics of Definition 3.4
    /// over the example's ground bottom clause.
    pub fn predict(&self, example: &Tuple) -> bool {
        if self.definition.is_empty() {
            return false;
        }
        let builder = BottomClauseBuilder::new(&self.task, &self.catalog, &self.config);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xdead_beef);
        let ground_clause = builder.build(example, &mut rng);
        let ground = GroundExample::from_clause(example.clone(), &ground_clause, &self.config);
        self.prepared
            .iter()
            .any(|prepared| self.covers(prepared, &ground))
    }

    /// Predict a batch of examples.
    pub fn predict_all(&self, examples: &[Tuple]) -> Vec<bool> {
        examples.iter().map(|e| self.predict(e)).collect()
    }

    /// Positive-coverage test over the prepared clause's once-assigned
    /// variable numbering (the same flat-substitution decision path
    /// `CoverageEngine::covers_positive` uses).
    fn covers(&self, prepared: &PreparedClause, ground: &GroundExample) -> bool {
        use dlearn_logic::subsumes_numbered_decision;
        if subsumes_numbered_decision(
            prepared.numbered(),
            &ground.ground,
            &self.config.subsumption,
        ) {
            return true;
        }
        if prepared.repaired.is_empty() {
            return false;
        }
        prepared.numbered_repaired().iter().all(|cr| {
            ground
                .repaired
                .iter()
                .any(|gr| subsumes_numbered_decision(cr, gr, &self.config.subsumption))
        })
    }

    /// Render the definition with its per-clause coverage annotations.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, clause) in self.definition.clauses().iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&clause.to_string());
            if let Some(s) = self.stats.get(i) {
                out.push_str(&format!(
                    "\n  (positive covered={}, negative covered={})",
                    s.positives_covered, s.negatives_covered
                ));
            }
        }
        out
    }
}

impl std::fmt::Debug for LearnedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LearnedModel")
            .field("clauses", &self.definition.len())
            .field("stats", &self.stats)
            .finish()
    }
}
