//! Fault-injection checkpoints for the serving tier.
//!
//! With the `fault-injection` feature on, the checkpoints re-export the
//! deterministic harness in `dlearn-test-support` (see its `fault` module);
//! off, they compile to no-op shims the optimizer erases, so production
//! builds carry no injection machinery.

#[cfg(feature = "fault-injection")]
pub(crate) use dlearn_test_support::fault::{checkpoint, Action, Site};

#[cfg(not(feature = "fault-injection"))]
pub(crate) use noop::{checkpoint, Action, Site};

#[cfg(not(feature = "fault-injection"))]
mod noop {
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) enum Site {
        Grounding,
        Coverage,
        Alignment,
        Delta,
        Swap,
        Learn,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) enum Action {
        Proceed,
        #[allow(dead_code)]
        ExhaustBudget,
    }

    #[inline(always)]
    pub(crate) fn checkpoint(_site: Site, _key: &str) -> Action {
        Action::Proceed
    }
}
