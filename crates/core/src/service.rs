//! The resilient serving tier: a long-lived front-end over [`Predictor`].
//!
//! A fleet-facing predictor must survive its traffic, not just be fast on
//! clean inputs: a pathological tuple used to pin a worker in the
//! subsumption search with no deadline, a worker panic tore down the whole
//! batch, and a binding step budget silently flipped a decision to "no".
//! [`PredictorService`] makes all three survivable and observable:
//!
//! * **Cached grounding** — a bounded, sharded cross-batch cache of
//!   `tuple → GroundExample` with clock (second-chance) eviction. Grounding
//!   is a pure function of the tuple (the RNG derives from the session seed
//!   alone), so a cache hit reuses the identical ground clause a fresh
//!   grounding would produce — verdicts are bit-identical cache-on vs
//!   cache-off, which `tests/service.rs` pins across 1/2/8 threads.
//! * **Deadlines and cooperative cancellation** — a per-call [`Budget`]
//!   threads a deadline into the subsumption search via an atomic
//!   [`CancelToken`] polled alongside the step-budget test. A slow example
//!   returns [`DlearnError::DeadlineExceeded`] *for that example only*; the
//!   rest of the batch completes.
//! * **Panic isolation** — each example runs inside `catch_unwind` at the
//!   chunk worker, so one poisoned example yields
//!   [`DlearnError::WorkerPanicked`] and lands in a quarantine that keeps
//!   its tuple out of the cache forever after.
//! * **Degradation accounting** — budget-exhausted subsumption searches no
//!   longer masquerade as clean "no"s: every verdict carries its
//!   [`ServeVerdict::exhausted_searches`] count and the service-wide
//!   [`ServiceMetrics`] aggregate them.
//! * **Hot model swap** — the service owns its model behind an
//!   epoch-versioned [`crate::swap::SwapCell`]: every batch loads one
//!   consistent `(epoch, predictor)` snapshot, and
//!   [`PredictorService::publish`] /
//!   [`PredictorService::apply_delta`] atomically install a re-learned
//!   model while in-flight batches finish on their old epoch. Cache entries
//!   are epoch-tagged, so groundings from a superseded model are lazily
//!   dropped instead of served ([`ServiceMetrics::stale_reads_prevented`]).
//!   Every [`ServeVerdict`] names the epoch that produced it. For queued
//!   request coalescing in front of the service, see [`crate::coalesce`].
//!
//! ```
//! use dlearn_core::{Engine, LearnerConfig, LearningTask, PredictorService,
//!                   ServiceConfig, Strategy, TargetSpec};
//! use dlearn_relstore::{tuple, DatabaseBuilder, RelationBuilder, Value};
//!
//! let db = DatabaseBuilder::new()
//!     .relation(RelationBuilder::new("movies").int_attr("id").str_attr("title").build())
//!     .relation(RelationBuilder::new("genres").int_attr("id").str_attr("genre").build())
//!     .row("movies", vec![Value::int(1), Value::str("Superbad")])
//!     .row("genres", vec![Value::int(1), Value::str("comedy")])
//!     .build();
//! let mut task = LearningTask::new(db, TargetSpec::new("hit", 1));
//! task.add_constant_attribute("genres", "genre");
//! task.positives.push(tuple(vec![Value::int(1)]));
//!
//! let engine = Engine::prepare(task, LearnerConfig::fast())?;
//! let learned = engine.learn(Strategy::DLearn)?;
//! let service = PredictorService::new(engine.predictor(&learned)?, ServiceConfig::default());
//! let results = service.predict_batch(&[tuple(vec![Value::int(1)])]);
//! assert!(results[0].is_ok());
//! assert!(service.metrics().served >= 1);
//!
//! // Hot swap: re-publish a (re-)learned model without stopping traffic.
//! let next = service.publish(engine.predictor(&learned)?)?;
//! assert_eq!(next, service.epoch());
//! assert_eq!(service.metrics().swaps, 1);
//! # Ok::<(), dlearn_core::DlearnError>(())
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dlearn_logic::CancelToken;
use dlearn_relstore::Tuple;

use crate::coverage::{CoverageOutcome, GroundExample};
use crate::engine::Predictor;
use crate::error::DlearnError;
use crate::fault;
use crate::swap::SwapCell;

/// Per-call resource budget for one served example.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline per example. The subsumption search polls an
    /// atomic cancel flag derived from it, so a blown deadline surfaces as
    /// [`DlearnError::DeadlineExceeded`] within one poll interval instead of
    /// hanging.
    pub deadline: Option<Duration>,
    /// Cap on subsumption search steps per search, applied on top of (never
    /// above) the session's `subsumption.max_steps`. Exhausted searches act
    /// as "not covered" and are counted in the verdict.
    pub max_subsumption_steps: Option<usize>,
}

impl Budget {
    /// No deadline and no extra step cap.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Set the per-example deadline (builder style).
    pub fn with_deadline(mut self, deadline: Duration) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Set the per-search subsumption step cap (builder style).
    pub fn with_max_subsumption_steps(mut self, steps: usize) -> Budget {
        self.max_subsumption_steps = Some(steps);
        self
    }
}

/// Configuration of a [`PredictorService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Total ground-example cache capacity across all shards. `0` disables
    /// caching entirely (every serve re-grounds).
    pub cache_capacity: usize,
    /// Number of cache shards; rounded up to a power of two. More shards
    /// mean less lock contention under concurrent batches.
    pub cache_shards: usize,
    /// Worker threads for batch fan-out (`0` = the session config's
    /// coverage-thread resolution).
    pub worker_threads: usize,
    /// Default budget applied by [`PredictorService::predict_batch`];
    /// [`PredictorService::predict_batch_with`] overrides it per call.
    pub budget: Budget,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 4096,
            cache_shards: 8,
            worker_threads: 0,
            budget: Budget::default(),
        }
    }
}

/// One successful serving verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeVerdict {
    /// Whether the definition covers the example (Definition 3.4).
    pub covered: bool,
    /// Subsumption searches that ran out of step budget while deciding.
    /// Non-zero means the verdict may be degraded: an exhausted search acts
    /// as "not covered", exactly as in training, but here it is observable.
    pub exhausted_searches: u32,
    /// Epoch of the model snapshot that produced this verdict (the first
    /// published model is epoch 1). Under a hot swap, in-flight batches
    /// finish on their old epoch — this field says which model answered.
    pub epoch: u64,
}

impl ServeVerdict {
    /// `true` when at least one subsumption search was cut short by the
    /// step budget, i.e. the verdict is potentially weaker than the
    /// unbounded decision.
    pub fn is_degraded(&self) -> bool {
        self.exhausted_searches > 0
    }
}

/// Per-example serving result: a verdict, or a typed error scoped to this
/// example alone ([`DlearnError::DeadlineExceeded`],
/// [`DlearnError::WorkerPanicked`], [`DlearnError::PredictArity`]).
pub type ServeResult = Result<ServeVerdict, DlearnError>;

/// A point-in-time snapshot of a service's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceMetrics {
    /// Examples served to a successful verdict.
    pub served: u64,
    /// Ground-example cache hits.
    pub cache_hits: u64,
    /// Ground-example cache misses (fresh groundings).
    pub cache_misses: u64,
    /// Cache entries evicted by the clock hand.
    pub cache_evictions: u64,
    /// Serves of a quarantined tuple (served fresh, never re-cached).
    pub quarantine_hits: u64,
    /// Examples that blew their deadline.
    pub deadline_exceeded: u64,
    /// Worker panics caught and isolated.
    pub worker_panics: u64,
    /// Total budget-exhausted subsumption searches across all serves.
    pub budget_exhausted_searches: u64,
    /// Successful verdicts with at least one exhausted search.
    pub degraded_verdicts: u64,
    /// Inputs rejected before serving (wrong arity).
    pub rejected_inputs: u64,
    /// Cache entries evicted by [`PredictorService::apply_delta`] because
    /// their grounding probed a changed value.
    pub delta_evictions: u64,
    /// Successful model publications — [`PredictorService::publish`] plus
    /// committed [`PredictorService::apply_delta`] calls.
    pub swaps: u64,
    /// Cache entries from a superseded epoch dropped: lazily at lookup, or
    /// eagerly during a delta publication's cache walk.
    pub epoch_evictions: u64,
    /// Cache lookups that found an entry tagged with a *different* epoch
    /// than the reader's snapshot and refused to serve it. Without epoch
    /// tags each of these would have served a grounding from the wrong
    /// model.
    pub stale_reads_prevented: u64,
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    quarantine_hits: AtomicU64,
    deadline_exceeded: AtomicU64,
    worker_panics: AtomicU64,
    budget_exhausted_searches: AtomicU64,
    degraded_verdicts: AtomicU64,
    rejected_inputs: AtomicU64,
    delta_evictions: AtomicU64,
    swaps: AtomicU64,
    epoch_evictions: AtomicU64,
    stale_reads_prevented: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServiceMetrics {
        ServiceMetrics {
            served: self.served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            quarantine_hits: self.quarantine_hits.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            budget_exhausted_searches: self.budget_exhausted_searches.load(Ordering::Relaxed),
            degraded_verdicts: self.degraded_verdicts.load(Ordering::Relaxed),
            rejected_inputs: self.rejected_inputs.load(Ordering::Relaxed),
            delta_evictions: self.delta_evictions.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            epoch_evictions: self.epoch_evictions.load(Ordering::Relaxed),
            stale_reads_prevented: self.stale_reads_prevented.load(Ordering::Relaxed),
        }
    }
}

/// One clock-cache entry: a grounding plus the epoch of the model it was
/// grounded under.
struct CacheEntry {
    key: Tuple,
    value: Arc<GroundExample>,
    epoch: u64,
    referenced: bool,
}

/// What an epoch-aware shard lookup found.
enum Lookup {
    /// A current-epoch grounding.
    Hit(Arc<GroundExample>),
    /// An entry from a *superseded* epoch: dropped on the spot.
    Stale,
    /// An entry from a *newer* epoch than the reader's snapshot (the reader
    /// is an in-flight batch on a pre-swap model): left in place, not
    /// served.
    Behind,
    /// Nothing cached for the tuple.
    Miss,
}

/// A fixed-capacity clock (second-chance) cache shard. The hand sweeps the
/// entry ring on eviction, clearing reference bits until it finds a victim —
/// LRU-approximating with O(1) hits and no per-hit reordering.
#[derive(Default)]
struct Shard {
    entries: Vec<CacheEntry>,
    index: HashMap<Tuple, usize>,
    hand: usize,
}

impl Shard {
    /// Epoch-aware lookup: only an entry tagged with the reader's exact
    /// epoch is a hit. Older entries are stale groundings of a superseded
    /// model and are dropped; newer entries belong to a model the reader
    /// has not swapped to yet and are left alone.
    fn get(&mut self, key: &Tuple, epoch: u64) -> Lookup {
        let Some(&i) = self.index.get(key) else {
            return Lookup::Miss;
        };
        let entry_epoch = self.entries[i].epoch;
        if entry_epoch == epoch {
            self.entries[i].referenced = true;
            Lookup::Hit(self.entries[i].value.clone())
        } else if entry_epoch < epoch {
            self.remove_at(i);
            Lookup::Stale
        } else {
            Lookup::Behind
        }
    }

    /// Insert, returning the number of clock evictions (0 or 1). An
    /// existing entry from a newer epoch is never clobbered by a lagging
    /// reader's insert.
    fn insert(
        &mut self,
        key: Tuple,
        value: Arc<GroundExample>,
        epoch: u64,
        capacity: usize,
    ) -> u64 {
        if capacity == 0 {
            return 0;
        }
        if let Some(&i) = self.index.get(&key) {
            if self.entries[i].epoch > epoch {
                return 0;
            }
            self.entries[i].value = value;
            self.entries[i].epoch = epoch;
            self.entries[i].referenced = true;
            return 0;
        }
        if self.entries.len() < capacity {
            self.index.insert(key.clone(), self.entries.len());
            self.entries.push(CacheEntry {
                key,
                value,
                epoch,
                referenced: false,
            });
            return 0;
        }
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.entries.len();
            if self.entries[i].referenced {
                self.entries[i].referenced = false;
            } else {
                self.index.remove(&self.entries[i].key);
                self.index.insert(key.clone(), i);
                self.entries[i] = CacheEntry {
                    key,
                    value,
                    epoch,
                    referenced: false,
                };
                return 1;
            }
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.hand = 0;
    }

    /// Remove one entry by ring position, keeping the index consistent.
    fn remove_at(&mut self, i: usize) {
        let entry = self.entries.swap_remove(i);
        self.index.remove(&entry.key);
        if i < self.entries.len() {
            self.index.insert(self.entries[i].key.clone(), i);
        }
        if self.hand >= self.entries.len() {
            self.hand = 0;
        }
    }

    /// The cache walk of a delta publication, migrating this shard from
    /// `current` to `new`: entries whose grounding the delta `affected` are
    /// evicted; unaffected current-epoch survivors are re-tagged to the new
    /// epoch (provably bit-identical to a fresh grounding over the mutated
    /// database); leftovers from even older epochs are dropped as stale.
    /// Returns `(delta_evicted, stale_evicted)`.
    fn retag_or_evict(
        &mut self,
        current: u64,
        new: u64,
        mut affected: impl FnMut(&GroundExample) -> bool,
    ) -> (u64, u64) {
        let before = self.entries.len();
        let mut delta_evicted = 0u64;
        self.entries.retain_mut(|entry| {
            if entry.epoch != current {
                return false;
            }
            if affected(&entry.value) {
                delta_evicted += 1;
                return false;
            }
            entry.epoch = new;
            true
        });
        let removed = (before - self.entries.len()) as u64;
        if removed > 0 {
            self.index.clear();
            for (i, entry) in self.entries.iter().enumerate() {
                self.index.insert(entry.key.clone(), i);
            }
            self.hand = 0;
        }
        (delta_evicted, removed - delta_evicted)
    }
}

/// Maximum tuples remembered by the quarantine ring; beyond it the oldest
/// entries are forgotten (they become cacheable again — bounded memory wins
/// over a perfect permanent ban).
const QUARANTINE_CAP: usize = 4096;

#[derive(Default)]
struct Quarantine {
    set: HashSet<Tuple>,
    order: VecDeque<Tuple>,
}

impl Quarantine {
    fn insert(&mut self, tuple: Tuple) {
        if self.set.insert(tuple.clone()) {
            self.order.push_back(tuple);
            while self.order.len() > QUARANTINE_CAP {
                if let Some(old) = self.order.pop_front() {
                    self.set.remove(&old);
                }
            }
        }
    }

    fn contains(&self, tuple: &Tuple) -> bool {
        self.set.contains(tuple)
    }
}

/// One published model: the epoch number and the predictor state serving it.
/// Readers clone the whole snapshot out of the service's [`SwapCell`], so a
/// batch never observes half of one model and half of another.
struct EpochModel {
    epoch: u64,
    predictor: Predictor,
}

/// A long-lived, `Send + Sync` serving front-end over a [`Predictor`]: see
/// the [module docs](crate::service) for the resilience contract.
pub struct PredictorService {
    /// The epoch-versioned model handle. Batches load one snapshot;
    /// publications atomically install a successor.
    model: SwapCell<EpochModel>,
    config: ServiceConfig,
    shard_count: usize,
    per_shard_capacity: usize,
    shards: Vec<Mutex<Shard>>,
    quarantine: Mutex<Quarantine>,
    counters: Counters,
    /// Serializes publications ([`PredictorService::publish`] /
    /// [`PredictorService::apply_delta`]) and guards epoch numbering.
    publish_lock: Mutex<()>,
    next_epoch: AtomicU64,
    /// Set by a panic mid-publication: the old epoch keeps serving, but
    /// selective delta publications are refused until a clean full
    /// [`PredictorService::publish`].
    swap_quarantined: AtomicBool,
}

impl PredictorService {
    /// Wrap a predictor for serving; it becomes epoch 1.
    pub fn new(predictor: Predictor, config: ServiceConfig) -> PredictorService {
        let shard_count = config.cache_shards.max(1).next_power_of_two();
        let per_shard_capacity = if config.cache_capacity == 0 {
            0
        } else {
            config.cache_capacity.div_ceil(shard_count).max(1)
        };
        let shards = (0..shard_count)
            .map(|_| Mutex::new(Shard::default()))
            .collect();
        PredictorService {
            model: SwapCell::new(Arc::new(EpochModel {
                epoch: 1,
                predictor,
            })),
            config,
            shard_count,
            per_shard_capacity,
            shards,
            quarantine: Mutex::new(Quarantine::default()),
            counters: Counters::default(),
            publish_lock: Mutex::new(()),
            next_epoch: AtomicU64::new(2),
            swap_quarantined: AtomicBool::new(false),
        }
    }

    /// The epoch of the currently installed model (the model a batch
    /// starting *now* would serve with). The first model is epoch 1.
    pub fn epoch(&self) -> u64 {
        self.model.load().epoch
    }

    /// Delta sequence of the currently installed model (see
    /// [`Predictor::delta_seq`]).
    pub fn delta_seq(&self) -> u64 {
        self.model.load().predictor.delta_seq()
    }

    /// `true` after a panic mid-publication: the previous epoch keeps
    /// serving, selective [`PredictorService::apply_delta`] calls are
    /// refused, and a clean full [`PredictorService::publish`] recovers.
    pub fn is_swap_quarantined(&self) -> bool {
        self.swap_quarantined.load(Ordering::Acquire)
    }

    /// A snapshot of the service counters.
    pub fn metrics(&self) -> ServiceMetrics {
        self.counters.snapshot()
    }

    /// Atomically publish a (re-)learned model as a fresh epoch, returning
    /// the new epoch number. In-flight batches finish on the epoch they
    /// loaded; batches starting after the publish serve the new model. Old
    /// cache entries are *not* walked — they are tagged with their dead
    /// epoch and lazily dropped on first lookup
    /// ([`ServiceMetrics::epoch_evictions`]).
    ///
    /// This is also the recovery path after a swap quarantine: a clean
    /// publish installs a fresh epoch and lifts the quarantine. A panic
    /// inside the publication (only reachable via the fault-injection
    /// harness) leaves the old epoch serving and quarantines the swap path.
    pub fn publish(&self, predictor: Predictor) -> Result<u64, DlearnError> {
        let _publishing = self.publish_lock.lock().unwrap_or_else(|e| e.into_inner());
        let epoch = self.next_epoch.load(Ordering::Relaxed);
        let key = format!("publish@{epoch}");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = fault::checkpoint(fault::Site::Swap, &key);
        }));
        if let Err(payload) = outcome {
            self.swap_quarantined.store(true, Ordering::Release);
            self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
            return Err(DlearnError::WorkerPanicked {
                site: "swap",
                message: crate::par::panic_message(&*payload),
            });
        }
        self.next_epoch.store(epoch + 1, Ordering::Relaxed);
        self.model.store(Arc::new(EpochModel { epoch, predictor }));
        self.counters.swaps.fetch_add(1, Ordering::Relaxed);
        self.swap_quarantined.store(false, Ordering::Release);
        Ok(epoch)
    }

    /// Publish a post-delta predictor and migrate the cache across the
    /// epoch boundary: entries whose recorded probes intersect the delta's
    /// change set (see [`crate::DeltaReport::affects`]) are evicted, every
    /// surviving entry — provably bit-identical to a fresh grounding over
    /// the mutated database — is re-tagged to the new epoch, so cache-on
    /// and cache-off serving stay in parity across deltas. Returns the
    /// number of delta-evicted entries.
    ///
    /// The report must chain directly from the served model: its
    /// [`crate::DeltaReport::sequence`] has to be the served
    /// [`Predictor::delta_seq`] plus one, and `predictor` must be re-bound
    /// at that sequence — anything else (out-of-order reports, a predictor
    /// from a different engine session) is refused with
    /// [`DlearnError::DeltaEpochMismatch`] and the served model stays
    /// untouched. While the swap path is quarantined the call is refused
    /// with [`DlearnError::SwapQuarantined`];
    /// [`PredictorService::publish`] recovers.
    pub fn apply_delta(
        &self,
        predictor: Predictor,
        report: &crate::DeltaReport,
    ) -> Result<u64, DlearnError> {
        let _publishing = self.publish_lock.lock().unwrap_or_else(|e| e.into_inner());
        if self.swap_quarantined.load(Ordering::Acquire) {
            return Err(DlearnError::SwapQuarantined);
        }
        let current = self.model.load();
        let served = current.predictor.delta_seq();
        if report.sequence != served + 1 || predictor.delta_seq() != report.sequence {
            return Err(DlearnError::DeltaEpochMismatch {
                served,
                report: report.sequence,
            });
        }
        let epoch = self.next_epoch.load(Ordering::Relaxed);
        let key = format!("delta@{epoch}");
        let walk = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = fault::checkpoint(fault::Site::Swap, &key);
            let mut delta_evicted = 0u64;
            let mut stale_evicted = 0u64;
            for shard in &self.shards {
                let (delta, stale) = shard
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .retag_or_evict(current.epoch, epoch, |g| report.affects(&g.probes));
                delta_evicted += delta;
                stale_evicted += stale;
            }
            (delta_evicted, stale_evicted)
        }));
        match walk {
            Ok((delta_evicted, stale_evicted)) => {
                if delta_evicted > 0 {
                    self.counters
                        .delta_evictions
                        .fetch_add(delta_evicted, Ordering::Relaxed);
                }
                if stale_evicted > 0 {
                    self.counters
                        .epoch_evictions
                        .fetch_add(stale_evicted, Ordering::Relaxed);
                }
                self.next_epoch.store(epoch + 1, Ordering::Relaxed);
                self.model.store(Arc::new(EpochModel { epoch, predictor }));
                self.counters.swaps.fetch_add(1, Ordering::Relaxed);
                Ok(delta_evicted)
            }
            Err(payload) => {
                // The walk may have re-tagged some entries to an epoch that
                // was never installed; dropping everything is always sound
                // and keeps the old epoch serving correct verdicts.
                self.clear_cache();
                self.swap_quarantined.store(true, Ordering::Release);
                self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                Err(DlearnError::WorkerPanicked {
                    site: "swap",
                    message: crate::par::panic_message(&*payload),
                })
            }
        }
    }

    /// Drop every cached ground example (counters are kept). Used by the
    /// cold-cache benchmarks and by callers that know the cache has gone
    /// stale.
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Serve a batch under the service's default budget. Results are
    /// index-aligned with `examples`; every error is scoped to its example —
    /// the batch as a whole always completes.
    pub fn predict_batch(&self, examples: &[Tuple]) -> Vec<ServeResult> {
        self.predict_batch_with(examples, &self.config.budget)
    }

    /// Serve a batch under an explicit per-call budget. The whole batch
    /// runs against one model snapshot: a concurrent
    /// [`PredictorService::publish`] never splits a batch across epochs.
    pub fn predict_batch_with(&self, examples: &[Tuple], budget: &Budget) -> Vec<ServeResult> {
        // One consistent snapshot per batch; a concurrent publish retires
        // the epoch, not this batch.
        let model = self.model.load();
        // Reject malformed inputs per position, keeping the valid ones.
        let mut results: Vec<Option<ServeResult>> = examples
            .iter()
            .enumerate()
            .map(|(index, e)| match model.predictor.check_arity(e, index) {
                Ok(()) => None,
                Err(err) => {
                    self.counters
                        .rejected_inputs
                        .fetch_add(1, Ordering::Relaxed);
                    Some(Err(err))
                }
            })
            .collect();

        // Dedup the valid tuples in first-occurrence order, exactly like
        // `Predictor::predict_batch`: serving is a pure function of the
        // tuple (given the snapshot), so each distinct tuple is served once
        // per batch.
        let mut slot_of: HashMap<&Tuple, usize> = HashMap::with_capacity(examples.len());
        let mut unique: Vec<&Tuple> = Vec::new();
        let mut slots: Vec<Option<usize>> = Vec::with_capacity(examples.len());
        for (i, e) in examples.iter().enumerate() {
            if results[i].is_some() {
                slots.push(None);
                continue;
            }
            let next = unique.len();
            let slot = *slot_of.entry(e).or_insert(next);
            if slot == next {
                unique.push(e);
            }
            slots.push(Some(slot));
        }

        let threads = if self.config.worker_threads > 0 {
            self.config.worker_threads
        } else {
            model.predictor.config().effective_threads()
        };
        let builder = model.predictor.builder();
        let served = crate::par::chunked_map_catching(&unique, threads, 2, |_, e| {
            self.serve_one(&model, &builder, e, budget)
        });

        // Isolated panics become typed per-example errors, and the tuple is
        // quarantined so it can never poison the cache.
        let served: Vec<ServeResult> = served
            .into_iter()
            .zip(&unique)
            .map(|(r, e)| match r {
                Ok(result) => result,
                Err(message) => {
                    self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                    self.quarantine
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert((*e).clone());
                    Err(DlearnError::WorkerPanicked {
                        site: "serve",
                        message,
                    })
                }
            })
            .collect();

        for (i, slot) in slots.iter().enumerate() {
            if let Some(s) = slot {
                results[i] = Some(served[*s].clone());
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot is filled"))
            .collect()
    }

    /// Serve one (pre-validated) example end to end against one model
    /// snapshot: deadline setup, epoch-checked cache lookup or grounding,
    /// coverage under the effective step budget.
    fn serve_one(
        &self,
        model: &EpochModel,
        builder: &crate::bottom::BottomClauseBuilder<'_>,
        example: &Tuple,
        budget: &Budget,
    ) -> ServeResult {
        // Parity with `Predictor::predict`: an empty definition covers
        // nothing and never grounds.
        if model.predictor.definition().is_empty() {
            self.counters.served.fetch_add(1, Ordering::Relaxed);
            return Ok(ServeVerdict {
                covered: false,
                exhausted_searches: 0,
                epoch: model.epoch,
            });
        }
        let budget_ms = budget.deadline.map(|d| d.as_millis() as u64).unwrap_or(0);
        let cancel = budget
            .deadline
            .map(|d| CancelToken::with_deadline(Instant::now() + d));
        let deadline_blown =
            |c: &Option<CancelToken>| c.as_ref().map(|c| c.is_cancelled()).unwrap_or(false);
        if deadline_blown(&cancel) {
            self.counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            return Err(DlearnError::DeadlineExceeded { budget_ms });
        }
        let key = example.to_string();

        let cached = self.cache_get(example, model.epoch);
        let (ground, fresh) = match cached {
            Some(g) => {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                (g, false)
            }
            None => {
                self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                // Budget exhaustion is a coverage-site fault; at grounding
                // only panics and delays apply, both executed inside.
                let _ = fault::checkpoint(fault::Site::Grounding, &key);
                let g = Arc::new(model.predictor.ground_for_serving(builder, example));
                (g, true)
            }
        };
        if deadline_blown(&cancel) {
            self.counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            return Err(DlearnError::DeadlineExceeded { budget_ms });
        }

        let coverage_action = fault::checkpoint(fault::Site::Coverage, &key);
        // A stall before the search (the checkpoint above can sleep) may
        // burn the whole deadline in one place; the in-search poll only
        // fires every `CANCEL_CHECK_INTERVAL` steps, so a short search
        // would otherwise return a late verdict instead of timing out.
        if deadline_blown(&cancel) {
            self.counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            return Err(DlearnError::DeadlineExceeded { budget_ms });
        }
        let mut sub = model.predictor.config().subsumption;
        if let Some(cap) = budget.max_subsumption_steps {
            sub.max_steps = sub.max_steps.min(cap);
        }
        if coverage_action == fault::Action::ExhaustBudget {
            sub.max_steps = 0;
        }

        let mut covered = false;
        let mut exhausted: u32 = 0;
        for prepared in &model.predictor.prepared {
            match prepared.covers_ground_controlled(&ground, &sub, cancel.as_ref()) {
                CoverageOutcome::Cancelled => {
                    self.counters
                        .deadline_exceeded
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(DlearnError::DeadlineExceeded { budget_ms });
                }
                CoverageOutcome::Covered { exhausted_searches } => {
                    exhausted += exhausted_searches;
                    covered = true;
                    break;
                }
                CoverageOutcome::NotCovered { exhausted_searches } => {
                    exhausted += exhausted_searches;
                }
            }
        }

        // Only a fully successful serve populates the cache — and never for
        // a quarantined tuple.
        if fresh && self.per_shard_capacity > 0 {
            let quarantined = self
                .quarantine
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .contains(example);
            if quarantined {
                self.counters
                    .quarantine_hits
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                self.cache_insert(example.clone(), ground, model.epoch);
            }
        }

        self.counters.served.fetch_add(1, Ordering::Relaxed);
        if exhausted > 0 {
            self.counters
                .budget_exhausted_searches
                .fetch_add(exhausted as u64, Ordering::Relaxed);
            self.counters
                .degraded_verdicts
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(ServeVerdict {
            covered,
            exhausted_searches: exhausted,
            epoch: model.epoch,
        })
    }

    fn shard_for(&self, tuple: &Tuple) -> &Mutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        tuple.hash(&mut h);
        &self.shards[(h.finish() as usize) & (self.shard_count - 1)]
    }

    fn cache_get(&self, tuple: &Tuple, epoch: u64) -> Option<Arc<GroundExample>> {
        if self.per_shard_capacity == 0 {
            return None;
        }
        let lookup = self
            .shard_for(tuple)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(tuple, epoch);
        match lookup {
            Lookup::Hit(g) => Some(g),
            Lookup::Stale => {
                self.counters
                    .epoch_evictions
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .stale_reads_prevented
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
            Lookup::Behind => {
                self.counters
                    .stale_reads_prevented
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
            Lookup::Miss => None,
        }
    }

    fn cache_insert(&self, tuple: Tuple, ground: Arc<GroundExample>, epoch: u64) {
        let evictions = self
            .shard_for(&tuple)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(tuple, ground, epoch, self.per_shard_capacity);
        if evictions > 0 {
            self.counters
                .cache_evictions
                .fetch_add(evictions, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for PredictorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let model = self.model.load();
        f.debug_struct("PredictorService")
            .field("epoch", &model.epoch)
            .field("predictor", &model.predictor)
            .field("cache_capacity", &self.config.cache_capacity)
            .field("cache_shards", &self.shard_count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ground_stub(tag: i64) -> Arc<GroundExample> {
        use dlearn_logic::{Clause, Literal, Term};
        let clause = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        Arc::new(GroundExample::from_clause(
            dlearn_relstore::tuple(vec![dlearn_relstore::Value::int(tag)]),
            &clause,
            &crate::LearnerConfig::fast(),
        ))
    }

    fn key(tag: i64) -> Tuple {
        dlearn_relstore::tuple(vec![dlearn_relstore::Value::int(tag)])
    }

    fn hit(shard: &mut Shard, key: &Tuple, epoch: u64) -> bool {
        matches!(shard.get(key, epoch), Lookup::Hit(_))
    }

    #[test]
    fn clock_shard_evicts_unreferenced_entries_first() {
        let mut shard = Shard::default();
        assert_eq!(shard.insert(key(1), ground_stub(1), 1, 2), 0);
        assert_eq!(shard.insert(key(2), ground_stub(2), 1, 2), 0);
        // Touch key 1 so its reference bit protects it for one sweep.
        assert!(hit(&mut shard, &key(1), 1));
        assert_eq!(shard.insert(key(3), ground_stub(3), 1, 2), 1);
        assert!(hit(&mut shard, &key(1), 1), "referenced entry survived");
        assert!(!hit(&mut shard, &key(2), 1), "unreferenced entry evicted");
        assert!(hit(&mut shard, &key(3), 1));
    }

    #[test]
    fn zero_capacity_disables_the_shard() {
        let mut shard = Shard::default();
        assert_eq!(shard.insert(key(1), ground_stub(1), 1, 0), 0);
        assert!(!hit(&mut shard, &key(1), 1));
    }

    #[test]
    fn stale_epoch_entries_are_dropped_on_lookup_and_never_served() {
        let mut shard = Shard::default();
        assert_eq!(shard.insert(key(1), ground_stub(1), 1, 4), 0);
        // A reader on epoch 2 must not see the epoch-1 grounding...
        assert!(matches!(shard.get(&key(1), 2), Lookup::Stale));
        // ...and the stale entry is gone afterwards.
        assert!(matches!(shard.get(&key(1), 2), Lookup::Miss));
        assert!(shard.index.is_empty() && shard.entries.is_empty());
    }

    #[test]
    fn lagging_readers_neither_see_nor_clobber_newer_epochs() {
        let mut shard = Shard::default();
        assert_eq!(shard.insert(key(1), ground_stub(1), 3, 4), 0);
        // An in-flight batch still on epoch 2 gets a miss, not the newer
        // grounding — and the newer entry survives.
        assert!(matches!(shard.get(&key(1), 2), Lookup::Behind));
        assert!(matches!(shard.get(&key(1), 3), Lookup::Hit(_)));
        // Its lagging insert is refused.
        assert_eq!(shard.insert(key(1), ground_stub(9), 2, 4), 0);
        assert!(matches!(shard.get(&key(1), 3), Lookup::Hit(_)));
    }

    #[test]
    fn retag_or_evict_migrates_survivors_and_drops_the_rest() {
        let mut shard = Shard::default();
        shard.insert(key(1), ground_stub(1), 2, 8); // survivor
        shard.insert(key(2), ground_stub(2), 2, 8); // delta-affected
        shard.insert(key(3), ground_stub(3), 1, 8); // stale leftover
        let affected = key(2);
        let (delta, stale) = shard.retag_or_evict(2, 3, |g| g.example == affected);
        assert_eq!((delta, stale), (1, 1));
        assert!(hit(&mut shard, &key(1), 3), "survivor re-tagged to epoch 3");
        assert!(matches!(shard.get(&key(2), 3), Lookup::Miss));
        assert!(matches!(shard.get(&key(3), 3), Lookup::Miss));
    }

    #[test]
    fn quarantine_is_bounded_and_forgets_oldest() {
        let mut q = Quarantine::default();
        for i in 0..(QUARANTINE_CAP as i64 + 10) {
            q.insert(key(i));
        }
        assert!(!q.contains(&key(0)), "oldest entries are forgotten");
        assert!(q.contains(&key(QUARANTINE_CAP as i64 + 9)));
        assert_eq!(q.set.len(), QUARANTINE_CAP);
    }
}
