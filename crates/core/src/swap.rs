//! An epoch-publication cell: the small lock-free swap primitive behind hot
//! model swap.
//!
//! [`PredictorService`](crate::PredictorService) needs exactly one thing from
//! its model pointer: readers must be able to grab a consistent
//! `Arc<snapshot>` on every batch without taking a lock, while a (rare)
//! writer atomically installs a replacement and the displaced snapshot stays
//! alive until its last in-flight reader drops it. `arc-swap` solves this on
//! crates.io; this repo vendors no registry crates, so [`SwapCell`] is the
//! ~100-line in-repo equivalent.
//!
//! The design is a two-slot hazard counter scheme:
//!
//! * Each slot holds a raw `Arc` pointer plus a **reader pin count**. A
//!   reader picks the active slot, pins it (`fetch_add`), re-checks that the
//!   slot is still active, clones the `Arc` out, and unpins. The pin spans
//!   only those few instructions — never user code.
//! * A writer serializes with other writers on a mutex, prepares the
//!   *inactive* slot: waits out any transient reader pins left from the
//!   previous flip, drops the `Arc` retired two publishes ago, parks the new
//!   one, and flips the active index. Readers that pinned the old slot
//!   before the flip already hold their clone; readers that lose the
//!   pin/re-check race simply retry against the new active slot.
//!
//! Reads are wait-free in the absence of a concurrent flip and lock-free
//! under one (a reader retries at most once per flip); writers never block
//! readers. All cross-thread edges use `SeqCst` — publication is rare and
//! correctness is worth more than a fence here.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

struct Slot<T> {
    /// `Arc::into_raw` of the parked value; null only for the initially
    /// inactive slot (before the first store).
    ptr: AtomicPtr<T>,
    /// Readers currently between pin and unpin on this slot.
    readers: AtomicUsize,
}

impl<T> Slot<T> {
    fn empty() -> Slot<T> {
        Slot {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
            readers: AtomicUsize::new(0),
        }
    }
}

/// A lock-free-read cell holding an `Arc<T>`: [`SwapCell::load`] clones the
/// current snapshot without locking, [`SwapCell::store`] atomically installs
/// a replacement while in-flight readers keep their old snapshot alive.
pub struct SwapCell<T> {
    slots: [Slot<T>; 2],
    active: AtomicUsize,
    writer: Mutex<()>,
}

// The cell hands `Arc<T>` clones across threads and lets many threads read
// concurrently, so it needs exactly the bounds `Arc<T>` itself would.
unsafe impl<T: Send + Sync> Send for SwapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SwapCell<T> {}

impl<T> SwapCell<T> {
    /// A cell initially holding `value`.
    pub fn new(value: Arc<T>) -> SwapCell<T> {
        let cell = SwapCell {
            slots: [Slot::empty(), Slot::empty()],
            active: AtomicUsize::new(0),
            writer: Mutex::new(()),
        };
        cell.slots[0]
            .ptr
            .store(Arc::into_raw(value) as *mut T, SeqCst);
        cell
    }

    /// Clone the current snapshot out of the cell without locking.
    pub fn load(&self) -> Arc<T> {
        loop {
            let i = self.active.load(SeqCst);
            let slot = &self.slots[i];
            // Pin, then re-check: if the slot is still active after the pin
            // is globally visible, any writer reusing this slot must first
            // observe the pin and wait for the unpin below — by which time
            // the strong count is already incremented.
            slot.readers.fetch_add(1, SeqCst);
            if self.active.load(SeqCst) == i {
                let ptr = slot.ptr.load(SeqCst);
                debug_assert!(!ptr.is_null(), "active slot is never empty");
                // SAFETY: the pin guarantees the writer has not dropped this
                // Arc; incrementing the strong count before unpinning keeps
                // it alive for the returned clone.
                let value = unsafe {
                    Arc::increment_strong_count(ptr);
                    Arc::from_raw(ptr)
                };
                slot.readers.fetch_sub(1, SeqCst);
                return value;
            }
            // Lost the race against a flip: unpin and retry on the new slot.
            slot.readers.fetch_sub(1, SeqCst);
        }
    }

    /// Atomically install `value` as the new snapshot. In-flight [`load`]s
    /// that already pinned the old snapshot finish on it; subsequent loads
    /// see `value`. Writers serialize against each other.
    ///
    /// [`load`]: SwapCell::load
    pub fn store(&self, value: Arc<T>) {
        let _writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let standby = 1 - self.active.load(SeqCst);
        let slot = &self.slots[standby];
        // Wait out readers still pinning the standby slot: they raced the
        // *previous* flip and unpin within a few instructions.
        while slot.readers.load(SeqCst) != 0 {
            std::hint::spin_loop();
        }
        let old = slot.ptr.swap(Arc::into_raw(value) as *mut T, SeqCst);
        if !old.is_null() {
            // SAFETY: `old` came from `Arc::into_raw` and, with the slot
            // inactive and reader-free, nothing else references it.
            unsafe { drop(Arc::from_raw(old)) };
        }
        self.active.store(standby, SeqCst);
    }
}

impl<T> Drop for SwapCell<T> {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            let ptr = *slot.ptr.get_mut();
            if !ptr.is_null() {
                // SAFETY: exclusive access; each non-null slot owns one
                // strong count from `Arc::into_raw`.
                unsafe { drop(Arc::from_raw(ptr)) };
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SwapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SwapCell").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_returns_the_stored_value_and_store_replaces_it() {
        let cell = SwapCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        cell.store(Arc::new(3));
        cell.store(Arc::new(4));
        assert_eq!(*cell.load(), 4);
    }

    #[test]
    fn old_snapshots_survive_until_their_last_reader_drops() {
        let cell = SwapCell::new(Arc::new(String::from("epoch-0")));
        let held = cell.load();
        cell.store(Arc::new(String::from("epoch-1")));
        // The displaced snapshot is still alive through `held`.
        assert_eq!(held.as_str(), "epoch-0");
        assert_eq!(cell.load().as_str(), "epoch-1");
        drop(held);
    }

    #[test]
    fn every_value_is_dropped_exactly_once() {
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let cell = SwapCell::new(Arc::new(Tracked(drops.clone())));
            for _ in 0..5 {
                let held = cell.load();
                cell.store(Arc::new(Tracked(drops.clone())));
                drop(held);
            }
        }
        // 1 initial + 5 stored values, all dropped by the end of the block.
        assert_eq!(drops.load(SeqCst), 6);
    }

    #[test]
    fn concurrent_loads_never_observe_a_torn_snapshot() {
        // Writers publish (a, a) pairs; any reader seeing a != b caught a
        // torn snapshot, any crash caught a use-after-free.
        let cell = Arc::new(SwapCell::new(Arc::new((0u64, 0u64))));
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let cell = cell.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let v = w * 1_000_000 + i;
                        cell.store(Arc::new((v, v)));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        let snap = cell.load();
                        assert_eq!(snap.0, snap.1, "torn snapshot observed");
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().expect("no panics");
        }
    }
}
