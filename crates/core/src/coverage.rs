//! Coverage testing over heterogeneous data (Section 4.3).
//!
//! To decide whether a candidate clause covers an example, DLearn builds the
//! *ground bottom clause* of the example and tests θ-subsumption against it.
//! For clauses with repair literals, positive coverage follows Definition
//! 3.4 (every repaired clause of the candidate must cover the example in
//! some repair of its ground clause) and negative coverage follows
//! Definition 3.6 (some repaired clause covers it). A direct subsumption test
//! treating repair literals as ordinary literals (Theorem 4.6) is used as a
//! fast sufficient check before falling back to the repaired-clause
//! cross-product.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dlearn_logic::{
    repaired_clauses, subsumes_numbered_decision, subsumes_numbered_decision_controlled,
    CancelToken, Clause, Decision, ExpandLimits, GroundClause, NumberedClause,
};
use dlearn_relstore::Tuple;

use crate::bottom::{BottomClauseBuilder, ProbeLog};
use crate::config::LearnerConfig;
use crate::task::LearningTask;

/// A training example together with its ground bottom clause and the ground
/// clause's repaired versions (built once, reused for every coverage test).
#[derive(Debug, Clone)]
pub struct GroundExample {
    /// The example tuple.
    pub example: Tuple,
    /// Indexed ground bottom clause.
    pub ground: GroundClause,
    /// Indexed repaired versions of the ground bottom clause.
    pub repaired: Vec<GroundClause>,
    /// The probes grounding executed — consulted by delta maintenance to
    /// decide whether this ground clause must be rebuilt after a database
    /// change (empty for clauses wrapped via [`GroundExample::from_clause`]).
    pub probes: ProbeLog,
}

impl GroundExample {
    /// Build the ground example for a tuple.
    pub fn build(
        builder: &BottomClauseBuilder<'_>,
        example: &Tuple,
        config: &LearnerConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (clause, probes) = builder.build_probed(example, &mut rng);
        let mut ground = GroundExample::from_clause(example.clone(), &clause, config);
        ground.probes = probes;
        ground
    }

    /// Wrap an already-built ground bottom clause.
    pub fn from_clause(example: Tuple, clause: &Clause, config: &LearnerConfig) -> Self {
        let limits = ExpandLimits {
            max_repairs: config.max_repaired_clauses,
            max_steps: 2048,
        };
        let repaired = repaired_clauses(clause, limits)
            .iter()
            .map(GroundClause::new)
            .collect();
        GroundExample {
            example,
            ground: GroundClause::new(clause),
            repaired,
            probes: ProbeLog::default(),
        }
    }
}

/// A candidate clause prepared for repeated coverage testing: its repaired
/// clauses are expanded once, and the clause-local variable numbering of the
/// clause and of every repaired clause is assigned once, so each subsumption
/// test runs on flat substitutions with no per-test renumbering.
#[derive(Debug, Clone)]
pub struct PreparedClause {
    /// The candidate clause (with repair groups).
    pub clause: Clause,
    /// Its repaired clauses.
    pub repaired: Vec<Clause>,
    /// The clause, renumbered to a dense variable range.
    numbered: NumberedClause,
    /// The repaired clauses, renumbered (index-aligned with `repaired`).
    numbered_repaired: Vec<NumberedClause>,
}

impl PreparedClause {
    /// Expand the candidate's repaired clauses and assign variable
    /// numberings.
    pub fn prepare(clause: Clause, config: &LearnerConfig) -> Self {
        let limits = ExpandLimits {
            max_repairs: config.max_repaired_clauses,
            max_steps: 2048,
        };
        let repaired = repaired_clauses(&clause, limits);
        let numbered = NumberedClause::new(&clause);
        let numbered_repaired = repaired.iter().map(NumberedClause::new).collect();
        PreparedClause {
            clause,
            repaired,
            numbered,
            numbered_repaired,
        }
    }

    /// Number of repaired clauses.
    pub fn repair_count(&self) -> usize {
        self.repaired.len()
    }

    /// The renumbered candidate clause.
    pub fn numbered(&self) -> &NumberedClause {
        &self.numbered
    }

    /// The renumbered repaired clauses (index-aligned with
    /// [`PreparedClause::repaired`]).
    pub fn numbered_repaired(&self) -> &[NumberedClause] {
        &self.numbered_repaired
    }

    /// Positive-coverage test (Definition 3.4) against a ground example: the
    /// clause covers it iff it θ-subsumes the ground clause directly, or
    /// every repaired clause subsumes some repaired version of the ground
    /// clause. This is the single decision path shared by the coverage
    /// engine's positive masks and [`crate::Predictor`].
    pub fn covers_ground(
        &self,
        example: &GroundExample,
        config: &dlearn_logic::SubsumptionConfig,
    ) -> bool {
        if subsumes_numbered_decision(self.numbered(), &example.ground, config).is_yes() {
            return true;
        }
        if self.repaired.is_empty() {
            return false;
        }
        self.numbered_repaired().iter().all(|cr| {
            example
                .repaired
                .iter()
                .any(|gr| subsumes_numbered_decision(cr, gr, config).is_yes())
        })
    }

    /// [`PreparedClause::covers_ground`] with cancellation and exhaustion
    /// accounting: runs the identical decision sequence (direct subsumption
    /// first, then the repaired-clause cross-product in the same
    /// short-circuit order), but polls `cancel` inside each search and counts
    /// every subsumption search whose step budget ran out. When no budget
    /// binds and no cancellation fires, the verdict is bit-identical to
    /// `covers_ground`.
    pub fn covers_ground_controlled(
        &self,
        example: &GroundExample,
        config: &dlearn_logic::SubsumptionConfig,
        cancel: Option<&CancelToken>,
    ) -> CoverageOutcome {
        let mut exhausted: u32 = 0;
        let mut decide = |c: &NumberedClause, d: &GroundClause| -> Result<bool, CoverageOutcome> {
            match subsumes_numbered_decision_controlled(c, d, config, cancel) {
                Decision::Yes => Ok(true),
                Decision::No => Ok(false),
                Decision::BudgetExhausted => {
                    exhausted += 1;
                    Ok(false)
                }
                Decision::Cancelled => Err(CoverageOutcome::Cancelled),
            }
        };
        macro_rules! check {
            ($e:expr) => {
                match $e {
                    Ok(b) => b,
                    Err(outcome) => return outcome,
                }
            };
        }
        if check!(decide(self.numbered(), &example.ground)) {
            return CoverageOutcome::Covered {
                exhausted_searches: exhausted,
            };
        }
        if self.repaired.is_empty() {
            return CoverageOutcome::NotCovered {
                exhausted_searches: exhausted,
            };
        }
        for cr in self.numbered_repaired() {
            let mut any = false;
            for gr in &example.repaired {
                if check!(decide(cr, gr)) {
                    any = true;
                    break;
                }
            }
            if !any {
                return CoverageOutcome::NotCovered {
                    exhausted_searches: exhausted,
                };
            }
        }
        CoverageOutcome::Covered {
            exhausted_searches: exhausted,
        }
    }
}

/// Outcome of a controlled coverage test: the verdict plus how many of the
/// underlying subsumption searches ran out of step budget (a budget-exhausted
/// search acts as "no" for the verdict, exactly as in the uncontrolled path,
/// but is counted so degraded answers are observable), or `Cancelled` when
/// the cancel token fired mid-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageOutcome {
    /// The clause covers the example.
    Covered {
        /// Subsumption searches that hit the step budget during this test.
        exhausted_searches: u32,
    },
    /// The clause does not cover the example.
    NotCovered {
        /// Subsumption searches that hit the step budget during this test.
        exhausted_searches: u32,
    },
    /// The cancel token fired before the test concluded.
    Cancelled,
}

impl CoverageOutcome {
    /// The coverage verdict; `None` when the test was cancelled.
    pub fn verdict(self) -> Option<bool> {
        match self {
            CoverageOutcome::Covered { .. } => Some(true),
            CoverageOutcome::NotCovered { .. } => Some(false),
            CoverageOutcome::Cancelled => None,
        }
    }

    /// Number of budget-exhausted subsumption searches (0 when cancelled).
    pub fn exhausted_searches(self) -> u32 {
        match self {
            CoverageOutcome::Covered { exhausted_searches }
            | CoverageOutcome::NotCovered { exhausted_searches } => exhausted_searches,
            CoverageOutcome::Cancelled => 0,
        }
    }
}

/// Coverage statistics of a clause over a set of examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoverageCounts {
    /// Covered positive examples.
    pub positives: usize,
    /// Covered negative examples.
    pub negatives: usize,
}

impl CoverageCounts {
    /// The clause score used by the covering loop: positives minus negatives.
    pub fn score(&self) -> i64 {
        self.positives as i64 - self.negatives as i64
    }
}

/// How many ground examples a delta rebuild re-grounded versus reused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroundPatchStats {
    /// Positive examples whose grounding was rebuilt.
    pub positives_reground: usize,
    /// Positive examples whose stored grounding was reused unchanged.
    pub positives_reused: usize,
    /// Negative examples whose grounding was rebuilt.
    pub negatives_reground: usize,
    /// Negative examples whose stored grounding was reused unchanged.
    pub negatives_reused: usize,
}

/// The coverage engine: precomputed ground examples for the whole training
/// set plus the subsumption-based coverage tests.
pub struct CoverageEngine {
    positives: Vec<GroundExample>,
    negatives: Vec<GroundExample>,
    config: LearnerConfig,
}

impl CoverageEngine {
    /// Build ground bottom clauses for every training example of the task.
    pub fn build(
        task: &LearningTask,
        builder: &BottomClauseBuilder<'_>,
        config: &LearnerConfig,
    ) -> Self {
        let positives = Self::build_examples(&task.positives, builder, config, 0x9e37);
        let negatives = Self::build_examples(&task.negatives, builder, config, 0x7f4a);
        CoverageEngine {
            positives,
            negatives,
            config: config.clone(),
        }
    }

    fn build_examples(
        examples: &[Tuple],
        builder: &BottomClauseBuilder<'_>,
        config: &LearnerConfig,
        salt: u64,
    ) -> Vec<GroundExample> {
        crate::par::chunked_map(examples, config.effective_threads(), 8, |idx, e| {
            GroundExample::build(builder, e, config, config.seed ^ salt ^ idx as u64)
        })
    }

    /// Rebuild the engine against a mutated database: re-ground exactly the
    /// examples `affected` selects — with the same per-example seed a
    /// from-scratch build would use, so patched clauses are bit-identical to
    /// fresh ones — and reuse every other ground example unchanged. The
    /// builder must already be bound to the mutated task and catalog.
    pub(crate) fn rebuilt_where<F>(
        &self,
        builder: &BottomClauseBuilder<'_>,
        config: &LearnerConfig,
        mut affected: F,
    ) -> (CoverageEngine, GroundPatchStats)
    where
        F: FnMut(&GroundExample) -> bool,
    {
        let patch = |examples: &[GroundExample], salt: u64, affected: &mut F| {
            let mut reground = 0usize;
            let out: Vec<GroundExample> = examples
                .iter()
                .enumerate()
                .map(|(idx, g)| {
                    if affected(g) {
                        reground += 1;
                        GroundExample::build(
                            builder,
                            &g.example,
                            config,
                            config.seed ^ salt ^ idx as u64,
                        )
                    } else {
                        g.clone()
                    }
                })
                .collect();
            let reused = examples.len() - reground;
            (out, reground, reused)
        };
        let (positives, positives_reground, positives_reused) =
            patch(&self.positives, 0x9e37, &mut affected);
        let (negatives, negatives_reground, negatives_reused) =
            patch(&self.negatives, 0x7f4a, &mut affected);
        (
            CoverageEngine {
                positives,
                negatives,
                config: config.clone(),
            },
            GroundPatchStats {
                positives_reground,
                positives_reused,
                negatives_reground,
                negatives_reused,
            },
        )
    }

    /// Ground examples of the positive training set.
    pub fn positives(&self) -> &[GroundExample] {
        &self.positives
    }

    /// Ground examples of the negative training set.
    pub fn negatives(&self) -> &[GroundExample] {
        &self.negatives
    }

    /// The ground example of the `i`-th positive training example.
    pub fn positive(&self, index: usize) -> &GroundExample {
        &self.positives[index]
    }

    /// Positive coverage (Definition 3.4): the clause covers `example` iff it
    /// θ-subsumes the ground clause directly, or every one of its repaired
    /// clauses subsumes some repaired version of the ground clause.
    pub fn covers_positive(&self, prepared: &PreparedClause, example: &GroundExample) -> bool {
        prepared.covers_ground(example, &self.config.subsumption)
    }

    /// Negative coverage (Definition 3.6): the clause covers `example` iff
    /// some repaired clause of it subsumes some repaired version of the
    /// ground clause (or the clause subsumes the ground clause directly).
    pub fn covers_negative(&self, prepared: &PreparedClause, example: &GroundExample) -> bool {
        if subsumes_numbered_decision(
            prepared.numbered(),
            &example.ground,
            &self.config.subsumption,
        )
        .is_yes()
        {
            return true;
        }
        prepared.numbered_repaired().iter().any(|cr| {
            example
                .repaired
                .iter()
                .any(|gr| subsumes_numbered_decision(cr, gr, &self.config.subsumption).is_yes())
        })
    }

    /// [`CoverageEngine::covers_positive`] under an explicit subsumption
    /// config and cancel token — the serving-tier entry point, where the
    /// per-call budget may tighten `max_steps` below the training config.
    pub fn covers_positive_controlled(
        &self,
        prepared: &PreparedClause,
        example: &GroundExample,
        config: &dlearn_logic::SubsumptionConfig,
        cancel: Option<&CancelToken>,
    ) -> CoverageOutcome {
        prepared.covers_ground_controlled(example, config, cancel)
    }

    /// Coverage mask over the positive training examples.
    pub fn positive_mask(&self, prepared: &PreparedClause) -> Vec<bool> {
        self.mask(prepared, true, self.config.effective_threads())
    }

    /// Coverage mask over the negative training examples.
    pub fn negative_mask(&self, prepared: &PreparedClause) -> Vec<bool> {
        self.mask(prepared, false, self.config.effective_threads())
    }

    /// [`CoverageEngine::positive_mask`] on one thread, for callers that are
    /// themselves a parallel fan-out (the FOIL/TILDE candidate scorers, like
    /// [`CoverageEngine::score_serial`] for generalization scoring) — the
    /// per-mask threads must not multiply underneath the fan-out.
    pub fn positive_mask_serial(&self, prepared: &PreparedClause) -> Vec<bool> {
        self.mask(prepared, true, 1)
    }

    /// [`CoverageEngine::negative_mask`] on one thread; see
    /// [`CoverageEngine::positive_mask_serial`].
    pub fn negative_mask_serial(&self, prepared: &PreparedClause) -> Vec<bool> {
        self.mask(prepared, false, 1)
    }

    fn mask(&self, prepared: &PreparedClause, positive: bool, threads: usize) -> Vec<bool> {
        let examples = if positive {
            &self.positives
        } else {
            &self.negatives
        };
        crate::par::chunked_map(examples, threads, 8, |_, e| {
            if positive {
                self.covers_positive(prepared, e)
            } else {
                self.covers_negative(prepared, e)
            }
        })
    }

    fn counts_with_threads(&self, prepared: &PreparedClause, threads: usize) -> CoverageCounts {
        let positives = self
            .mask(prepared, true, threads)
            .iter()
            .filter(|&&b| b)
            .count();
        let negatives = self
            .mask(prepared, false, threads)
            .iter()
            .filter(|&&b| b)
            .count();
        CoverageCounts {
            positives,
            negatives,
        }
    }

    /// Count coverage over both example sets.
    pub fn counts(&self, prepared: &PreparedClause) -> CoverageCounts {
        self.counts_with_threads(prepared, self.config.effective_threads())
    }

    /// The clause score (covered positives minus covered negatives).
    pub fn score(&self, prepared: &PreparedClause) -> i64 {
        self.counts(prepared).score()
    }

    /// [`CoverageEngine::score`] without the per-mask thread fan-out. Callers
    /// that already parallelize *over* scoring calls (the generalization
    /// fan-out in the covering loop) use this so thread counts do not
    /// multiply to cores². The counts — and therefore the score — are
    /// identical at any thread count.
    pub fn score_serial(&self, prepared: &PreparedClause) -> i64 {
        self.counts_with_threads(prepared, 1).score()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_logic::{Literal, Term};

    fn config() -> LearnerConfig {
        LearnerConfig {
            coverage_threads: 1,
            ..LearnerConfig::fast()
        }
    }

    fn ground_from(clause: &Clause) -> GroundExample {
        GroundExample::from_clause(
            dlearn_relstore::tuple(vec![dlearn_relstore::Value::str("e")]),
            clause,
            &config(),
        )
    }

    fn ge_comedy() -> GroundExample {
        let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        d.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(0)],
        ));
        d.push_unique(Literal::relation(
            "genres",
            vec![Term::var(1), Term::constant("comedy")],
        ));
        ground_from(&d)
    }

    fn ge_drama() -> GroundExample {
        let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        d.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(0)],
        ));
        d.push_unique(Literal::relation(
            "genres",
            vec![Term::var(1), Term::constant("drama")],
        ));
        ground_from(&d)
    }

    fn comedy_clause() -> PreparedClause {
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        c.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(0)],
        ));
        c.push_unique(Literal::relation(
            "genres",
            vec![Term::var(1), Term::constant("comedy")],
        ));
        PreparedClause::prepare(c, &config())
    }

    #[test]
    fn direct_subsumption_covers() {
        let engine = CoverageEngine {
            positives: vec![ge_comedy()],
            negatives: vec![ge_drama()],
            config: config(),
        };
        let prepared = comedy_clause();
        assert!(engine.covers_positive(&prepared, &engine.positives[0]));
        assert!(!engine.covers_negative(&prepared, &engine.negatives[0]));
        let counts = engine.counts(&prepared);
        assert_eq!(
            counts,
            CoverageCounts {
                positives: 1,
                negatives: 0
            }
        );
        assert_eq!(counts.score(), 1);
    }

    #[test]
    fn masks_align_with_example_order() {
        let engine = CoverageEngine {
            positives: vec![ge_comedy(), ge_drama()],
            negatives: vec![],
            config: config(),
        };
        let mask = engine.positive_mask(&comedy_clause());
        assert_eq!(mask, vec![true, false]);
    }

    #[test]
    fn prepared_clause_without_repairs_has_single_expansion() {
        let prepared = comedy_clause();
        assert_eq!(prepared.repair_count(), 1);
    }
}
