//! Coverage testing over heterogeneous data (Section 4.3).
//!
//! To decide whether a candidate clause covers an example, DLearn builds the
//! *ground bottom clause* of the example and tests θ-subsumption against it.
//! For clauses with repair literals, positive coverage follows Definition
//! 3.4 (every repaired clause of the candidate must cover the example in
//! some repair of its ground clause) and negative coverage follows
//! Definition 3.6 (some repaired clause covers it). A direct subsumption test
//! treating repair literals as ordinary literals (Theorem 4.6) is used as a
//! fast sufficient check before falling back to the repaired-clause
//! cross-product.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dlearn_logic::{repaired_clauses, subsumes, Clause, ExpandLimits, GroundClause};
use dlearn_relstore::Tuple;

use crate::bottom::BottomClauseBuilder;
use crate::config::LearnerConfig;
use crate::task::LearningTask;

/// A training example together with its ground bottom clause and the ground
/// clause's repaired versions (built once, reused for every coverage test).
#[derive(Debug, Clone)]
pub struct GroundExample {
    /// The example tuple.
    pub example: Tuple,
    /// Indexed ground bottom clause.
    pub ground: GroundClause,
    /// Indexed repaired versions of the ground bottom clause.
    pub repaired: Vec<GroundClause>,
}

impl GroundExample {
    /// Build the ground example for a tuple.
    pub fn build(
        builder: &BottomClauseBuilder<'_>,
        example: &Tuple,
        config: &LearnerConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let clause = builder.build(example, &mut rng);
        GroundExample::from_clause(example.clone(), &clause, config)
    }

    /// Wrap an already-built ground bottom clause.
    pub fn from_clause(example: Tuple, clause: &Clause, config: &LearnerConfig) -> Self {
        let limits = ExpandLimits {
            max_repairs: config.max_repaired_clauses,
            max_steps: 2048,
        };
        let repaired = repaired_clauses(clause, limits)
            .iter()
            .map(GroundClause::new)
            .collect();
        GroundExample {
            example,
            ground: GroundClause::new(clause),
            repaired,
        }
    }
}

/// A candidate clause prepared for repeated coverage testing: its repaired
/// clauses are expanded once.
#[derive(Debug, Clone)]
pub struct PreparedClause {
    /// The candidate clause (with repair groups).
    pub clause: Clause,
    /// Its repaired clauses.
    pub repaired: Vec<Clause>,
}

impl PreparedClause {
    /// Expand the candidate's repaired clauses.
    pub fn prepare(clause: Clause, config: &LearnerConfig) -> Self {
        let limits = ExpandLimits {
            max_repairs: config.max_repaired_clauses,
            max_steps: 2048,
        };
        let repaired = repaired_clauses(&clause, limits);
        PreparedClause { clause, repaired }
    }

    /// Number of repaired clauses.
    pub fn repair_count(&self) -> usize {
        self.repaired.len()
    }
}

/// Coverage statistics of a clause over a set of examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoverageCounts {
    /// Covered positive examples.
    pub positives: usize,
    /// Covered negative examples.
    pub negatives: usize,
}

impl CoverageCounts {
    /// The clause score used by the covering loop: positives minus negatives.
    pub fn score(&self) -> i64 {
        self.positives as i64 - self.negatives as i64
    }
}

/// The coverage engine: precomputed ground examples for the whole training
/// set plus the subsumption-based coverage tests.
pub struct CoverageEngine {
    positives: Vec<GroundExample>,
    negatives: Vec<GroundExample>,
    config: LearnerConfig,
}

impl CoverageEngine {
    /// Build ground bottom clauses for every training example of the task.
    pub fn build(
        task: &LearningTask,
        builder: &BottomClauseBuilder<'_>,
        config: &LearnerConfig,
    ) -> Self {
        let positives = Self::build_examples(&task.positives, builder, config, 0x9e37);
        let negatives = Self::build_examples(&task.negatives, builder, config, 0x7f4a);
        CoverageEngine {
            positives,
            negatives,
            config: config.clone(),
        }
    }

    fn build_examples(
        examples: &[Tuple],
        builder: &BottomClauseBuilder<'_>,
        config: &LearnerConfig,
        salt: u64,
    ) -> Vec<GroundExample> {
        let threads = config.effective_threads().min(examples.len().max(1));
        if threads <= 1 || examples.len() < 8 {
            return examples
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    GroundExample::build(builder, e, config, config.seed ^ salt ^ i as u64)
                })
                .collect();
        }
        let chunk = examples.len().div_ceil(threads);
        let mut out: Vec<Vec<GroundExample>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (ci, chunk_examples) in examples.chunks(chunk).enumerate() {
                handles.push(scope.spawn(move || {
                    chunk_examples
                        .iter()
                        .enumerate()
                        .map(|(i, e)| {
                            let idx = ci * chunk + i;
                            GroundExample::build(
                                builder,
                                e,
                                config,
                                config.seed ^ salt ^ idx as u64,
                            )
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                out.push(h.join().expect("coverage worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }

    /// Ground examples of the positive training set.
    pub fn positives(&self) -> &[GroundExample] {
        &self.positives
    }

    /// Ground examples of the negative training set.
    pub fn negatives(&self) -> &[GroundExample] {
        &self.negatives
    }

    /// The ground example of the `i`-th positive training example.
    pub fn positive(&self, index: usize) -> &GroundExample {
        &self.positives[index]
    }

    /// Positive coverage (Definition 3.4): the clause covers `example` iff it
    /// θ-subsumes the ground clause directly, or every one of its repaired
    /// clauses subsumes some repaired version of the ground clause.
    pub fn covers_positive(&self, prepared: &PreparedClause, example: &GroundExample) -> bool {
        if subsumes(&prepared.clause, &example.ground, &self.config.subsumption).is_some() {
            return true;
        }
        if prepared.repaired.is_empty() {
            return false;
        }
        prepared.repaired.iter().all(|cr| {
            example
                .repaired
                .iter()
                .any(|gr| subsumes(cr, gr, &self.config.subsumption).is_some())
        })
    }

    /// Negative coverage (Definition 3.6): the clause covers `example` iff
    /// some repaired clause of it subsumes some repaired version of the
    /// ground clause (or the clause subsumes the ground clause directly).
    pub fn covers_negative(&self, prepared: &PreparedClause, example: &GroundExample) -> bool {
        if subsumes(&prepared.clause, &example.ground, &self.config.subsumption).is_some() {
            return true;
        }
        prepared.repaired.iter().any(|cr| {
            example
                .repaired
                .iter()
                .any(|gr| subsumes(cr, gr, &self.config.subsumption).is_some())
        })
    }

    /// Coverage mask over the positive training examples.
    pub fn positive_mask(&self, prepared: &PreparedClause) -> Vec<bool> {
        self.mask(prepared, true)
    }

    /// Coverage mask over the negative training examples.
    pub fn negative_mask(&self, prepared: &PreparedClause) -> Vec<bool> {
        self.mask(prepared, false)
    }

    fn mask(&self, prepared: &PreparedClause, positive: bool) -> Vec<bool> {
        let examples = if positive {
            &self.positives
        } else {
            &self.negatives
        };
        let threads = self.config.effective_threads().min(examples.len().max(1));
        if threads <= 1 || examples.len() < 8 {
            return examples
                .iter()
                .map(|e| {
                    if positive {
                        self.covers_positive(prepared, e)
                    } else {
                        self.covers_negative(prepared, e)
                    }
                })
                .collect();
        }
        let chunk = examples.len().div_ceil(threads);
        let mut out: Vec<Vec<bool>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk_examples in examples.chunks(chunk) {
                handles.push(scope.spawn(move || {
                    chunk_examples
                        .iter()
                        .map(|e| {
                            if positive {
                                self.covers_positive(prepared, e)
                            } else {
                                self.covers_negative(prepared, e)
                            }
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                out.push(h.join().expect("coverage worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }

    /// Count coverage over both example sets.
    pub fn counts(&self, prepared: &PreparedClause) -> CoverageCounts {
        let positives = self.positive_mask(prepared).iter().filter(|&&b| b).count();
        let negatives = self.negative_mask(prepared).iter().filter(|&&b| b).count();
        CoverageCounts {
            positives,
            negatives,
        }
    }

    /// The clause score (covered positives minus covered negatives).
    pub fn score(&self, prepared: &PreparedClause) -> i64 {
        self.counts(prepared).score()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_logic::{Literal, Term};

    fn config() -> LearnerConfig {
        LearnerConfig {
            coverage_threads: 1,
            ..LearnerConfig::fast()
        }
    }

    fn ground_from(clause: &Clause) -> GroundExample {
        GroundExample::from_clause(
            dlearn_relstore::tuple(vec![dlearn_relstore::Value::str("e")]),
            clause,
            &config(),
        )
    }

    fn ge_comedy() -> GroundExample {
        let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        d.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(0)],
        ));
        d.push_unique(Literal::relation(
            "genres",
            vec![Term::var(1), Term::constant("comedy")],
        ));
        ground_from(&d)
    }

    fn ge_drama() -> GroundExample {
        let mut d = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        d.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(0)],
        ));
        d.push_unique(Literal::relation(
            "genres",
            vec![Term::var(1), Term::constant("drama")],
        ));
        ground_from(&d)
    }

    fn comedy_clause() -> PreparedClause {
        let mut c = Clause::new(Literal::relation("t", vec![Term::var(0)]));
        c.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(0)],
        ));
        c.push_unique(Literal::relation(
            "genres",
            vec![Term::var(1), Term::constant("comedy")],
        ));
        PreparedClause::prepare(c, &config())
    }

    #[test]
    fn direct_subsumption_covers() {
        let engine = CoverageEngine {
            positives: vec![ge_comedy()],
            negatives: vec![ge_drama()],
            config: config(),
        };
        let prepared = comedy_clause();
        assert!(engine.covers_positive(&prepared, &engine.positives[0]));
        assert!(!engine.covers_negative(&prepared, &engine.negatives[0]));
        let counts = engine.counts(&prepared);
        assert_eq!(
            counts,
            CoverageCounts {
                positives: 1,
                negatives: 0
            }
        );
        assert_eq!(counts.score(), 1);
    }

    #[test]
    fn masks_align_with_example_order() {
        let engine = CoverageEngine {
            positives: vec![ge_comedy(), ge_drama()],
            negatives: vec![],
            config: config(),
        };
        let mask = engine.positive_mask(&comedy_clause());
        assert_eq!(mask, vec![true, false]);
    }

    #[test]
    fn prepared_clause_without_repairs_has_single_expansion() {
        let prepared = comedy_clause();
        assert_eq!(prepared.repair_count(), 1);
    }
}
