//! The learner: strategy-specific preprocessing, the covering loop
//! (Algorithm 1) and the baseline systems of the paper's evaluation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dlearn_constraints::{enforce_md_best_match, minimal_cfd_repair, MdCatalog};
use dlearn_logic::{Clause, Definition, NumberedClause};
use dlearn_relstore::{Attribute, Database, RelationSchema, ValueType};
use dlearn_similarity::{IndexConfig, SimilarityOperator};

use crate::bottom::BottomClauseBuilder;
use crate::config::LearnerConfig;
use crate::coverage::{CoverageEngine, PreparedClause};
use crate::generalize::generalize_prepared;
use crate::model::{ClauseStats, LearnedModel};
use crate::task::LearningTask;

/// Which system to run. `DLearn` is the paper's contribution; the others are
/// the baselines of Section 6.1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// DLearn with MD and CFD repair support (DLearn-CFD in Table 5; plain
    /// DLearn in Table 4 where no CFD violations are injected).
    DLearn,
    /// Castor over the original databases, ignoring MDs entirely.
    CastorNoMd,
    /// Castor where MD attributes may be joined, but only through exact
    /// matches.
    CastorExact,
    /// Castor over a database where each value is first unified with its
    /// single most similar counterpart (one hard match per value).
    CastorClean,
    /// DLearn with MDs only, run over the minimal repair of the CFD
    /// violations (the baseline of Table 5).
    DLearnRepaired,
}

impl Strategy {
    /// All strategies, in the order the paper's tables list them.
    pub fn all() -> [Strategy; 5] {
        [
            Strategy::CastorNoMd,
            Strategy::CastorExact,
            Strategy::CastorClean,
            Strategy::DLearn,
            Strategy::DLearnRepaired,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::DLearn => "DLearn",
            Strategy::CastorNoMd => "Castor-NoMD",
            Strategy::CastorExact => "Castor-Exact",
            Strategy::CastorClean => "Castor-Clean",
            Strategy::DLearnRepaired => "DLearn-Repaired",
        }
    }
}

/// Clone the task's database and add the target relation, populated with the
/// training examples, so that MDs whose left-hand relation is the target can
/// be indexed. Attribute types are inferred from the first example.
pub fn augment_with_target(task: &LearningTask) -> Database {
    let mut db = task.database.clone();
    if db.schema().contains(&task.target.name) {
        return db;
    }
    let sample = task.positives.first().or(task.negatives.first());
    let attrs: Vec<Attribute> = task
        .target
        .attributes
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let ty = sample
                .and_then(|t| t.value(i))
                .map(|v| match v.value_type() {
                    ValueType::Int => ValueType::Int,
                    _ => ValueType::Str,
                })
                .unwrap_or(ValueType::Str);
            Attribute::new(name.clone(), ty)
        })
        .collect();
    if db
        .create_relation(RelationSchema::new(task.target.name.clone(), attrs))
        .is_ok()
    {
        for e in task.positives.iter().chain(task.negatives.iter()) {
            let _ = db.insert(&task.target.name, e.clone());
        }
    }
    db
}

/// Copy a database, omitting one relation (used to strip an augmented target
/// relation again after Castor-Clean preprocessing).
fn copy_without(db: &Database, skip: &str) -> Database {
    let mut out = Database::new();
    for rel in db.relations() {
        if rel.name() == skip {
            continue;
        }
        out.create_relation(rel.schema().clone())
            .expect("fresh database");
        for (_, t) in rel.iter() {
            out.insert(rel.name(), t.clone())
                .expect("copied tuple is valid");
        }
    }
    out
}

/// Outcome of a learning run: the model plus basic run statistics.
#[derive(Debug)]
pub struct LearnOutcome {
    /// The learned model.
    pub model: LearnedModel,
    /// Wall-clock learning time in seconds.
    pub seconds: f64,
    /// Number of bottom clauses constructed.
    pub bottom_clauses_built: usize,
}

/// A configurable learner running one of the [`Strategy`] variants.
#[derive(Debug, Clone)]
pub struct Learner {
    strategy: Strategy,
    config: LearnerConfig,
}

impl Learner {
    /// Create a learner for a strategy.
    pub fn new(strategy: Strategy, config: LearnerConfig) -> Self {
        Learner { strategy, config }
    }

    /// The learner's strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Learn a definition for the task's target relation.
    pub fn learn(&self, task: &LearningTask) -> LearnOutcome {
        let start = std::time::Instant::now();

        // 1. Strategy-specific preprocessing of the database and config.
        let mut config = self.config.clone();
        let mut task = task.clone();
        match self.strategy {
            Strategy::DLearn => {}
            Strategy::CastorNoMd => {
                config.use_mds = false;
                config.use_cfd_repairs = false;
            }
            Strategy::CastorExact => {
                config.exact_md_joins = true;
                config.use_cfd_repairs = false;
            }
            Strategy::CastorClean => {
                // Resolve heterogeneity up front: unify each value with its
                // single most similar counterpart, then learn with exact
                // joins only.
                let augmented = augment_with_target(&task);
                let mut cleaned = augmented;
                let index_config = IndexConfig {
                    top_k: 1,
                    operator: SimilarityOperator::with_threshold(config.similarity_threshold),
                    threads: config.index_threads,
                };
                for md in &task.mds {
                    let (next, _) = enforce_md_best_match(&cleaned, md, &index_config);
                    cleaned = next;
                }
                task.database = copy_without(&cleaned, &task.target.name);
                // After unification the MD attributes hold identical strings,
                // so Castor learns over the "clean" database with exact joins
                // along the (now resolved) MD attributes.
                config.exact_md_joins = true;
                config.use_cfd_repairs = false;
            }
            Strategy::DLearnRepaired => {
                let (repaired, _) = minimal_cfd_repair(&task.database, &task.cfds);
                task.database = repaired;
                config.use_cfd_repairs = false;
            }
        }

        // 2. Precompute similarity matches for the MDs (Section 5).
        let catalog = if config.use_mds && !task.mds.is_empty() {
            let threshold = if config.exact_md_joins {
                // Exact joins: only identical normalized strings match.
                0.9999
            } else {
                config.similarity_threshold
            };
            let index_config = IndexConfig {
                top_k: config.km,
                operator: SimilarityOperator::with_threshold(threshold),
                threads: config.index_threads,
            };
            MdCatalog::build(&task.mds, &augment_with_target(&task), &index_config)
        } else {
            MdCatalog::default()
        };

        // 3. Ground bottom clauses for all training examples.
        let builder = BottomClauseBuilder::new(&task, &catalog, &config);
        let engine = CoverageEngine::build(&task, &builder, &config);
        let mut bottom_clauses_built = task.positives.len() + task.negatives.len();

        // 4. Covering loop (Algorithm 1).
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut uncovered: Vec<usize> = (0..task.positives.len()).collect();
        let mut definition = Definition::new();
        let mut stats: Vec<ClauseStats> = Vec::new();

        while !uncovered.is_empty() && definition.len() < config.max_clauses {
            let seed_example = uncovered[0];
            let bottom = builder.build(&task.positives[seed_example], &mut rng);
            bottom_clauses_built += 1;
            if bottom.body.is_empty() {
                uncovered.remove(0);
                continue;
            }

            // LearnClause: generalize the bottom clause against sampled
            // uncovered positives, hill-climbing on the clause score.
            let mut current = bottom;
            let mut current_prepared = PreparedClause::prepare(current.clone(), &config);
            let mut current_score = engine.score(&current_prepared);
            for _round in 0..config.max_generalization_rounds {
                let mut sample: Vec<usize> = uncovered
                    .iter()
                    .copied()
                    .filter(|&i| i != seed_example)
                    .collect();
                sample.shuffle(&mut rng);
                sample.truncate(config.sample_positives);
                if sample.is_empty() {
                    break;
                }
                let best = best_generalization(
                    &engine,
                    &current,
                    current_prepared.numbered(),
                    &sample,
                    &config,
                );
                match best {
                    Some((score, prepared)) if score > current_score => {
                        current = prepared.clause.clone();
                        current_prepared = prepared;
                        current_score = score;
                    }
                    _ => break,
                }
            }

            // Minimum criterion: the clause must cover enough positives and
            // more positives than negatives.
            let positive_mask = engine.positive_mask(&current_prepared);
            let positives_covered = positive_mask.iter().filter(|&&b| b).count();
            let negatives_covered = engine
                .negative_mask(&current_prepared)
                .iter()
                .filter(|&&b| b)
                .count();
            let accept = positives_covered >= config.min_positive_coverage.min(uncovered.len())
                && positives_covered > negatives_covered;
            if accept {
                definition.push(current);
                stats.push(ClauseStats {
                    positives_covered,
                    negatives_covered,
                });
                uncovered.retain(|&i| !positive_mask[i]);
                if uncovered.first() == Some(&seed_example) {
                    // Defensive: never loop forever on an uncoverable seed.
                    uncovered.remove(0);
                }
            } else {
                uncovered.remove(0);
            }
        }

        let model = LearnedModel::new(definition, stats, task, catalog, config);
        LearnOutcome {
            model,
            seconds: start.elapsed().as_secs_f64(),
            bottom_clauses_built,
        }
    }
}

/// Score every sampled generalization candidate and return the best one.
///
/// The per-candidate work — generalize `current` toward the sampled
/// positive's ground bottom clause, expand/renumber the result, score it
/// against the full training set — is independent across samples, so it fans
/// out across `std::thread::scope` workers in contiguous chunks (the same
/// order-preserving [`crate::par::chunked_map`] the coverage masks use).
/// Workers score with [`CoverageEngine::score_serial`] so the per-mask
/// coverage threads do not multiply underneath the fan-out (cores², with
/// both knobs defaulting to available cores). The reduction is deterministic
/// and matches the serial loop exactly: highest score wins, ties broken by
/// the earliest sample position, so learned definitions are bit-identical at
/// any thread count.
fn best_generalization(
    engine: &CoverageEngine,
    current: &Clause,
    current_numbered: &NumberedClause,
    sample: &[usize],
    config: &LearnerConfig,
) -> Option<(i64, PreparedClause)> {
    let threads = config.effective_generalization_threads();
    let fanned_out = threads > 1 && sample.len() >= 2;
    let scored = crate::par::chunked_map(sample, threads, 2, |_, &ei| {
        let target_ground = &engine.positive(ei).ground;
        let candidate =
            generalize_prepared(current, current_numbered, target_ground, config.binding_cap)?;
        if candidate.body.is_empty() {
            return None;
        }
        let prepared = PreparedClause::prepare(candidate, config);
        let score = if fanned_out {
            engine.score_serial(&prepared)
        } else {
            engine.score(&prepared)
        };
        Some((score, prepared))
    });

    // First strict maximum in sample order — identical to the serial loop.
    let mut best: Option<(i64, PreparedClause)> = None;
    for entry in scored.into_iter().flatten() {
        if best.as_ref().map(|(s, _)| entry.0 > *s).unwrap_or(true) {
            best = Some(entry);
        }
    }
    best
}

/// The DLearn system with its default strategy (learning directly over the
/// dirty database with MD and CFD repair literals). This is the main entry
/// point of the library.
#[derive(Debug, Clone)]
pub struct DLearn {
    learner: Learner,
}

impl DLearn {
    /// Create a DLearn learner.
    pub fn new(config: LearnerConfig) -> Self {
        DLearn {
            learner: Learner::new(Strategy::DLearn, config),
        }
    }

    /// Learn a definition, returning just the model.
    pub fn learn(&mut self, task: &LearningTask) -> LearnedModel {
        self.learner.learn(task).model
    }

    /// Learn a definition, returning the model together with run statistics.
    pub fn learn_with_stats(&mut self, task: &LearningTask) -> LearnOutcome {
        self.learner.learn(task)
    }
}

/// Convenience constructors for the baseline systems.
pub mod baselines {
    use super::{Learner, LearnerConfig, Strategy};

    /// Castor without MD information.
    pub fn castor_no_md(config: LearnerConfig) -> Learner {
        Learner::new(Strategy::CastorNoMd, config)
    }

    /// Castor with exact joins on MD attributes.
    pub fn castor_exact(config: LearnerConfig) -> Learner {
        Learner::new(Strategy::CastorExact, config)
    }

    /// Castor over a best-match-cleaned database.
    pub fn castor_clean(config: LearnerConfig) -> Learner {
        Learner::new(Strategy::CastorClean, config)
    }

    /// DLearn (MDs only) over the minimal CFD repair of the database.
    pub fn dlearn_repaired(config: LearnerConfig) -> Learner {
        Learner::new(Strategy::DLearnRepaired, config)
    }
}

/// Helpers shared by unit tests across the crate.
#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;
    use crate::task::TargetSpec;
    use dlearn_constraints::MatchingDependency;
    use dlearn_relstore::{tuple, DatabaseBuilder, RelationBuilder, Value};

    /// A small two-source movie task: the target `hit(imdb_id)` holds for
    /// movies that are comedies (IMDB side) *and* rated R (OMDB side); the
    /// only way to reach the rating is a similarity join on titles.
    pub fn two_source_task() -> LearningTask {
        let mut builder = DatabaseBuilder::new()
            .relation(
                RelationBuilder::new("imdb_movies")
                    .int_attr("id")
                    .str_attr("title")
                    .build(),
            )
            .relation(
                RelationBuilder::new("imdb_genres")
                    .int_attr("id")
                    .str_attr("genre")
                    .build(),
            )
            .relation(
                RelationBuilder::new("omdb_movies")
                    .int_attr("oid")
                    .str_attr("title")
                    .build(),
            )
            .relation(
                RelationBuilder::new("omdb_ratings")
                    .int_attr("oid")
                    .str_attr("rating")
                    .build(),
            );
        // Ten movies; even ids are comedies, and the first six are rated R on
        // the OMDB side. Hits: comedies rated R = ids 0, 2, 4.
        let titles = [
            "Alpha Dawn",
            "Beta Harvest",
            "Crimson Tide Story",
            "Delta Grove",
            "Echo Valley",
            "Foxtrot Nine",
            "Golden Hour",
            "Hidden Creek",
            "Iron Summit",
            "Jade Harbor",
        ];
        for (i, title) in titles.iter().enumerate() {
            let id = i as i64;
            builder = builder
                .row("imdb_movies", vec![Value::int(id), Value::str(*title)])
                .row(
                    "imdb_genres",
                    vec![
                        Value::int(id),
                        Value::str(if i % 2 == 0 { "comedy" } else { "thriller" }),
                    ],
                )
                .row(
                    "omdb_movies",
                    vec![
                        Value::int(100 + id),
                        Value::str(format!("{title} ({})", 1990 + i)),
                    ],
                )
                .row(
                    "omdb_ratings",
                    vec![
                        Value::int(100 + id),
                        Value::str(if i < 6 { "R" } else { "PG" }),
                    ],
                );
        }
        let db = builder.build();
        let mut task = LearningTask::new(db, TargetSpec::with_attributes("hit", vec!["imdb_id"]));
        task.mds.push(MatchingDependency::simple(
            "titles",
            "imdb_movies",
            "title",
            "omdb_movies",
            "title",
        ));
        task.add_constant_attribute("imdb_genres", "genre");
        task.add_constant_attribute("omdb_ratings", "rating");
        for i in [0i64, 2, 4] {
            task.positives.push(tuple(vec![Value::int(i)]));
        }
        for i in [1i64, 3, 5, 6, 7, 8, 9] {
            task.negatives.push(tuple(vec![Value::int(i)]));
        }
        task
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::two_source_task;
    use super::*;

    fn config() -> LearnerConfig {
        LearnerConfig {
            km: 2,
            iterations: 2,
            sample_size: 8,
            min_positive_coverage: 2,
            sample_positives: 4,
            max_generalization_rounds: 3,
            coverage_threads: 1,
            ..LearnerConfig::default()
        }
    }

    #[test]
    fn dlearn_learns_a_definition_crossing_the_similarity_join() {
        let task = two_source_task();
        let mut learner = DLearn::new(config());
        let model = learner.learn(&task);
        assert!(!model.clauses().is_empty(), "no definition learned");
        // The learned definition must separate training positives from
        // negatives reasonably well.
        let pos_hits = task.positives.iter().filter(|e| model.predict(e)).count();
        let neg_hits = task.negatives.iter().filter(|e| model.predict(e)).count();
        assert!(
            pos_hits >= 2,
            "positives covered: {pos_hits}\n{}",
            model.render()
        );
        assert!(
            neg_hits <= 2,
            "negatives covered: {neg_hits}\n{}",
            model.render()
        );
    }

    #[test]
    fn castor_no_md_cannot_reach_the_other_source() {
        let task = two_source_task();
        let outcome = baselines::castor_no_md(config()).learn(&task);
        // Without MDs the rating is unreachable, so any learned clause can
        // only use IMDB-side information; it must not mention OMDB relations.
        for clause in outcome.model.clauses() {
            assert!(
                clause.body.iter().all(|l| {
                    l.relation_name()
                        .map(|n| !n.starts_with("omdb"))
                        .unwrap_or(true)
                }),
                "clause reaches OMDB without an MD: {clause}"
            );
        }
    }

    #[test]
    fn learn_outcome_reports_runtime_and_bottom_clause_counts() {
        let task = two_source_task();
        let outcome = Learner::new(Strategy::DLearn, config()).learn(&task);
        assert!(outcome.seconds >= 0.0);
        assert!(outcome.bottom_clauses_built >= task.example_count());
    }

    #[test]
    fn strategies_expose_paper_names() {
        assert_eq!(Strategy::DLearn.name(), "DLearn");
        assert_eq!(Strategy::CastorNoMd.name(), "Castor-NoMD");
        assert_eq!(Strategy::all().len(), 5);
    }

    #[test]
    fn augment_with_target_adds_examples_once() {
        let task = two_source_task();
        let db = augment_with_target(&task);
        let rel = db.require_relation("hit").unwrap();
        assert_eq!(rel.len(), task.example_count());
        // Augmenting a database that already has the relation is a no-op.
        let mut task2 = task.clone();
        task2.database = db;
        let db2 = augment_with_target(&task2);
        assert_eq!(
            db2.require_relation("hit").unwrap().len(),
            task.example_count()
        );
    }

    #[test]
    fn castor_clean_produces_a_database_without_the_target_relation() {
        let task = two_source_task();
        let outcome = baselines::castor_clean(config()).learn(&task);
        // The model must still be usable for prediction.
        let _ = outcome.model.predict(&task.positives[0]);
    }
}
