//! Strategies, the legacy one-shot learner entry points, and the shared
//! target-augmentation helper.
//!
//! The covering loop (Algorithm 1) and the strategy preprocessing live in
//! [`crate::engine`] since the API moved to prepared sessions;
//! [`Learner`]/[`DLearn`] remain as thin deprecated shims that prepare an
//! [`Engine`] per call and delegate, so existing one-shot callers keep
//! working while new code prepares once and learns/serves many times.

use dlearn_relstore::{Attribute, Database, RelationSchema, ValueType};

use crate::config::LearnerConfig;
use crate::engine::Engine;
use crate::model::LearnedModel;
use crate::task::LearningTask;

/// Which system to run. `DLearn` is the paper's contribution; the others are
/// the baselines of Section 6.1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// DLearn with MD and CFD repair support (DLearn-CFD in Table 5; plain
    /// DLearn in Table 4 where no CFD violations are injected).
    DLearn,
    /// Castor over the original databases, ignoring MDs entirely.
    CastorNoMd,
    /// Castor where MD attributes may be joined, but only through exact
    /// matches.
    CastorExact,
    /// Castor over a database where each value is first unified with its
    /// single most similar counterpart (one hard match per value).
    CastorClean,
    /// DLearn with MDs only, run over the minimal repair of the CFD
    /// violations (the baseline of Table 5).
    DLearnRepaired,
    /// FOIL-style top-down refinement over the DLearn-prepared state:
    /// specialize from the bare head by adding bottom-clause literals chosen
    /// by information gain over coverage counts (not in the paper; see
    /// `learn/foil.rs`).
    Foil,
    /// TILDE-style first-order decision tree over the DLearn-prepared state:
    /// internal nodes are conjunctive tests from the bottom clauses, split by
    /// gain ratio; positive leaves become the definition's clauses (not in
    /// the paper; see `learn/tilde.rs`).
    Tilde,
}

impl Strategy {
    /// Every strategy, in presentation order: the five paper systems first
    /// (in the order the paper's tables list them), then the extension
    /// learners. The single source of truth for strategy enumeration — eval
    /// tables, examples, and tests iterate this rather than hand-listed
    /// arrays.
    pub const ALL: [Strategy; 7] = [
        Strategy::CastorNoMd,
        Strategy::CastorExact,
        Strategy::CastorClean,
        Strategy::DLearn,
        Strategy::DLearnRepaired,
        Strategy::Foil,
        Strategy::Tilde,
    ];

    /// All strategies, in presentation order (see [`Strategy::ALL`]).
    pub fn all() -> [Strategy; 7] {
        Strategy::ALL
    }

    /// Display name matching the paper (extension learners use their
    /// literature names).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::DLearn => "DLearn",
            Strategy::CastorNoMd => "Castor-NoMD",
            Strategy::CastorExact => "Castor-Exact",
            Strategy::CastorClean => "Castor-Clean",
            Strategy::DLearnRepaired => "DLearn-Repaired",
            Strategy::Foil => "FOIL",
            Strategy::Tilde => "TILDE",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    /// Parse a strategy from its display name; matching is case-insensitive
    /// and ignores `-`/`_` separators, so `dlearn-repaired`, `DLearnRepaired`
    /// and `DLearn_Repaired` all parse.
    fn from_str(s: &str) -> Result<Strategy, String> {
        let normalized: String = s
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .map(|c| c.to_ascii_lowercase())
            .collect();
        Strategy::ALL
            .into_iter()
            .find(|strategy| {
                strategy
                    .name()
                    .chars()
                    .filter(|c| *c != '-' && *c != '_')
                    .map(|c| c.to_ascii_lowercase())
                    .eq(normalized.chars())
            })
            .ok_or_else(|| {
                let known: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
                format!("unknown strategy `{s}` (known: {})", known.join(", "))
            })
    }
}

/// Clone the task's database and add the target relation, populated with the
/// training examples, so that MDs whose left-hand relation is the target can
/// be indexed. Attribute types are inferred from the first example.
pub fn augment_with_target(task: &LearningTask) -> Database {
    let mut db = task.database.clone();
    if db.schema().contains(&task.target.name) {
        return db;
    }
    let sample = task.positives.first().or(task.negatives.first());
    let attrs: Vec<Attribute> = task
        .target
        .attributes
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let ty = sample
                .and_then(|t| t.value(i))
                .map(|v| match v.value_type() {
                    ValueType::Int => ValueType::Int,
                    _ => ValueType::Str,
                })
                .unwrap_or(ValueType::Str);
            Attribute::new(name.clone(), ty)
        })
        .collect();
    if db
        .create_relation(RelationSchema::new(task.target.name.clone(), attrs))
        .is_ok()
    {
        for e in task.positives.iter().chain(task.negatives.iter()) {
            let _ = db.insert(&task.target.name, e.clone());
        }
    }
    db
}

/// Outcome of a learning run: the model plus basic run statistics.
#[derive(Debug)]
pub struct LearnOutcome {
    /// The learned model.
    pub model: LearnedModel,
    /// Wall-clock learning time in seconds (including, for the one-shot
    /// entry points, the session preparation an [`Engine`] amortizes).
    pub seconds: f64,
    /// Number of bottom clauses constructed.
    pub bottom_clauses_built: usize,
}

/// A configurable learner running one of the [`Strategy`] variants.
///
/// Deprecated one-shot shim: every `learn` call prepares a fresh
/// [`Engine`] — rebuilding the similarity index and re-grounding every
/// training example. Prefer [`Engine::prepare`] + [`Engine::learn`].
#[derive(Debug, Clone)]
pub struct Learner {
    strategy: Strategy,
    config: LearnerConfig,
}

impl Learner {
    /// Create a learner for a strategy.
    pub fn new(strategy: Strategy, config: LearnerConfig) -> Self {
        Learner { strategy, config }
    }

    /// The learner's strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Learn a definition for the task's target relation.
    #[deprecated(
        since = "0.1.0",
        note = "prepare an `Engine` once and call `Engine::learn`; this shim rebuilds the session per call"
    )]
    pub fn learn(&self, task: &LearningTask) -> LearnOutcome {
        let start = std::time::Instant::now();
        // The legacy entry points accepted any task: skip validation so a
        // malformed task fails (or quietly learns nothing) exactly where it
        // used to, and an empty-positives task still yields an empty model.
        let engine = Engine::prepare_unchecked(task.clone(), self.config.clone());
        let learned = engine
            .learn(self.strategy)
            .expect("learning over a prepared session is infallible");
        let model = LearnedModel::from_predictor(
            engine
                .predictor(&learned)
                .expect("the learned strategy's plan is already derived"),
        );
        LearnOutcome {
            model,
            seconds: start.elapsed().as_secs_f64(),
            bottom_clauses_built: learned.bottom_clauses_built(),
        }
    }
}

/// The DLearn system with its default strategy (learning directly over the
/// dirty database with MD and CFD repair literals).
///
/// Deprecated one-shot shim over [`Engine`]; see [`Learner`].
#[derive(Debug, Clone)]
pub struct DLearn {
    learner: Learner,
}

impl DLearn {
    /// Create a DLearn learner.
    pub fn new(config: LearnerConfig) -> Self {
        DLearn {
            learner: Learner::new(Strategy::DLearn, config),
        }
    }

    /// Learn a definition, returning just the model.
    #[deprecated(
        since = "0.1.0",
        note = "prepare an `Engine` once and call `Engine::learn`; this shim rebuilds the session per call"
    )]
    pub fn learn(&mut self, task: &LearningTask) -> LearnedModel {
        #[allow(deprecated)]
        self.learner.learn(task).model
    }

    /// Learn a definition, returning the model together with run statistics.
    #[deprecated(
        since = "0.1.0",
        note = "prepare an `Engine` once and call `Engine::learn`; this shim rebuilds the session per call"
    )]
    pub fn learn_with_stats(&mut self, task: &LearningTask) -> LearnOutcome {
        #[allow(deprecated)]
        self.learner.learn(task)
    }
}

/// Convenience constructors for the baseline systems.
pub mod baselines {
    use super::{Learner, LearnerConfig, Strategy};

    /// Castor without MD information.
    pub fn castor_no_md(config: LearnerConfig) -> Learner {
        Learner::new(Strategy::CastorNoMd, config)
    }

    /// Castor with exact joins on MD attributes.
    pub fn castor_exact(config: LearnerConfig) -> Learner {
        Learner::new(Strategy::CastorExact, config)
    }

    /// Castor over a best-match-cleaned database.
    pub fn castor_clean(config: LearnerConfig) -> Learner {
        Learner::new(Strategy::CastorClean, config)
    }

    /// DLearn (MDs only) over the minimal CFD repair of the database.
    pub fn dlearn_repaired(config: LearnerConfig) -> Learner {
        Learner::new(Strategy::DLearnRepaired, config)
    }
}

/// Helpers shared by unit tests across the crate.
#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;
    use crate::task::TargetSpec;
    use dlearn_constraints::MatchingDependency;
    use dlearn_relstore::{tuple, DatabaseBuilder, RelationBuilder, Value};

    /// A small two-source movie task: the target `hit(imdb_id)` holds for
    /// movies that are comedies (IMDB side) *and* rated R (OMDB side); the
    /// only way to reach the rating is a similarity join on titles.
    pub fn two_source_task() -> LearningTask {
        let mut builder = DatabaseBuilder::new()
            .relation(
                RelationBuilder::new("imdb_movies")
                    .int_attr("id")
                    .str_attr("title")
                    .build(),
            )
            .relation(
                RelationBuilder::new("imdb_genres")
                    .int_attr("id")
                    .str_attr("genre")
                    .build(),
            )
            .relation(
                RelationBuilder::new("omdb_movies")
                    .int_attr("oid")
                    .str_attr("title")
                    .build(),
            )
            .relation(
                RelationBuilder::new("omdb_ratings")
                    .int_attr("oid")
                    .str_attr("rating")
                    .build(),
            );
        // Ten movies; even ids are comedies, and the first six are rated R on
        // the OMDB side. Hits: comedies rated R = ids 0, 2, 4.
        let titles = [
            "Alpha Dawn",
            "Beta Harvest",
            "Crimson Tide Story",
            "Delta Grove",
            "Echo Valley",
            "Foxtrot Nine",
            "Golden Hour",
            "Hidden Creek",
            "Iron Summit",
            "Jade Harbor",
        ];
        for (i, title) in titles.iter().enumerate() {
            let id = i as i64;
            builder = builder
                .row("imdb_movies", vec![Value::int(id), Value::str(*title)])
                .row(
                    "imdb_genres",
                    vec![
                        Value::int(id),
                        Value::str(if i % 2 == 0 { "comedy" } else { "thriller" }),
                    ],
                )
                .row(
                    "omdb_movies",
                    vec![
                        Value::int(100 + id),
                        Value::str(format!("{title} ({})", 1990 + i)),
                    ],
                )
                .row(
                    "omdb_ratings",
                    vec![
                        Value::int(100 + id),
                        Value::str(if i < 6 { "R" } else { "PG" }),
                    ],
                );
        }
        let db = builder.build();
        let mut task = LearningTask::new(db, TargetSpec::with_attributes("hit", vec!["imdb_id"]));
        task.mds.push(MatchingDependency::simple(
            "titles",
            "imdb_movies",
            "title",
            "omdb_movies",
            "title",
        ));
        task.add_constant_attribute("imdb_genres", "genre");
        task.add_constant_attribute("omdb_ratings", "rating");
        for i in [0i64, 2, 4] {
            task.positives.push(tuple(vec![Value::int(i)]));
        }
        for i in [1i64, 3, 5, 6, 7, 8, 9] {
            task.negatives.push(tuple(vec![Value::int(i)]));
        }
        task
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::test_fixtures::two_source_task;
    use super::*;

    fn config() -> LearnerConfig {
        LearnerConfig {
            km: 2,
            iterations: 2,
            sample_size: 8,
            min_positive_coverage: 2,
            sample_positives: 4,
            max_generalization_rounds: 3,
            coverage_threads: 1,
            ..LearnerConfig::default()
        }
    }

    #[test]
    fn dlearn_learns_a_definition_crossing_the_similarity_join() {
        let task = two_source_task();
        let mut learner = DLearn::new(config());
        let model = learner.learn(&task);
        assert!(!model.clauses().is_empty(), "no definition learned");
        // The learned definition must separate training positives from
        // negatives reasonably well.
        let pos_hits = task.positives.iter().filter(|e| model.predict(e)).count();
        let neg_hits = task.negatives.iter().filter(|e| model.predict(e)).count();
        assert!(
            pos_hits >= 2,
            "positives covered: {pos_hits}\n{}",
            model.render()
        );
        assert!(
            neg_hits <= 2,
            "negatives covered: {neg_hits}\n{}",
            model.render()
        );
    }

    #[test]
    fn castor_no_md_cannot_reach_the_other_source() {
        let task = two_source_task();
        let outcome = baselines::castor_no_md(config()).learn(&task);
        // Without MDs the rating is unreachable, so any learned clause can
        // only use IMDB-side information; it must not mention OMDB relations.
        for clause in outcome.model.clauses() {
            assert!(
                clause.body.iter().all(|l| {
                    l.relation_name()
                        .map(|n| !n.starts_with("omdb"))
                        .unwrap_or(true)
                }),
                "clause reaches OMDB without an MD: {clause}"
            );
        }
    }

    #[test]
    fn learn_outcome_reports_runtime_and_bottom_clause_counts() {
        let task = two_source_task();
        let outcome = Learner::new(Strategy::DLearn, config()).learn(&task);
        assert!(outcome.seconds >= 0.0);
        assert!(outcome.bottom_clauses_built >= task.example_count());
    }

    #[test]
    fn strategies_expose_paper_names() {
        assert_eq!(Strategy::DLearn.name(), "DLearn");
        assert_eq!(Strategy::CastorNoMd.name(), "Castor-NoMD");
        assert_eq!(Strategy::Foil.name(), "FOIL");
        assert_eq!(Strategy::Tilde.name(), "TILDE");
        assert_eq!(Strategy::all().len(), 7);
        assert_eq!(Strategy::all(), Strategy::ALL);
    }

    #[test]
    fn strategy_display_and_from_str_round_trip() {
        for strategy in Strategy::ALL {
            assert_eq!(strategy.to_string(), strategy.name());
            assert_eq!(strategy.name().parse::<Strategy>(), Ok(strategy));
            // Parsing is case-insensitive and separator-insensitive.
            assert_eq!(
                strategy.name().to_lowercase().replace('-', "_").parse(),
                Ok(strategy)
            );
        }
        let err = "no-such-learner".parse::<Strategy>().unwrap_err();
        assert!(err.contains("no-such-learner"), "{err}");
        assert!(
            err.contains("TILDE"),
            "error should list known names: {err}"
        );
    }

    #[test]
    fn augment_with_target_adds_examples_once() {
        let task = two_source_task();
        let db = augment_with_target(&task);
        let rel = db.require_relation("hit").unwrap();
        assert_eq!(rel.len(), task.example_count());
        // Augmenting a database that already has the relation is a no-op.
        let mut task2 = task.clone();
        task2.database = db;
        let db2 = augment_with_target(&task2);
        assert_eq!(
            db2.require_relation("hit").unwrap().len(),
            task.example_count()
        );
    }

    #[test]
    fn castor_clean_produces_a_database_without_the_target_relation() {
        let task = two_source_task();
        let outcome = baselines::castor_clean(config()).learn(&task);
        // The model must still be usable for prediction.
        let _ = outcome.model.predict(&task.positives[0]);
    }

    #[test]
    fn legacy_shim_learns_the_same_definition_as_the_engine() {
        let task = two_source_task();
        let outcome = Learner::new(Strategy::DLearn, config()).learn(&task);
        let engine = Engine::prepare(task, config()).expect("valid task");
        let learned = engine.learn(Strategy::DLearn).expect("learn");
        assert_eq!(
            outcome.model.definition(),
            learned.definition(),
            "legacy shim diverged from the session API"
        );
    }
}
