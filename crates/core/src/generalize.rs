//! Generalization of a clause to cover an additional positive example
//! (Section 4.2, after ProGolem's asymmetric relative minimal generalization).
//!
//! Given a clause `C` (initially a bottom clause) and the ground bottom
//! clause `G_{e'}` of another positive example `e'`, the generalization drops
//! the *blocking literals* of `C`: scanning the body in its construction
//! order while maintaining the set of partial substitutions into `G_{e'}`, a
//! literal is blocking when no current substitution can be extended to map
//! it. The result θ-subsumes `C` (it is produced by dropping literals), is
//! head-connected, and covers `e'` by construction.

use dlearn_logic::subsumption::{extend_bindings_flat, head_bindings_numbered, GroundClause};
use dlearn_logic::{Clause, FlatSubstitution, NumberedClause};

/// Generalize `clause` so that it covers the example whose ground bottom
/// clause is `target`. Returns `None` when even the head cannot be mapped
/// (e.g. a different target relation).
pub fn generalize(clause: &Clause, target: &GroundClause, binding_cap: usize) -> Option<Clause> {
    generalize_prepared(clause, &NumberedClause::new(clause), target, binding_cap)
}

/// [`generalize`] with the clause's variable numbering prepared once by the
/// caller (the covering loop reuses one numbering across every sampled
/// target). `numbered` must be the renumbering of `clause`; the two bodies
/// are index-aligned because renumbering is a pure renaming.
pub fn generalize_prepared(
    clause: &Clause,
    numbered: &NumberedClause,
    target: &GroundClause,
    binding_cap: usize,
) -> Option<Clause> {
    debug_assert_eq!(numbered.clause().body.len(), clause.body.len());
    let head = head_bindings_numbered(numbered, target)?;
    let mut bindings: Vec<FlatSubstitution> = vec![head];
    let mut blocking: Vec<usize> = Vec::new();

    for (i, literal) in numbered.clause().body.iter().enumerate() {
        let extended = extend_bindings_flat(literal, &bindings, target, binding_cap);
        if extended.is_empty() {
            blocking.push(i);
        } else {
            bindings = extended;
        }
    }

    if blocking.is_empty() {
        return Some(clause.clone());
    }
    let mut generalized = clause.clone();
    for &i in blocking.iter().rev() {
        generalized.body.remove(i);
    }
    generalized.retain_head_connected();
    Some(generalized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_logic::subsumption::{subsumes, SubsumptionConfig};
    use dlearn_logic::{Literal, Term};

    /// Bottom clause of the paper's Example 4.2 / 4.7: Superbad is a comedy
    /// released in August; Zoolander is a comedy released in September.
    fn superbad_bottom() -> Clause {
        let mut c = Clause::new(Literal::relation("highGrossing", vec![Term::var(0)]));
        c.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(2), Term::var(3)],
        ));
        c.push_unique(Literal::Similar(Term::var(0), Term::var(2)));
        c.push_unique(Literal::relation(
            "mov2genres",
            vec![Term::var(1), Term::constant("comedy")],
        ));
        c.push_unique(Literal::relation(
            "mov2releasedate",
            vec![Term::var(1), Term::constant("August"), Term::var(4)],
        ));
        c
    }

    fn zoolander_ground() -> GroundClause {
        let mut d = Clause::new(Literal::relation("highGrossing", vec![Term::var(0)]));
        d.push_unique(Literal::relation(
            "movies",
            vec![Term::var(1), Term::var(2), Term::var(3)],
        ));
        d.push_unique(Literal::Similar(Term::var(0), Term::var(2)));
        d.push_unique(Literal::relation(
            "mov2genres",
            vec![Term::var(1), Term::constant("comedy")],
        ));
        d.push_unique(Literal::relation(
            "mov2releasedate",
            vec![Term::var(1), Term::constant("September"), Term::var(4)],
        ));
        GroundClause::new(&d)
    }

    #[test]
    fn blocking_release_date_literal_is_dropped() {
        // Paper Example 4.7: generalizing the Superbad bottom clause to cover
        // Zoolander drops the August release-date literal.
        let bottom = superbad_bottom();
        let target = zoolander_ground();
        let g = generalize(&bottom, &target, 32).unwrap();
        assert!(
            !g.body
                .iter()
                .any(|l| l.relation_name() == Some("mov2releasedate")),
            "clause: {g}"
        );
        assert!(g
            .body
            .iter()
            .any(|l| l.relation_name() == Some("mov2genres")));
        // The generalization covers the new example and still subsumes the
        // original bottom clause (it was produced by dropping literals).
        assert!(subsumes(&g, &target, &SubsumptionConfig::default()).is_some());
        assert!(subsumes(
            &g,
            &GroundClause::new(&bottom),
            &SubsumptionConfig::default()
        )
        .is_some());
    }

    #[test]
    fn clause_already_covering_the_example_is_unchanged() {
        let mut c = superbad_bottom();
        c.remove_body_literal(3); // drop the release-date literal up front
        let g = generalize(&c, &zoolander_ground(), 32).unwrap();
        assert_eq!(g.canonical_string(), c.canonical_string());
    }

    #[test]
    fn different_head_relation_yields_none() {
        let c = Clause::new(Literal::relation("otherTarget", vec![Term::var(0)]));
        assert!(generalize(&c, &zoolander_ground(), 32).is_none());
    }

    #[test]
    fn dropping_a_join_literal_drops_its_dependents() {
        // If the movies literal itself is blocking, everything that joins
        // through it must also disappear (head-connectedness).
        let bottom = superbad_bottom();
        let mut d = Clause::new(Literal::relation("highGrossing", vec![Term::var(0)]));
        d.push_unique(Literal::relation("unrelated", vec![Term::var(0)]));
        let target = GroundClause::new(&d);
        let g = generalize(&bottom, &target, 32).unwrap();
        assert!(g.body.is_empty(), "clause: {g}");
    }
}
