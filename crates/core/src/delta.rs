//! Streaming deltas over a prepared session (incremental maintenance).
//!
//! [`Engine::prepare`] front-loads two expensive artifacts: the MD similarity
//! catalog and the ground bottom clauses of the training examples. A tuple
//! insert or delete invalidates only a sliver of each — one changed column
//! value touches a handful of match lists, and most ground clauses never
//! probed the changed value at all. [`Engine::apply_delta`] exploits that:
//!
//! * each similarity index is maintained **incrementally** (see
//!   [`MaintainedIndex`]): postings are patched in place and only match
//!   lists whose candidate sets changed re-run the bounded scorer, with the
//!   invariant that the maintained index is bit-identical to a fresh
//!   [`SimilarityIndex::build`] over the mutated columns;
//! * each ground bottom clause records the exact probes its construction
//!   executed (see [`ProbeLog`]); after a delta, only clauses whose probe
//!   log intersects the change set are re-grounded — with the same
//!   per-example seed a from-scratch build would use, so the patched
//!   coverage engine is bit-identical to `Engine::prepare` on the mutated
//!   database.
//!
//! Deltas are transactional at the session level: on any error the engine is
//! untouched, and a panic mid-maintenance (e.g. injected via the
//! fault-injection harness) quarantines the session — the last committed
//! state keeps serving reads, but further deltas are refused with
//! [`DlearnError::DeltaQuarantined`].
//!
//! [`SimilarityIndex::build`]: dlearn_similarity::SimilarityIndex::build

use std::collections::HashSet;
use std::sync::Arc;

use dlearn_constraints::{sym_column, MdCatalog, MdIndex};
use dlearn_relstore::{ChangeSet, Database, DeltaTx, RelId, StoreError, Sym};
use dlearn_similarity::{ColumnDelta, MaintainedIndex};

use crate::bottom::{BottomClauseBuilder, ProbeLog};
use crate::coverage::GroundPatchStats;
use crate::engine::{index_config_for, Engine, StrategyPlan};
use crate::error::DlearnError;
use crate::learner::augment_with_target;

/// What one committed [`Engine::apply_delta`] call did: the change set it
/// applied, how much incremental work each maintenance path performed, and
/// which similarity values changed (consulted by
/// [`crate::PredictorService::apply_delta`] for selective cache eviction).
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// The distinct `(relation, attribute, value)` touches of the
    /// transaction.
    pub changes: ChangeSet,
    /// Number of MD similarity indexes maintained incrementally.
    pub mds_maintained: usize,
    /// Full bounded re-scans run across all maintained indexes (added left
    /// values plus full match lists that lost a member).
    pub rescored_lefts: usize,
    /// Targeted single-entry patches across all maintained indexes.
    pub patched_entries: usize,
    /// How many ground bottom clauses were rebuilt versus reused unchanged.
    pub grounding: GroundPatchStats,
    /// Position of this delta in the session's committed chain: the engine's
    /// [`crate::Predictor::delta_seq`] after this transaction committed (the
    /// first delta of a fresh session reports 1).
    /// [`crate::PredictorService::apply_delta`] refuses reports that do not
    /// chain from the model it serves.
    pub sequence: u64,
    /// Per maintained MD: `(md_position, values whose match list changed on
    /// either side)`.
    changed_syms: Vec<(usize, HashSet<Sym>)>,
}

impl DeltaReport {
    /// `true` when a grounding that executed the given probes could observe
    /// this delta — i.e. its stored ground clause may no longer equal a
    /// fresh build and must be rebuilt (or evicted from a serving cache).
    pub fn affects(&self, probes: &ProbeLog) -> bool {
        probes
            .values
            .iter()
            .any(|(rel, attr, v)| self.changes.affects(*rel, *attr, v))
            || probes.sims.iter().any(|(md, s)| {
                self.changed_syms
                    .iter()
                    .any(|(pos, set)| pos == md && set.contains(s))
            })
    }

    /// Total number of values whose similarity match list changed, across
    /// all maintained indexes.
    pub fn changed_match_lists(&self) -> usize {
        self.changed_syms.iter().map(|(_, set)| set.len()).sum()
    }
}

impl Engine {
    /// `true` once a delta application panicked mid-transaction: the last
    /// committed state keeps serving reads, but every further
    /// [`Engine::apply_delta`] is refused and the session should be rebuilt
    /// with [`Engine::prepare`].
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Apply a transaction of tuple inserts and deletes to the session,
    /// maintaining the similarity catalog and the ground bottom clauses
    /// incrementally instead of rebuilding them.
    ///
    /// After a committed delta the session is indistinguishable from a fresh
    /// [`Engine::prepare`] over the mutated database: maintained indexes are
    /// bit-identical to freshly built ones, re-grounded clauses use the same
    /// per-example seeds, and untouched clauses are provably unaffected (no
    /// probe their construction executed changed its result).
    ///
    /// The call is transactional: on any [`DlearnError`] the engine state is
    /// untouched. A panic mid-maintenance quarantines the session (see
    /// [`Engine::is_quarantined`]). Derived baseline-strategy plans are
    /// invalidated and lazily re-derived from the new state. Predictors and
    /// services bound to the session keep serving the *pre-delta* state
    /// until re-bound ([`crate::Engine::predictor`],
    /// [`crate::PredictorService::apply_delta`]).
    pub fn apply_delta(&mut self, tx: &DeltaTx) -> Result<DeltaReport, DlearnError> {
        if self.quarantined {
            return Err(DlearnError::DeltaQuarantined);
        }
        let mut db = self.base.task.database.clone();
        let changes = db.apply_delta(tx).map_err(delta_store_error)?;
        // All maintenance below works on clones; `self` is only mutated on
        // success, so a panic leaves the committed state fully intact.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            compute_delta(self, db, changes)
        }));
        match outcome {
            Ok((base, maintenance, report)) => {
                self.base = base;
                self.maintenance = Some(maintenance);
                self.plans = Default::default();
                Ok(report)
            }
            Err(payload) => {
                self.quarantined = true;
                Err(DlearnError::WorkerPanicked {
                    site: "delta",
                    message: crate::par::panic_message(&*payload),
                })
            }
        }
    }
}

/// The maintenance pass proper: returns the new base plan, the maintained
/// indexes to carry forward, and the report. Pure with respect to `engine` —
/// commit happens in the caller.
fn compute_delta(
    engine: &Engine,
    db: Database,
    changes: ChangeSet,
) -> (Arc<StrategyPlan>, Vec<MaintainedIndex>, DeltaReport) {
    let old = &engine.base;
    let config = &old.config;
    // Injected panics here model a crash mid-maintenance; budget exhaustion
    // is meaningless for a delta and is ignored.
    let _ = crate::fault::checkpoint(crate::fault::Site::Delta, &old.task.target.name);

    let old_db = &old.task.database;
    let use_indexes = config.use_mds && !old.task.mds.is_empty();

    // Adopt the prepared catalog into maintained form on the first delta
    // (no alignment runs — adoption only rebuilds postings and back-refs).
    let mut maintenance: Vec<MaintainedIndex> = if !use_indexes {
        Vec::new()
    } else if let Some(m) = &engine.maintenance {
        m.clone()
    } else {
        let augmented = augment_with_target(&old.task);
        old.catalog
            .indexes()
            .iter()
            .map(|mi| {
                MaintainedIndex::adopt(
                    mi.index().clone(),
                    &sym_column(&augmented, mi.md.left_relation, mi.md.identify_left),
                    &sym_column(&augmented, mi.md.right_relation, mi.md.identify_right),
                    index_config_for(config),
                )
            })
            .collect()
    };

    let mut changed_syms: Vec<(usize, HashSet<Sym>)> = Vec::new();
    let mut rescored_lefts = 0usize;
    let mut patched_entries = 0usize;
    for (mi, maintained) in old.catalog.indexes().iter().zip(maintenance.iter_mut()) {
        let (added_left, removed_left) = presence_transitions(
            old_db,
            &db,
            &changes,
            mi.md.left_relation,
            mi.md.identify_left,
        );
        let (added_right, removed_right) = presence_transitions(
            old_db,
            &db,
            &changes,
            mi.md.right_relation,
            mi.md.identify_right,
        );
        let outcome = maintained.apply(&ColumnDelta {
            added_left,
            removed_left,
            added_right,
            removed_right,
        });
        rescored_lefts += outcome.rescored_lefts;
        patched_entries += outcome.patched_entries;
        let mut set = outcome.changed_left;
        set.extend(outcome.changed_right);
        changed_syms.push((mi.md_position, set));
    }
    let catalog: Arc<MdCatalog> = if use_indexes {
        Arc::new(MdCatalog::from_indexes(
            old.catalog
                .indexes()
                .iter()
                .zip(maintenance.iter())
                .map(|(mi, m)| {
                    MdIndex::from_parts(mi.md_position, mi.md.clone(), m.index().clone())
                })
                .collect(),
        ))
    } else {
        Arc::new(MdCatalog::default())
    };

    let mut task = old.task.clone();
    task.database = db;

    let mut report = DeltaReport {
        changes,
        mds_maintained: maintenance.len(),
        rescored_lefts,
        patched_entries,
        grounding: GroundPatchStats::default(),
        sequence: old.delta_seq + 1,
        changed_syms,
    };
    let (coverage, grounding) = {
        let builder = BottomClauseBuilder::new(&task, &catalog, config);
        old.coverage
            .rebuilt_where(&builder, config, |g| report.affects(&g.probes))
    };
    report.grounding = grounding;
    let plan = Arc::new(StrategyPlan {
        task,
        config: config.clone(),
        catalog,
        coverage,
        delta_seq: old.delta_seq + 1,
    });
    (plan, maintenance, report)
}

/// Distinct-value presence transitions of one indexed column under a change
/// set: values that newly appeared in, or completely vanished from, the
/// column. Values merely gaining or losing duplicate rows transition
/// neither way and leave the index untouched.
fn presence_transitions(
    old_db: &Database,
    new_db: &Database,
    changes: &ChangeSet,
    relation: RelId,
    attribute: Sym,
) -> (Vec<Sym>, Vec<Sym>) {
    let (Some(old_rel), Some(new_rel)) = (old_db.relation(relation), new_db.relation(relation))
    else {
        // Target-relation sides live only in the augmented database, which
        // deltas cannot touch.
        return (Vec::new(), Vec::new());
    };
    let Some(idx) = old_rel.schema().attribute_pos(attribute) else {
        return (Vec::new(), Vec::new());
    };
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for (attr, value) in changes.touched_values(relation) {
        if attr != idx {
            continue;
        }
        let Some(s) = value.as_sym() else { continue };
        let pre = !old_rel.select_eq(idx, &value).is_empty();
        let post = !new_rel.select_eq(idx, &value).is_empty();
        match (pre, post) {
            (false, true) => added.push(s),
            (true, false) => removed.push(s),
            _ => {}
        }
    }
    // The change set iterates hash-ordered; sort so maintenance work (and
    // its counters) are deterministic across runs.
    added.sort_unstable();
    removed.sort_unstable();
    (added, removed)
}

/// Map store-level delta failures to their typed engine variants; anything
/// else stays a generic [`DlearnError::Store`].
fn delta_store_error(e: StoreError) -> DlearnError {
    match e {
        StoreError::UnknownRelation(relation) => DlearnError::DeltaUnknownRelation { relation },
        StoreError::ArityMismatch {
            relation,
            expected,
            actual,
        } => DlearnError::DeltaArityMismatch {
            relation,
            expected,
            actual,
        },
        StoreError::TupleNotFound { relation, tuple } => {
            DlearnError::DeltaAbsentTuple { relation, tuple }
        }
        other => DlearnError::Store(other),
    }
}
