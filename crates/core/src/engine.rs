//! Prepared learning/serving sessions.
//!
//! The paper's pipeline front-loads two expensive, *per-database* artifacts:
//! the similarity index behind every matching dependency (Section 5) and the
//! ground bottom clauses of the training examples (Section 4.3). The legacy
//! one-shot `DLearn::new(cfg).learn(&task)` rebuilt both on every call; an
//! [`Engine`] builds them once at [`Engine::prepare`] time and shares them —
//! behind `Arc` — across every strategy run and every prediction:
//!
//! * [`Engine::learn`] runs any [`Strategy`] — the five paper systems plus
//!   the FOIL/TILDE extension learners of the `learn` subsystem, which
//!   search the base plan directly. Strategy
//!   preprocessing is an explicit, cached step (a strategy *plan*) that
//!   reuses the prepared similarity index whenever the strategy's semantics
//!   allow: Castor-Exact *filters* the prepared index down to exact matches
//!   instead of re-aligning, Castor-Clean unifies values through the
//!   prepared index and derives an exact-join catalog over the cleaned
//!   database, and DLearn-Repaired reuses the index outright when no CFD
//!   right-hand side overlaps an MD-identified column (a CFD repair can only
//!   rewrite CFD right-hand sides). Running all five baselines therefore
//!   aligns strings exactly once.
//! * [`Engine::predictor`] binds a learned [`Learned`] value to the session,
//!   yielding a [`Predictor`] whose [`Predictor::predict_batch`] fans
//!   bottom-clause grounding across the configured coverage threads with a
//!   deterministic, order-preserving reduction.
//!
//! The entire surface is fallible: tasks and configurations are validated at
//! [`Engine::prepare`] time ([`DlearnError`]), so malformed input is a typed
//! error instead of a panic deep inside bottom-clause construction.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use rand::rngs::StdRng;
use rand::SeedableRng;

use dlearn_constraints::{enforce_md_best_match_with_index, minimal_cfd_repair, MdCatalog};
use dlearn_logic::{Clause, Definition};
use dlearn_relstore::{Database, Tuple};
use dlearn_similarity::{IndexConfig, SimilarityOperator};

use crate::bottom::BottomClauseBuilder;
use crate::config::LearnerConfig;
use crate::coverage::{CoverageEngine, GroundExample, PreparedClause};
use crate::error::DlearnError;
use crate::learner::{augment_with_target, Strategy};
use crate::model::ClauseStats;
use crate::task::LearningTask;

/// The similarity threshold above which a match counts as *exact*: only
/// identical normalized strings reach it. Castor-Exact restricts MD joins to
/// matches at or above this score.
pub(crate) const EXACT_MD_THRESHOLD: f64 = 0.9999;

/// One strategy's fully preprocessed state: the (possibly rewritten) task
/// and config, the MD catalog the strategy joins through, and the ground
/// bottom clauses of the training examples. Built at most once per
/// [`Engine`] and shared by every `learn` call and every bound predictor of
/// that strategy.
pub(crate) struct StrategyPlan {
    /// The strategy's preprocessed task (Castor-Clean and DLearn-Repaired
    /// rewrite the database; the others share the engine's task).
    pub(crate) task: LearningTask,
    /// The strategy's effective configuration.
    pub(crate) config: LearnerConfig,
    /// The MD similarity catalog the strategy's bottom clauses probe.
    pub(crate) catalog: Arc<MdCatalog>,
    /// Ground bottom clauses of the training examples, built once.
    pub(crate) coverage: CoverageEngine,
    /// Number of committed [`Engine::apply_delta`] transactions this plan's
    /// database reflects (0 for a fresh prepare). Serving tiers use it to
    /// reject delta reports that do not chain from the model they serve.
    pub(crate) delta_seq: u64,
}

impl StrategyPlan {
    fn build(
        task: LearningTask,
        config: LearnerConfig,
        catalog: Arc<MdCatalog>,
        delta_seq: u64,
    ) -> StrategyPlan {
        let coverage = {
            let builder = BottomClauseBuilder::new(&task, &catalog, &config);
            CoverageEngine::build(&task, &builder, &config)
        };
        StrategyPlan {
            task,
            config,
            catalog,
            coverage,
            delta_seq,
        }
    }
}

/// A prepared learning session over one task and configuration.
///
/// ```
/// use dlearn_core::{Engine, LearnerConfig, LearningTask, Strategy, TargetSpec};
/// use dlearn_relstore::{tuple, DatabaseBuilder, RelationBuilder, Value};
///
/// let db = DatabaseBuilder::new()
///     .relation(RelationBuilder::new("movies").int_attr("id").str_attr("title").build())
///     .relation(RelationBuilder::new("genres").int_attr("id").str_attr("genre").build())
///     .row("movies", vec![Value::int(1), Value::str("Superbad")])
///     .row("genres", vec![Value::int(1), Value::str("comedy")])
///     .build();
/// let mut task = LearningTask::new(db, TargetSpec::new("hit", 1));
/// task.add_constant_attribute("genres", "genre");
/// task.positives.push(tuple(vec![Value::int(1)]));
///
/// let engine = Engine::prepare(task, LearnerConfig::fast())?;
/// let learned = engine.learn(Strategy::DLearn)?;
/// let predictor = engine.predictor(&learned)?;
/// let verdicts = predictor.predict_batch(&[tuple(vec![Value::int(1)])])?;
/// assert_eq!(verdicts.len(), 1);
/// # Ok::<(), dlearn_core::DlearnError>(())
/// ```
pub struct Engine {
    /// The user's configuration (before any strategy preprocessing).
    pub(crate) config: LearnerConfig,
    /// The DLearn plan: the engine's own task, config and shared catalog.
    pub(crate) base: Arc<StrategyPlan>,
    /// Lazily derived plans for the four baseline strategies.
    pub(crate) plans: [OnceLock<Arc<StrategyPlan>>; 4],
    /// Incrementally maintained similarity indexes, adopted from the base
    /// catalog on the first [`Engine::apply_delta`] call (index-aligned with
    /// the catalog's MD indexes).
    pub(crate) maintenance: Option<Vec<dlearn_similarity::MaintainedIndex>>,
    /// Set when a delta application panicked mid-flight: the incremental
    /// state can no longer be trusted and every further delta is refused
    /// (reads against the last committed state keep working).
    pub(crate) quarantined: bool,
}

impl Engine {
    /// Validate the task and configuration, then build the session's shared
    /// artifacts: the augmented database's MD similarity catalog and the
    /// ground bottom clauses of every training example.
    pub fn prepare(task: LearningTask, config: LearnerConfig) -> Result<Engine, DlearnError> {
        config.validate()?;
        Self::validate_task(&task)?;
        // Session preparation fans grounding across worker threads; a panic
        // in any of them (a malformed row that slipped past validation, an
        // injected fault) surfaces as a typed error, not a process abort.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Self::prepare_unchecked(task, config)
        }))
        .map_err(|payload| DlearnError::WorkerPanicked {
            site: "prepare",
            message: crate::par::panic_message(&*payload),
        })
    }

    /// [`Engine::prepare`] without the up-front validation. Used by the
    /// deprecated one-shot entry points, which historically accepted any
    /// task and failed (or quietly learned nothing) later.
    pub(crate) fn prepare_unchecked(task: LearningTask, config: LearnerConfig) -> Engine {
        let catalog = Arc::new(build_catalog(&task, &config));
        let base = Arc::new(StrategyPlan::build(task, config.clone(), catalog, 0));
        Engine {
            config,
            base,
            plans: Default::default(),
            maintenance: None,
            quarantined: false,
        }
    }

    fn validate_task(task: &LearningTask) -> Result<(), DlearnError> {
        let expected = task.target.arity();
        let sides = [(true, &task.positives), (false, &task.negatives)];
        for (positive, examples) in sides {
            for (index, e) in examples.iter().enumerate() {
                if e.arity() != expected {
                    return Err(DlearnError::ExampleArity {
                        expected,
                        actual: e.arity(),
                        index,
                        positive,
                    });
                }
            }
        }
        task.validate()?;
        if task.positives.is_empty() {
            return Err(DlearnError::EmptyPositives);
        }
        Ok(())
    }

    /// The task the session was prepared over.
    pub fn task(&self) -> &LearningTask {
        &self.base.task
    }

    /// The session's configuration.
    pub fn config(&self) -> &LearnerConfig {
        &self.config
    }

    /// The prepared MD similarity catalog of the base plan. Exposed so the
    /// incremental-maintenance oracle can pin that a maintained catalog is
    /// bit-identical to a fresh [`Engine::prepare`] over the mutated store.
    pub fn catalog(&self) -> &MdCatalog {
        &self.base.catalog
    }

    /// The prepared ground training examples of the base plan (see
    /// [`Engine::catalog`] for why this is public).
    pub fn coverage(&self) -> &CoverageEngine {
        &self.base.coverage
    }

    /// Learn a definition with the given strategy against the session's
    /// prepared artifacts. Strategy preprocessing runs at most once per
    /// strategy per engine; the similarity index is shared or derived
    /// (never re-aligned) wherever the strategy's semantics allow. The
    /// refinement search itself — any of the `learn` subsystem's refiners —
    /// is a quarantined site: a worker panic inside it surfaces as
    /// [`DlearnError::WorkerPanicked`], not a process abort.
    pub fn learn(&self, strategy: Strategy) -> Result<Learned, DlearnError> {
        // Resolve (and lazily derive) the strategy plan *outside* the timed
        // region: `Learned::seconds` reports the refinement search alone, so
        // a baseline's first run is comparable to its later runs — and to
        // strategies whose plan was built at prepare time.
        let plan = self.plan(strategy)?;
        let start = std::time::Instant::now();
        let refined = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::learn::refine(strategy, &plan)
        }))
        .map_err(|payload| DlearnError::WorkerPanicked {
            site: "learn",
            message: crate::par::panic_message(&*payload),
        })?;
        Ok(Learned {
            strategy,
            definition: refined.definition,
            stats: refined.stats,
            seconds: start.elapsed().as_secs_f64(),
            bottom_clauses_built: refined.bottom_clauses_built,
        })
    }

    /// Bind a learned definition to this session for serving: the returned
    /// [`Predictor`] shares the strategy's prepared artifacts. Fails only
    /// when the strategy's plan must be derived first and the derivation's
    /// database rewrite fails — a `learned` value from [`Engine::learn`] has
    /// its plan cached already, so binding it cannot fail.
    pub fn predictor(&self, learned: &Learned) -> Result<Predictor, DlearnError> {
        Ok(Predictor::bind(
            self.plan(learned.strategy)?,
            learned.definition.clone(),
            learned.stats.clone(),
        ))
    }

    pub(crate) fn plan(&self, strategy: Strategy) -> Result<Arc<StrategyPlan>, DlearnError> {
        let slot = match strategy {
            // Foil and Tilde search the same hypothesis space over the same
            // prepared semantics as DLearn: they share the base plan, so
            // delta invalidation and the one-alignment-per-session
            // invariant cover them automatically.
            Strategy::DLearn | Strategy::Foil | Strategy::Tilde => return Ok(self.base.clone()),
            Strategy::CastorNoMd => 0,
            Strategy::CastorExact => 1,
            Strategy::CastorClean => 2,
            Strategy::DLearnRepaired => 3,
        };
        if let Some(plan) = self.plans[slot].get() {
            return Ok(plan.clone());
        }
        // Derive outside `get_or_init` so a fallible derivation does not
        // poison the slot. A concurrent race derives twice; derivation is
        // deterministic, so whichever plan lands in the slot is identical.
        let plan = Arc::new(self.derive_plan(strategy)?);
        Ok(self.plans[slot].get_or_init(|| plan).clone())
    }

    /// Strategy preprocessing, factored out of the legacy one-shot learner:
    /// rewrite the task/config for the baseline and pick its catalog,
    /// reusing the prepared index whenever the semantics allow.
    fn derive_plan(&self, strategy: Strategy) -> Result<StrategyPlan, DlearnError> {
        let mut config = self.config.clone();
        let mut task = self.base.task.clone();
        let catalog: Arc<MdCatalog> = match strategy {
            Strategy::DLearn | Strategy::Foil | Strategy::Tilde => {
                unreachable!("these strategies run over the base plan")
            }
            Strategy::CastorNoMd => {
                config.use_mds = false;
                config.use_cfd_repairs = false;
                Arc::new(MdCatalog::default())
            }
            Strategy::CastorExact => {
                config.exact_md_joins = true;
                config.use_cfd_repairs = false;
                self.exact_catalog(&config)
            }
            Strategy::CastorClean => {
                // Resolve heterogeneity up front: unify each value of an
                // MD's right-hand identified column with its best match
                // *recorded in the prepared index* (one hard match per
                // value), MD by MD, then learn with exact joins only.
                //
                // Two deliberate deviations from the retired one-shot path,
                // both consequences of never re-aligning strings after
                // `prepare`: (1) the best match is the best *stored* pair —
                // a right value whose true best left match was truncated
                // out of that left value's top-km list unifies with its
                // best surviving partner instead (see
                // `enforce_md_best_match_with_index`); (2) each MD's index
                // describes the *original* database, so when multiple MDs
                // identify the same column, a value rewritten by an earlier
                // MD no longer probes later indexes (the legacy path
                // re-aligned over the evolving database). No shipped
                // dataset has interacting MDs, and Castor-Clean is a lossy
                // baseline by construction — its whole point is committing
                // to hard, possibly wrong matches.
                let mut cleaned = augment_with_target(&task);
                for md_index in self.base.catalog.indexes() {
                    let (next, _) = enforce_md_best_match_with_index(&cleaned, md_index);
                    cleaned = next;
                }
                task.database = copy_without(&cleaned, &task.target.name)?;
                config.exact_md_joins = true;
                config.use_cfd_repairs = false;
                // After unification the MD columns hold identical strings,
                // so the exact-join catalog over the cleaned database is
                // constructible from string equality alone — no alignment.
                if config.use_mds && !task.mds.is_empty() {
                    Arc::new(MdCatalog::build_exact(
                        &task.mds,
                        &augment_with_target(&task),
                        config.km,
                    ))
                } else {
                    Arc::new(MdCatalog::default())
                }
            }
            Strategy::DLearnRepaired => {
                let (repaired, _) = minimal_cfd_repair(&task.database, &task.cfds);
                task.database = repaired;
                config.use_cfd_repairs = false;
                if cfd_repairs_can_touch_md_columns(&task) {
                    // A repair may have rewritten an MD-identified column;
                    // the prepared index no longer describes the database.
                    Arc::new(build_catalog(&task, &config))
                } else {
                    // CFD repairs only rewrite CFD right-hand sides, none of
                    // which is an MD-identified column here: the similarity
                    // index inputs are unchanged, so reuse it.
                    self.base.catalog.clone()
                }
            }
        };
        Ok(StrategyPlan::build(
            task,
            config,
            catalog,
            self.base.delta_seq,
        ))
    }

    /// The exact-join catalog for Castor-Exact. Stored match lists are
    /// sorted by descending score, so the pairs at or above
    /// [`EXACT_MD_THRESHOLD`] are a prefix of each list and filtering the
    /// prepared catalog equals a fresh build at the exact threshold —
    /// unless the session threshold is itself above the exact threshold
    /// (then the prepared catalog is stricter, and a real build is needed).
    fn exact_catalog(&self, exact_config: &LearnerConfig) -> Arc<MdCatalog> {
        if !self.config.use_mds || self.base.task.mds.is_empty() {
            return Arc::new(MdCatalog::default());
        }
        if self.config.exact_md_joins || self.config.similarity_threshold <= EXACT_MD_THRESHOLD {
            Arc::new(self.base.catalog.filter_min_score(EXACT_MD_THRESHOLD))
        } else {
            Arc::new(build_catalog(&self.base.task, exact_config))
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("target", &self.base.task.target.name)
            .field("examples", &self.base.task.example_count())
            .field("mds", &self.base.task.mds.len())
            .finish()
    }
}

/// Build the MD similarity catalog for a task/config pair (the expensive
/// alignment pass the engine performs once).
fn build_catalog(task: &LearningTask, config: &LearnerConfig) -> MdCatalog {
    // Budget exhaustion is meaningless at alignment time; only panics and
    // delays apply here, and both execute inside the checkpoint.
    let _ = crate::fault::checkpoint(crate::fault::Site::Alignment, &task.target.name);
    if config.use_mds && !task.mds.is_empty() {
        MdCatalog::build(
            &task.mds,
            &augment_with_target(task),
            &index_config_for(config),
        )
    } else {
        MdCatalog::default()
    }
}

/// The similarity-index configuration a config pair builds catalogs with
/// (shared by the prepare-time build and incremental delta maintenance, which
/// must adopt indexes under the exact build configuration).
pub(crate) fn index_config_for(config: &LearnerConfig) -> IndexConfig {
    let threshold = if config.exact_md_joins {
        // Exact joins: only identical normalized strings match.
        EXACT_MD_THRESHOLD
    } else {
        config.similarity_threshold
    };
    IndexConfig {
        top_k: config.km,
        operator: SimilarityOperator::with_threshold(threshold),
        threads: config.index_threads,
        hot_key_fraction: config.index_hot_key_fraction,
    }
}

/// `true` when some CFD's right-hand side — the only column a minimal CFD
/// repair rewrites — is also an MD-identified column, i.e. an input of the
/// prepared similarity index.
fn cfd_repairs_can_touch_md_columns(task: &LearningTask) -> bool {
    task.cfds.iter().any(|cfd| {
        task.mds.iter().any(|md| {
            (cfd.relation == md.left_relation && cfd.rhs == md.identify_left)
                || (cfd.relation == md.right_relation && cfd.rhs == md.identify_right)
        })
    })
}

/// Copy a database, omitting one relation (used to strip an augmented target
/// relation again after Castor-Clean preprocessing). Schema or tuple
/// mismatches — impossible for a faithful copy, but a typed error beats a
/// panic inside strategy derivation — surface as [`DlearnError::Store`].
fn copy_without(db: &Database, skip: &str) -> Result<Database, DlearnError> {
    let mut out = Database::new();
    for rel in db.relations() {
        if rel.name() == skip {
            continue;
        }
        out.create_relation(rel.schema().clone())
            .map_err(|e| DlearnError::Store(e.in_context("copying cleaned database")))?;
        for (_, t) in rel.iter() {
            out.insert(rel.name(), t.clone())
                .map_err(|e| DlearnError::Store(e.in_context("copying cleaned database")))?;
        }
    }
    Ok(out)
}

/// The outcome of one [`Engine::learn`] run: the learned Horn definition,
/// its per-clause training statistics, and basic run metrics. A `Learned`
/// value is plain data — it holds no database, catalog or configuration —
/// and binds to a session for serving via [`Engine::predictor`].
#[derive(Debug, Clone)]
pub struct Learned {
    strategy: Strategy,
    definition: Definition,
    stats: Vec<ClauseStats>,
    seconds: f64,
    bottom_clauses_built: usize,
}

impl Learned {
    /// The strategy that learned this definition.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The learned Horn definition.
    pub fn definition(&self) -> &Definition {
        &self.definition
    }

    /// The learned clauses.
    pub fn clauses(&self) -> &[Clause] {
        self.definition.clauses()
    }

    /// Per-clause coverage statistics over the training data.
    pub fn stats(&self) -> &[ClauseStats] {
        &self.stats
    }

    /// Wall-clock learning time of this run, in seconds: the covering loop
    /// alone. Session preparation and strategy-plan derivation (index
    /// construction, database rewrites, example grounding) are amortized
    /// across runs and not included.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Number of bottom clauses grounded for this run, counting the
    /// session's prepared ground examples it reused.
    pub fn bottom_clauses_built(&self) -> usize {
        self.bottom_clauses_built
    }

    /// Render the definition with its per-clause coverage annotations.
    pub fn render(&self) -> String {
        render_definition(&self.definition, &self.stats)
    }
}

pub(crate) fn render_definition(definition: &Definition, stats: &[ClauseStats]) -> String {
    let mut out = String::new();
    for (i, clause) in definition.clauses().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&clause.to_string());
        if let Some(s) = stats.get(i) {
            out.push_str(&format!(
                "\n  (positive covered={}, negative covered={})",
                s.positives_covered, s.negatives_covered
            ));
        }
    }
    out
}

/// A learned definition bound to its session's prepared artifacts for
/// serving. Prediction follows the positive-coverage semantics of
/// Definition 3.4 over the example's ground bottom clause.
pub struct Predictor {
    pub(crate) plan: Arc<StrategyPlan>,
    definition: Definition,
    stats: Vec<ClauseStats>,
    pub(crate) prepared: Vec<PreparedClause>,
}

impl Predictor {
    pub(crate) fn bind(
        plan: Arc<StrategyPlan>,
        definition: Definition,
        stats: Vec<ClauseStats>,
    ) -> Predictor {
        let prepared = definition
            .clauses()
            .iter()
            .map(|c| PreparedClause::prepare(c.clone(), &plan.config))
            .collect();
        Predictor {
            plan,
            definition,
            stats,
            prepared,
        }
    }

    /// The definition this predictor serves.
    pub fn definition(&self) -> &Definition {
        &self.definition
    }

    /// Per-clause coverage statistics over the training data.
    pub fn stats(&self) -> &[ClauseStats] {
        &self.stats
    }

    /// The configuration of the strategy the definition was learned with.
    pub fn config(&self) -> &LearnerConfig {
        &self.plan.config
    }

    /// Number of committed [`Engine::apply_delta`] transactions the bound
    /// plan's database reflects. [`crate::PredictorService::apply_delta`]
    /// checks it against [`crate::DeltaReport::sequence`] so out-of-order or
    /// cross-session delta reports are rejected typed.
    pub fn delta_seq(&self) -> u64 {
        self.plan.delta_seq
    }

    /// Predict whether an example tuple belongs to the target relation: the
    /// definition covers the example iff at least one clause covers its
    /// ground bottom clause.
    pub fn predict(&self, example: &Tuple) -> Result<bool, DlearnError> {
        self.check_arity(example, 0)?;
        let builder = self.builder();
        Ok(self.predict_with(&builder, example))
    }

    /// Predict a batch of examples, fanning bottom-clause grounding and the
    /// coverage tests across the configured `coverage_threads`.
    ///
    /// Results are index-aligned with `examples` and bit-identical to a
    /// sequential [`Predictor::predict`] loop at any thread count: the
    /// fan-out is the same order-preserving chunked map the coverage masks
    /// use, and each example's grounding derives its RNG from the session
    /// seed alone (never from batch position or thread). Duplicate tuples —
    /// common in serving traffic — are grounded and tested once, then fanned
    /// back out to their positions.
    pub fn predict_batch(&self, examples: &[Tuple]) -> Result<Vec<bool>, DlearnError> {
        for (index, e) in examples.iter().enumerate() {
            self.check_arity(e, index)?;
        }
        let builder = self.builder();
        // Dedup identical tuples: prediction is a pure function of the
        // tuple, so each distinct tuple is evaluated once, in first-
        // occurrence order (deterministic at any thread count).
        let mut slot_of: HashMap<&Tuple, usize> = HashMap::with_capacity(examples.len());
        let mut unique: Vec<&Tuple> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(examples.len());
        for e in examples {
            let next = unique.len();
            let slot = *slot_of.entry(e).or_insert(next);
            if slot == next {
                unique.push(e);
            }
            slots.push(slot);
        }
        let threads = self.plan.config.effective_threads();
        let verdicts =
            crate::par::chunked_map(&unique, threads, 2, |_, e| self.predict_with(&builder, e));
        Ok(slots.into_iter().map(|s| verdicts[s]).collect())
    }

    pub(crate) fn check_arity(&self, example: &Tuple, index: usize) -> Result<(), DlearnError> {
        let expected = self.plan.task.target.arity();
        if example.arity() != expected {
            return Err(DlearnError::PredictArity {
                expected,
                actual: example.arity(),
                index,
            });
        }
        Ok(())
    }

    pub(crate) fn builder(&self) -> BottomClauseBuilder<'_> {
        BottomClauseBuilder::new(&self.plan.task, &self.plan.catalog, &self.plan.config)
    }

    /// Ground one example exactly the way [`Predictor::predict`] does: the
    /// grounding RNG derives from the session seed alone, never from batch
    /// position or thread, so grounding is a pure function of the tuple —
    /// the invariant the serving cache relies on.
    pub(crate) fn ground_for_serving(
        &self,
        builder: &BottomClauseBuilder<'_>,
        example: &Tuple,
    ) -> GroundExample {
        let config = &self.plan.config;
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xdead_beef);
        let (ground_clause, probes) = builder.build_probed(example, &mut rng);
        let mut ground = GroundExample::from_clause(example.clone(), &ground_clause, config);
        ground.probes = probes;
        ground
    }

    fn predict_with(&self, builder: &BottomClauseBuilder<'_>, example: &Tuple) -> bool {
        if self.definition.is_empty() {
            return false;
        }
        let config = &self.plan.config;
        let ground = self.ground_for_serving(builder, example);
        self.prepared
            .iter()
            .any(|prepared| prepared.covers_ground(&ground, &config.subsumption))
    }
}

impl std::fmt::Debug for Predictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Predictor")
            .field("clauses", &self.definition.len())
            .field("target", &self.plan.task.target.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::test_fixtures::two_source_task;
    use dlearn_relstore::{tuple, Value};

    fn config() -> LearnerConfig {
        LearnerConfig {
            km: 2,
            iterations: 2,
            sample_size: 8,
            min_positive_coverage: 2,
            sample_positives: 4,
            max_generalization_rounds: 3,
            coverage_threads: 1,
            ..LearnerConfig::default()
        }
    }

    #[test]
    fn engine_learns_and_serves_the_two_source_task() {
        let task = two_source_task();
        let engine = Engine::prepare(task.clone(), config()).expect("valid task");
        let learned = engine.learn(Strategy::DLearn).expect("learn");
        assert!(!learned.clauses().is_empty(), "no definition learned");
        let predictor = engine.predictor(&learned).expect("bind predictor");
        let batch: Vec<Tuple> = task
            .positives
            .iter()
            .chain(task.negatives.iter())
            .cloned()
            .collect();
        let verdicts = predictor.predict_batch(&batch).expect("predict");
        let singles: Vec<bool> = batch
            .iter()
            .map(|e| predictor.predict(e).expect("predict"))
            .collect();
        assert_eq!(verdicts, singles, "batch diverged from single predictions");
        assert!(
            verdicts[..task.positives.len()]
                .iter()
                .filter(|&&b| b)
                .count()
                >= 2,
            "positives covered:\n{}",
            learned.render()
        );
    }

    #[test]
    fn all_strategies_run_against_one_prepared_session() {
        let task = two_source_task();
        let engine = Engine::prepare(task, config()).expect("valid task");
        for strategy in Strategy::all() {
            let learned = engine.learn(strategy).expect("learn");
            // Each strategy's plan is cached: a second run reuses it and
            // must produce the identical definition.
            let again = engine.learn(strategy).expect("learn");
            assert_eq!(
                learned.definition(),
                again.definition(),
                "{} diverged between runs over one session",
                strategy.name()
            );
        }
    }

    #[test]
    fn extension_learners_separate_the_two_source_task() {
        let task = two_source_task();
        let engine = Engine::prepare(task.clone(), config()).expect("valid task");
        for strategy in [Strategy::Foil, Strategy::Tilde] {
            let learned = engine.learn(strategy).expect("learn");
            assert!(
                !learned.clauses().is_empty(),
                "{} learned nothing",
                strategy.name()
            );
            let predictor = engine.predictor(&learned).expect("bind predictor");
            let pos = task
                .positives
                .iter()
                .filter(|e| predictor.predict(e).unwrap())
                .count();
            let neg = task
                .negatives
                .iter()
                .filter(|e| predictor.predict(e).unwrap())
                .count();
            assert!(
                pos >= 2 && neg <= 2,
                "{}: positives={pos} negatives={neg}\n{}",
                strategy.name(),
                learned.render()
            );
        }
    }

    #[test]
    fn prepare_rejects_wrong_arity_examples() {
        let mut task = two_source_task();
        task.negatives
            .push(tuple(vec![Value::int(1), Value::int(2)]));
        let err = Engine::prepare(task, config()).unwrap_err();
        assert!(
            matches!(
                err,
                DlearnError::ExampleArity {
                    expected: 1,
                    actual: 2,
                    positive: false,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn predictor_rejects_wrong_arity_tuples() {
        let task = two_source_task();
        let engine = Engine::prepare(task, config()).expect("valid task");
        let learned = engine.learn(Strategy::DLearn).expect("learn");
        let predictor = engine.predictor(&learned).expect("bind predictor");
        let err = predictor
            .predict(&tuple(vec![Value::int(1), Value::int(2)]))
            .unwrap_err();
        assert!(matches!(err, DlearnError::PredictArity { .. }), "{err:?}");
        let err = predictor
            .predict_batch(&[tuple(vec![Value::int(0)]), tuple(Vec::<Value>::new())])
            .unwrap_err();
        assert!(
            matches!(err, DlearnError::PredictArity { index: 1, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn predict_batch_dedups_repeated_tuples() {
        let task = two_source_task();
        let engine = Engine::prepare(task.clone(), config()).expect("valid task");
        let learned = engine.learn(Strategy::DLearn).expect("learn");
        let predictor = engine.predictor(&learned).expect("bind predictor");
        // A serving-style trace with heavy repetition.
        let trace: Vec<Tuple> = (0..4)
            .flat_map(|_| task.positives.iter().chain(task.negatives.iter()).cloned())
            .collect();
        let batch = predictor.predict_batch(&trace).expect("predict");
        let singles: Vec<bool> = trace
            .iter()
            .map(|e| predictor.predict(e).expect("predict"))
            .collect();
        assert_eq!(batch, singles);
    }
}
