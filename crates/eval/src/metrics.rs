//! Classification metrics (precision, recall, F1) used throughout the
//! evaluation, mirroring the paper's use of F1-score under cross-validation.

/// A confusion matrix over a test split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Positive examples predicted positive.
    pub true_positives: usize,
    /// Negative examples predicted positive.
    pub false_positives: usize,
    /// Positive examples predicted negative.
    pub false_negatives: usize,
    /// Negative examples predicted negative.
    pub true_negatives: usize,
}

impl Confusion {
    /// Build a confusion matrix from predictions over positive and negative
    /// test examples.
    pub fn from_predictions(positive_predictions: &[bool], negative_predictions: &[bool]) -> Self {
        let true_positives = positive_predictions.iter().filter(|&&p| p).count();
        let false_negatives = positive_predictions.len() - true_positives;
        let false_positives = negative_predictions.iter().filter(|&&p| p).count();
        let true_negatives = negative_predictions.len() - false_positives;
        Confusion {
            true_positives,
            false_positives,
            false_negatives,
            true_negatives,
        }
    }

    /// Precision (1.0 when nothing was predicted positive).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 1.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Recall (0.0 when there are no positives).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// F1-score: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merge two confusion matrices (summing counts), e.g. across folds.
    pub fn merge(&self, other: &Confusion) -> Confusion {
        Confusion {
            true_positives: self.true_positives + other.true_positives,
            false_positives: self.false_positives + other.false_positives,
            false_negatives: self.false_negatives + other.false_negatives,
            true_negatives: self.true_negatives + other.true_negatives,
        }
    }
}

/// Mean of a slice of floats (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_give_f1_of_one() {
        let c = Confusion::from_predictions(&[true, true], &[false, false, false]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn all_negative_predictions_give_zero_recall() {
        let c = Confusion::from_predictions(&[false, false], &[false]);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.precision(), 1.0, "vacuous precision");
    }

    #[test]
    fn mixed_predictions_compute_expected_f1() {
        // 3 TP, 1 FN, 1 FP: precision 0.75, recall 0.75, f1 0.75.
        let c = Confusion::from_predictions(&[true, true, true, false], &[true, false, false]);
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.recall() - 0.75).abs() < 1e-12);
        assert!((c.f1() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counts() {
        let a = Confusion::from_predictions(&[true], &[false]);
        let b = Confusion::from_predictions(&[false], &[true]);
        let m = a.merge(&b);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.true_negatives, 1);
    }

    #[test]
    fn mean_handles_empty_input() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
