//! Plain-text rendering of experiment results, one renderer per table/figure.

use crate::experiments::{
    DiversityRow, SampleSizePoint, ScalingPoint, Table4Row, Table5Row, Table7Row,
};

fn header(title: &str) -> String {
    format!("{title}\n{}\n", "=".repeat(title.len()))
}

/// Render Table 4.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = header("Table 4: learning over all datasets with MDs");
    out.push_str(&format!(
        "{:<28} {:<18} {:>8} {:>10}\n",
        "Dataset", "System", "F1", "Time (m)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:<18} {:>8.2} {:>10.3}\n",
            r.dataset, r.system, r.f1, r.time_minutes
        ));
    }
    out
}

/// Render Table 5.
pub fn render_table5(rows: &[Table5Row]) -> String {
    let mut out = header("Table 5: DLearn-CFD vs DLearn-Repaired under CFD violations");
    out.push_str(&format!(
        "{:<28} {:<16} {:>6} {:>8} {:>10}\n",
        "Dataset", "System", "p", "F1", "Time (m)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:<16} {:>6.2} {:>8.2} {:>10.3}\n",
            r.dataset, r.system, r.violation_rate, r.f1, r.time_minutes
        ));
    }
    out
}

/// Render Table 6 / Figure 1 (left) example-scaling points.
pub fn render_scaling(title: &str, rows: &[ScalingPoint]) -> String {
    let mut out = header(title);
    out.push_str(&format!(
        "{:>4} {:>8} {:>8} {:>8} {:>10}\n",
        "km", "#P", "#N", "F1", "Time (m)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>4} {:>8} {:>8} {:>8.2} {:>10.3}\n",
            r.km, r.positives, r.negatives, r.f1, r.time_minutes
        ));
    }
    out
}

/// Render Table 7.
pub fn render_table7(rows: &[Table7Row]) -> String {
    let mut out = header("Table 7: effect of the number of iterations d (km=5)");
    out.push_str(&format!("{:>4} {:>8} {:>10}\n", "d", "F1", "Time (m)"));
    for r in rows {
        out.push_str(&format!(
            "{:>4} {:>8.2} {:>10.3}\n",
            r.iterations, r.f1, r.time_minutes
        ));
    }
    out
}

/// Render Figure 1 (middle/right) sample-size sweeps.
pub fn render_sample_size(rows: &[SampleSizePoint]) -> String {
    let mut out = header("Figure 1 (middle/right): sample-size sweep");
    out.push_str(&format!(
        "{:>4} {:>12} {:>8} {:>10}\n",
        "km", "sample size", "F1", "Time (m)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>4} {:>12} {:>8.2} {:>10.3}\n",
            r.km, r.sample_size, r.f1, r.time_minutes
        ));
    }
    out
}

/// Render the learner-diversity table (extension, not in the paper).
pub fn render_diversity(rows: &[DiversityRow]) -> String {
    let mut out = header("Learner diversity: all strategies on the tree-shaped segments task");
    out.push_str(&format!(
        "{:<34} {:<16} {:>6} {:>6} {:>6} {:>8} {:>10}\n",
        "Dataset", "System", "F1", "Prec", "Rec", "Clauses", "Time (m)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<34} {:<16} {:>6.2} {:>6.2} {:>6.2} {:>8.1} {:>10.3}\n",
            r.dataset, r.system, r.f1, r.precision, r.recall, r.clauses, r.time_minutes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderers_include_all_rows() {
        let rows = vec![
            Table4Row {
                dataset: "IMDB + OMDB (one MD)".into(),
                system: "DLearn (km=5)".into(),
                f1: 0.92,
                time_minutes: 0.42,
            },
            Table4Row {
                dataset: "Walmart + Amazon".into(),
                system: "Castor-NoMD".into(),
                f1: 0.39,
                time_minutes: 0.09,
            },
        ];
        let text = render_table4(&rows);
        assert!(text.contains("DLearn (km=5)"));
        assert!(text.contains("Castor-NoMD"));
        assert!(text.contains("0.92"));
        assert_eq!(text.lines().count(), 3 + rows.len());
    }

    #[test]
    fn scaling_and_table7_render() {
        let s = render_scaling(
            "Table 6",
            &[ScalingPoint {
                km: 2,
                positives: 100,
                negatives: 200,
                f1: 0.8,
                time_minutes: 0.3,
            }],
        );
        assert!(s.contains("100"));
        let t = render_table7(&[Table7Row {
            iterations: 4,
            f1: 0.78,
            time_minutes: 16.26,
        }]);
        assert!(t.contains("16.26"));
        let f = render_sample_size(&[SampleSizePoint {
            km: 5,
            sample_size: 10,
            f1: 0.9,
            time_minutes: 1.0,
        }]);
        assert!(f.contains("10"));
        let t5 = render_table5(&[Table5Row {
            dataset: "DBLP + Google Scholar".into(),
            system: "DLearn-CFD".into(),
            violation_rate: 0.05,
            f1: 0.79,
            time_minutes: 5.92,
        }]);
        assert!(t5.contains("DLearn-CFD"));
        let d = render_diversity(&[DiversityRow {
            dataset: "Customer segments (tree-shaped)".into(),
            system: "TILDE".into(),
            f1: 0.95,
            precision: 0.97,
            recall: 0.93,
            clauses: 6.0,
            time_minutes: 0.02,
        }]);
        assert!(d.contains("TILDE"));
        assert!(d.contains("0.95"));
    }
}
