//! Cross-validated evaluation of learning strategies on a dataset.
//!
//! Evaluation runs through prepared [`Engine`] sessions: one engine per
//! training fold, shared by every strategy evaluated on that fold — so the
//! MD similarity index and the ground bottom clauses of the fold's training
//! examples are built once, not once per strategy.

use dlearn_core::{Engine, LearnerConfig, Strategy};
use dlearn_datagen::Dataset;

use crate::metrics::{mean, Confusion};

/// Result of evaluating one learner configuration on one dataset.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Dataset name.
    pub dataset: String,
    /// Learner/system name (paper naming).
    pub system: String,
    /// Mean F1-score across folds.
    pub f1: f64,
    /// Mean precision across folds.
    pub precision: f64,
    /// Mean recall across folds.
    pub recall: f64,
    /// Mean learning time per fold, in seconds (the covering loop's wall
    /// clock; session preparation is amortized across strategies).
    pub learn_seconds: f64,
    /// Number of folds evaluated.
    pub folds: usize,
    /// Mean number of clauses in the learned definitions.
    pub clauses: f64,
}

/// Evaluate a strategy with `k`-fold cross-validation (the paper uses k=5).
pub fn cross_validate(
    dataset: &Dataset,
    strategy: Strategy,
    config: &LearnerConfig,
    k: usize,
    seed: u64,
) -> EvalResult {
    cross_validate_strategies(dataset, &[strategy], config, k, seed)
        .pop()
        .expect("one result per strategy")
}

/// Evaluate several strategies on the *same* folds, preparing one
/// [`Engine`] per fold and running every strategy against it. With `n`
/// strategies this builds each fold's similarity index and ground examples
/// once instead of `n` times. Results are in `strategies` order.
pub fn cross_validate_strategies(
    dataset: &Dataset,
    strategies: &[Strategy],
    config: &LearnerConfig,
    k: usize,
    seed: u64,
) -> Vec<EvalResult> {
    let folds = dataset.cross_validation_folds(k, seed);
    let mut f1s = vec![Vec::new(); strategies.len()];
    let mut precisions = vec![Vec::new(); strategies.len()];
    let mut recalls = vec![Vec::new(); strategies.len()];
    let mut times = vec![Vec::new(); strategies.len()];
    let mut clause_counts = vec![Vec::new(); strategies.len()];

    for fold in &folds {
        let engine =
            Engine::prepare(fold.train.clone(), config.clone()).expect("generated fold is valid");
        for (si, &strategy) in strategies.iter().enumerate() {
            let learned = engine.learn(strategy).expect("prepared session learns");
            let predictor = engine.predictor(&learned).expect("plan derived by learn");
            let positive_predictions = predictor
                .predict_batch(&fold.test_positives)
                .expect("test tuples have target arity");
            let negative_predictions = predictor
                .predict_batch(&fold.test_negatives)
                .expect("test tuples have target arity");
            let confusion =
                Confusion::from_predictions(&positive_predictions, &negative_predictions);
            f1s[si].push(confusion.f1());
            precisions[si].push(confusion.precision());
            recalls[si].push(confusion.recall());
            times[si].push(learned.seconds());
            clause_counts[si].push(learned.clauses().len() as f64);
        }
    }

    strategies
        .iter()
        .enumerate()
        .map(|(si, strategy)| EvalResult {
            dataset: dataset.name.clone(),
            system: strategy.name().to_string(),
            f1: mean(&f1s[si]),
            precision: mean(&precisions[si]),
            recall: mean(&recalls[si]),
            learn_seconds: mean(&times[si]),
            folds: folds.len(),
            clauses: mean(&clause_counts[si]),
        })
        .collect()
}

/// Evaluate with a single train/test split (used by the scaling experiments
/// where the paper fixes one test set and grows the training set).
pub fn single_split(
    dataset: &Dataset,
    strategy: Strategy,
    config: &LearnerConfig,
    train_fraction: f64,
    seed: u64,
) -> EvalResult {
    let fold = dataset.train_test_split(train_fraction, seed);
    let engine =
        Engine::prepare(fold.train.clone(), config.clone()).expect("generated split is valid");
    let learned = engine.learn(strategy).expect("prepared session learns");
    let predictor = engine.predictor(&learned).expect("plan derived by learn");
    let confusion = Confusion::from_predictions(
        &predictor
            .predict_batch(&fold.test_positives)
            .expect("test tuples have target arity"),
        &predictor
            .predict_batch(&fold.test_negatives)
            .expect("test tuples have target arity"),
    );
    EvalResult {
        dataset: dataset.name.clone(),
        system: strategy.name().to_string(),
        f1: confusion.f1(),
        precision: confusion.precision(),
        recall: confusion.recall(),
        learn_seconds: learned.seconds(),
        folds: 1,
        clauses: learned.clauses().len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_datagen::{generate_movie_dataset, MovieConfig};

    fn fast_config() -> LearnerConfig {
        LearnerConfig {
            coverage_threads: 2,
            ..LearnerConfig::fast()
        }
    }

    #[test]
    fn cross_validation_produces_bounded_metrics() {
        let ds = generate_movie_dataset(&MovieConfig::tiny(), 21);
        let result = cross_validate(&ds, Strategy::DLearn, &fast_config(), 2, 1);
        assert_eq!(result.folds, 2);
        assert!((0.0..=1.0).contains(&result.f1), "f1 = {}", result.f1);
        assert!((0.0..=1.0).contains(&result.precision));
        assert!((0.0..=1.0).contains(&result.recall));
        assert!(result.learn_seconds >= 0.0);
    }

    #[test]
    fn dlearn_is_competitive_with_castor_no_md_on_the_movie_task() {
        // At this tiny scale (8 positives, 2 folds) the variance is large, so
        // the assertion only requires DLearn to stay in the same ballpark;
        // the full Table 4 experiment (larger data, 5 folds) is where the
        // paper's ordering is reproduced.
        let ds = generate_movie_dataset(&MovieConfig::tiny(), 33);
        let dlearn = cross_validate(&ds, Strategy::DLearn, &fast_config(), 2, 3);
        let no_md = cross_validate(&ds, Strategy::CastorNoMd, &fast_config(), 2, 3);
        assert!(
            dlearn.f1 + 0.25 >= no_md.f1,
            "DLearn ({}) fell far behind Castor-NoMD ({})",
            dlearn.f1,
            no_md.f1
        );
        assert!(
            dlearn.f1 > 0.3,
            "DLearn should learn something useful: {}",
            dlearn.f1
        );
    }

    #[test]
    fn shared_session_evaluation_equals_per_strategy_evaluation() {
        // One engine per fold shared by all strategies must produce the
        // same metrics as preparing per strategy: strategy plans are
        // independent of each other.
        let ds = generate_movie_dataset(&MovieConfig::tiny(), 33);
        let strategies = [Strategy::CastorNoMd, Strategy::DLearn];
        let shared = cross_validate_strategies(&ds, &strategies, &fast_config(), 2, 3);
        for (result, &strategy) in shared.iter().zip(&strategies) {
            let solo = cross_validate(&ds, strategy, &fast_config(), 2, 3);
            assert_eq!(result.f1, solo.f1, "{}", strategy.name());
            assert_eq!(result.precision, solo.precision, "{}", strategy.name());
            assert_eq!(result.recall, solo.recall, "{}", strategy.name());
            assert_eq!(result.clauses, solo.clauses, "{}", strategy.name());
        }
    }

    #[test]
    fn single_split_runs_end_to_end() {
        let ds = generate_movie_dataset(&MovieConfig::tiny(), 5);
        let result = single_split(&ds, Strategy::DLearn, &fast_config(), 0.7, 2);
        assert_eq!(result.folds, 1);
        assert!((0.0..=1.0).contains(&result.f1));
    }
}
