//! Cross-validated evaluation of a learner on a dataset.

use dlearn_core::{Learner, LearnerConfig, Strategy};
use dlearn_datagen::Dataset;

use crate::metrics::{mean, Confusion};

/// Result of evaluating one learner configuration on one dataset.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Dataset name.
    pub dataset: String,
    /// Learner/system name (paper naming).
    pub system: String,
    /// Mean F1-score across folds.
    pub f1: f64,
    /// Mean precision across folds.
    pub precision: f64,
    /// Mean recall across folds.
    pub recall: f64,
    /// Mean learning time per fold, in seconds.
    pub learn_seconds: f64,
    /// Number of folds evaluated.
    pub folds: usize,
    /// Mean number of clauses in the learned definitions.
    pub clauses: f64,
}

/// Evaluate a strategy with `k`-fold cross-validation (the paper uses k=5).
pub fn cross_validate(
    dataset: &Dataset,
    strategy: Strategy,
    config: &LearnerConfig,
    k: usize,
    seed: u64,
) -> EvalResult {
    let folds = dataset.cross_validation_folds(k, seed);
    let learner = Learner::new(strategy, config.clone());
    let mut f1s = Vec::new();
    let mut precisions = Vec::new();
    let mut recalls = Vec::new();
    let mut times = Vec::new();
    let mut clause_counts = Vec::new();

    for fold in &folds {
        let outcome = learner.learn(&fold.train);
        let positive_predictions = outcome.model.predict_all(&fold.test_positives);
        let negative_predictions = outcome.model.predict_all(&fold.test_negatives);
        let confusion = Confusion::from_predictions(&positive_predictions, &negative_predictions);
        f1s.push(confusion.f1());
        precisions.push(confusion.precision());
        recalls.push(confusion.recall());
        times.push(outcome.seconds);
        clause_counts.push(outcome.model.clauses().len() as f64);
    }

    EvalResult {
        dataset: dataset.name.clone(),
        system: strategy.name().to_string(),
        f1: mean(&f1s),
        precision: mean(&precisions),
        recall: mean(&recalls),
        learn_seconds: mean(&times),
        folds: folds.len(),
        clauses: mean(&clause_counts),
    }
}

/// Evaluate with a single train/test split (used by the scaling experiments
/// where the paper fixes one test set and grows the training set).
pub fn single_split(
    dataset: &Dataset,
    strategy: Strategy,
    config: &LearnerConfig,
    train_fraction: f64,
    seed: u64,
) -> EvalResult {
    let fold = dataset.train_test_split(train_fraction, seed);
    let learner = Learner::new(strategy, config.clone());
    let outcome = learner.learn(&fold.train);
    let confusion = Confusion::from_predictions(
        &outcome.model.predict_all(&fold.test_positives),
        &outcome.model.predict_all(&fold.test_negatives),
    );
    EvalResult {
        dataset: dataset.name.clone(),
        system: strategy.name().to_string(),
        f1: confusion.f1(),
        precision: confusion.precision(),
        recall: confusion.recall(),
        learn_seconds: outcome.seconds,
        folds: 1,
        clauses: outcome.model.clauses().len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlearn_datagen::{generate_movie_dataset, MovieConfig};

    fn fast_config() -> LearnerConfig {
        LearnerConfig {
            coverage_threads: 2,
            ..LearnerConfig::fast()
        }
    }

    #[test]
    fn cross_validation_produces_bounded_metrics() {
        let ds = generate_movie_dataset(&MovieConfig::tiny(), 21);
        let result = cross_validate(&ds, Strategy::DLearn, &fast_config(), 2, 1);
        assert_eq!(result.folds, 2);
        assert!((0.0..=1.0).contains(&result.f1), "f1 = {}", result.f1);
        assert!((0.0..=1.0).contains(&result.precision));
        assert!((0.0..=1.0).contains(&result.recall));
        assert!(result.learn_seconds >= 0.0);
    }

    #[test]
    fn dlearn_is_competitive_with_castor_no_md_on_the_movie_task() {
        // At this tiny scale (8 positives, 2 folds) the variance is large, so
        // the assertion only requires DLearn to stay in the same ballpark;
        // the full Table 4 experiment (larger data, 5 folds) is where the
        // paper's ordering is reproduced.
        let ds = generate_movie_dataset(&MovieConfig::tiny(), 33);
        let dlearn = cross_validate(&ds, Strategy::DLearn, &fast_config(), 2, 3);
        let no_md = cross_validate(&ds, Strategy::CastorNoMd, &fast_config(), 2, 3);
        assert!(
            dlearn.f1 + 0.25 >= no_md.f1,
            "DLearn ({}) fell far behind Castor-NoMD ({})",
            dlearn.f1,
            no_md.f1
        );
        assert!(
            dlearn.f1 > 0.3,
            "DLearn should learn something useful: {}",
            dlearn.f1
        );
    }

    #[test]
    fn single_split_runs_end_to_end() {
        let ds = generate_movie_dataset(&MovieConfig::tiny(), 5);
        let result = single_split(&ds, Strategy::DLearn, &fast_config(), 0.7, 2);
        assert_eq!(result.folds, 1);
        assert!((0.0..=1.0).contains(&result.f1));
    }
}
