//! Regenerate Table 6 of the paper.
fn main() {
    let scale = dlearn_eval::scale_from_args();
    let rows = dlearn_eval::experiments::table6(scale);
    println!(
        "{}",
        dlearn_eval::report::render_scaling(
            "Table 6: scaling the number of examples (with CFD violations)",
            &rows
        )
    );
}
