//! Regenerate Figure 1 of the paper (all three panels).
fn main() {
    let scale = dlearn_eval::scale_from_args();
    let left = dlearn_eval::experiments::figure1_examples(scale);
    println!(
        "{}",
        dlearn_eval::report::render_scaling(
            "Figure 1 (left): scaling the number of examples (km=2)",
            &left
        )
    );
    let sweep = dlearn_eval::experiments::figure1_sample_size(scale);
    println!("{}", dlearn_eval::report::render_sample_size(&sweep));
}
