//! Regenerate Table 4 of the paper.
fn main() {
    let scale = dlearn_eval::scale_from_args();
    let rows = dlearn_eval::experiments::table4(scale);
    println!("{}", dlearn_eval::report::render_table4(&rows));
}
