//! Regenerate Table 5 of the paper.
fn main() {
    let scale = dlearn_eval::scale_from_args();
    let rows = dlearn_eval::experiments::table5(scale);
    println!("{}", dlearn_eval::report::render_table5(&rows));
}
