//! Run the learner-diversity experiment: every strategy (the five paper
//! systems plus FOIL and TILDE) cross-validated on the tree-shaped
//! segmentation dataset.
fn main() {
    let scale = dlearn_eval::scale_from_args();
    println!("Running the learner-diversity experiment at {scale:?} scale\n");
    println!(
        "{}",
        dlearn_eval::report::render_diversity(&dlearn_eval::experiments::learner_diversity(scale))
    );
}
