//! Run every experiment (Tables 4-7, Figure 1) at the requested scale.
fn main() {
    let scale = dlearn_eval::scale_from_args();
    println!("Running all experiments at {scale:?} scale\n");
    println!(
        "{}",
        dlearn_eval::report::render_table4(&dlearn_eval::experiments::table4(scale))
    );
    println!(
        "{}",
        dlearn_eval::report::render_table5(&dlearn_eval::experiments::table5(scale))
    );
    println!(
        "{}",
        dlearn_eval::report::render_scaling(
            "Table 6: scaling the number of examples (with CFD violations)",
            &dlearn_eval::experiments::table6(scale)
        )
    );
    println!(
        "{}",
        dlearn_eval::report::render_table7(&dlearn_eval::experiments::table7(scale))
    );
    println!(
        "{}",
        dlearn_eval::report::render_scaling(
            "Figure 1 (left): scaling the number of examples (km=2)",
            &dlearn_eval::experiments::figure1_examples(scale)
        )
    );
    println!(
        "{}",
        dlearn_eval::report::render_sample_size(&dlearn_eval::experiments::figure1_sample_size(
            scale
        ))
    );
    println!(
        "{}",
        dlearn_eval::report::render_diversity(&dlearn_eval::experiments::learner_diversity(scale))
    );
}
