//! Experiment runner: one function per table/figure of the paper's
//! evaluation (Section 6). Each function returns a result struct whose rows
//! mirror the rows/series the paper reports; `crate::report` renders them as
//! text tables.

use dlearn_core::{LearnerConfig, Strategy};
use dlearn_datagen::{
    generate_citation_dataset, generate_movie_dataset, generate_product_dataset,
    generate_segment_dataset, CitationConfig, Dataset, MovieConfig, ProductConfig, SegmentConfig,
};

use crate::cv::{cross_validate, cross_validate_strategies, EvalResult};

/// How large the synthetic datasets and parameter sweeps are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-long smoke scale used by benchmarks and CI.
    Smoke,
    /// The default scale of the experiment binaries.
    Small,
    /// The largest scale (closest in spirit to the paper's setup).
    Paper,
}

impl Scale {
    /// Parse from a command-line string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Number of cross-validation folds (the paper uses 5).
    pub fn folds(&self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Small => 3,
            Scale::Paper => 5,
        }
    }

    fn movie_config(&self) -> MovieConfig {
        match self {
            Scale::Smoke => MovieConfig::tiny(),
            Scale::Small => MovieConfig::small(),
            Scale::Paper => MovieConfig::paper(),
        }
    }

    fn product_config(&self) -> ProductConfig {
        match self {
            Scale::Smoke => ProductConfig::tiny(),
            Scale::Small => ProductConfig::small(),
            Scale::Paper => ProductConfig::paper(),
        }
    }

    fn citation_config(&self) -> CitationConfig {
        match self {
            Scale::Smoke => CitationConfig::tiny(),
            Scale::Small => CitationConfig::small(),
            Scale::Paper => CitationConfig::paper(),
        }
    }

    fn km_values(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![2, 5],
            _ => vec![2, 5, 10],
        }
    }

    fn segment_config(&self) -> SegmentConfig {
        match self {
            Scale::Smoke => SegmentConfig::tiny(),
            Scale::Small => SegmentConfig::small(),
            Scale::Paper => SegmentConfig::paper(),
        }
    }
}

fn base_config(seed: u64) -> LearnerConfig {
    LearnerConfig {
        seed,
        ..LearnerConfig::fast()
    }
}

/// Bottom-clause iteration depth `d` per dataset, matching the choices of
/// Section 6.2.3 of the paper (3 for DBLP+Scholar, 4 for IMDB+OMDB, 5 for
/// Walmart+Amazon): the target attribute needs that many hops to reach the
/// discriminating attribute on the other source.
fn iterations_for(dataset_name: &str) -> usize {
    if dataset_name.contains("Walmart") {
        5
    } else if dataset_name.contains("IMDB") {
        4
    } else {
        3
    }
}

/// The four dataset variants of Table 4 / Table 5.
fn datasets(scale: Scale, violation_rate: f64, with_three_md_movies: bool) -> Vec<Dataset> {
    let mut out = Vec::new();
    let mc = scale.movie_config().with_violation_rate(violation_rate);
    if with_three_md_movies {
        out.push(generate_movie_dataset(&mc.clone(), 41));
        out.push(generate_movie_dataset(&mc.with_three_mds(), 42));
    } else {
        out.push(generate_movie_dataset(&mc.with_three_mds(), 42));
    }
    out.push(generate_product_dataset(
        &{
            let mut c = scale.product_config();
            c.cfd_violation_rate = violation_rate;
            c
        },
        43,
    ));
    out.push(generate_citation_dataset(
        &{
            let mut c = scale.citation_config();
            c.cfd_violation_rate = violation_rate;
            c
        },
        44,
    ));
    out
}

/// One row of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Dataset name.
    pub dataset: String,
    /// System name (`DLearn (km=5)` etc.).
    pub system: String,
    /// Mean F1-score.
    pub f1: f64,
    /// Mean learning time (minutes, as in the paper).
    pub time_minutes: f64,
}

/// Table 4: learning over all datasets with MDs only (no CFD violations),
/// comparing Castor-NoMD / Castor-Exact / Castor-Clean / DLearn with
/// `km ∈ {2, 5, 10}`.
pub fn table4(scale: Scale) -> Vec<Table4Row> {
    let mut rows = Vec::new();
    for dataset in datasets(scale, 0.0, true) {
        let depth = iterations_for(&dataset.name);
        // The three Castor baselines share one configuration, so they run
        // against one prepared session per fold (index built once).
        let castor = [
            Strategy::CastorNoMd,
            Strategy::CastorExact,
            Strategy::CastorClean,
        ];
        let config = base_config(11).with_iterations(depth);
        for (r, strategy) in cross_validate_strategies(&dataset, &castor, &config, scale.folds(), 7)
            .into_iter()
            .zip(castor)
        {
            rows.push(to_table4_row(&dataset, strategy.name().to_string(), &r));
        }
        for km in scale.km_values() {
            let config = base_config(11).with_km(km).with_iterations(depth);
            let r = cross_validate(&dataset, Strategy::DLearn, &config, scale.folds(), 7);
            rows.push(to_table4_row(&dataset, format!("DLearn (km={km})"), &r));
        }
    }
    rows
}

fn to_table4_row(dataset: &Dataset, system: String, r: &EvalResult) -> Table4Row {
    Table4Row {
        dataset: dataset.name.clone(),
        system,
        f1: r.f1,
        time_minutes: r.learn_seconds / 60.0,
    }
}

/// One row of Table 5.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Dataset name.
    pub dataset: String,
    /// System name (DLearn-CFD or DLearn-Repaired).
    pub system: String,
    /// CFD-violation rate `p`.
    pub violation_rate: f64,
    /// Mean F1-score.
    pub f1: f64,
    /// Mean learning time (minutes).
    pub time_minutes: f64,
}

/// Table 5: DLearn-CFD vs DLearn-Repaired at violation rates
/// `p ∈ {0.05, 0.10, 0.20}`.
pub fn table5(scale: Scale) -> Vec<Table5Row> {
    let rates: &[f64] = match scale {
        Scale::Smoke => &[0.10, 0.20],
        _ => &[0.05, 0.10, 0.20],
    };
    let mut rows = Vec::new();
    for &p in rates {
        for dataset in datasets(scale, p, false) {
            let depth = iterations_for(&dataset.name);
            // DLearn-CFD and DLearn-Repaired share a configuration: one
            // prepared session per fold serves both (DLearn-Repaired reuses
            // the fold's similarity index outright when the CFD repairs
            // cannot touch MD-identified columns).
            let systems = [
                ("DLearn-CFD", Strategy::DLearn),
                ("DLearn-Repaired", Strategy::DLearnRepaired),
            ];
            let strategies = systems.map(|(_, s)| s);
            let config = base_config(13).with_iterations(depth);
            for (r, (system, _)) in
                cross_validate_strategies(&dataset, &strategies, &config, scale.folds(), 9)
                    .into_iter()
                    .zip(systems)
            {
                rows.push(Table5Row {
                    dataset: dataset.name.clone(),
                    system: system.to_string(),
                    violation_rate: p,
                    f1: r.f1,
                    time_minutes: r.learn_seconds / 60.0,
                });
            }
        }
    }
    rows
}

/// One cell of Table 6 / one point of Figure 1 (left).
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// `km` used.
    pub km: usize,
    /// Number of positive training examples.
    pub positives: usize,
    /// Number of negative training examples.
    pub negatives: usize,
    /// Mean F1-score.
    pub f1: f64,
    /// Mean learning time (minutes).
    pub time_minutes: f64,
}

/// Table 6 / Figure 1 (left): scaling the number of training examples on the
/// IMDB+OMDB (three MDs) dataset with CFD violations, for `km = 5` and
/// `km = 2`.
pub fn table6(scale: Scale) -> Vec<ScalingPoint> {
    let sizes: Vec<(usize, usize)> = match scale {
        Scale::Smoke => vec![(8, 16), (16, 32)],
        Scale::Small => vec![(10, 20), (20, 40), (40, 80)],
        Scale::Paper => vec![(20, 40), (40, 80), (80, 160), (120, 240)],
    };
    let kms = match scale {
        Scale::Smoke => vec![2],
        _ => vec![2, 5],
    };
    let mut rows = Vec::new();
    for &km in &kms {
        for &(np, nn) in &sizes {
            let config = scale
                .movie_config()
                .with_three_mds()
                .with_violation_rate(0.10)
                .with_examples(np, nn);
            let dataset = generate_movie_dataset(&config, 52);
            let learner_config = base_config(17).with_km(km).with_iterations(4);
            let r = cross_validate(
                &dataset,
                Strategy::DLearn,
                &learner_config,
                scale.folds(),
                5,
            );
            rows.push(ScalingPoint {
                km,
                positives: np,
                negatives: nn,
                f1: r.f1,
                time_minutes: r.learn_seconds / 60.0,
            });
        }
    }
    rows
}

/// One row of Table 7.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Bottom-clause iteration depth `d`.
    pub iterations: usize,
    /// Mean F1-score.
    pub f1: f64,
    /// Mean learning time (minutes).
    pub time_minutes: f64,
}

/// Table 7: the effect of the number of bottom-clause iterations `d` on the
/// IMDB+OMDB (three MDs + CFDs) dataset at `km = 5`.
pub fn table7(scale: Scale) -> Vec<Table7Row> {
    let depths: Vec<usize> = match scale {
        Scale::Smoke => vec![1, 2, 3],
        _ => vec![2, 3, 4, 5],
    };
    let dataset = generate_movie_dataset(
        &scale
            .movie_config()
            .with_three_mds()
            .with_violation_rate(0.10),
        61,
    );
    depths
        .into_iter()
        .map(|d| {
            let config = base_config(19).with_km(5).with_iterations(d);
            let r = cross_validate(&dataset, Strategy::DLearn, &config, scale.folds(), 3);
            Table7Row {
                iterations: d,
                f1: r.f1,
                time_minutes: r.learn_seconds / 60.0,
            }
        })
        .collect()
}

/// One point of Figure 1 (middle/right): sample-size sweep.
#[derive(Debug, Clone)]
pub struct SampleSizePoint {
    /// `km` used.
    pub km: usize,
    /// Bottom-clause sample size.
    pub sample_size: usize,
    /// Mean F1-score.
    pub f1: f64,
    /// Mean learning time (minutes).
    pub time_minutes: f64,
}

/// Figure 1 (middle and right): F1 and learning time while varying the
/// bottom-clause sample size, for `km = 2` and `km = 5`.
pub fn figure1_sample_size(scale: Scale) -> Vec<SampleSizePoint> {
    let sizes: Vec<usize> = match scale {
        Scale::Smoke => vec![4, 8],
        Scale::Small => vec![4, 8, 12],
        Scale::Paper => vec![4, 8, 12, 16],
    };
    let kms = match scale {
        Scale::Smoke => vec![2],
        _ => vec![2, 5],
    };
    let dataset = generate_movie_dataset(&scale.movie_config().with_three_mds(), 71);
    let mut rows = Vec::new();
    for &km in &kms {
        for &s in &sizes {
            let config = base_config(23)
                .with_km(km)
                .with_sample_size(s)
                .with_iterations(4);
            let r = cross_validate(&dataset, Strategy::DLearn, &config, scale.folds(), 2);
            rows.push(SampleSizePoint {
                km,
                sample_size: s,
                f1: r.f1,
                time_minutes: r.learn_seconds / 60.0,
            });
        }
    }
    rows
}

/// Figure 1 (left): F1 and learning time while growing the number of
/// examples at `km = 2` (the example-scaling series without CFD violations).
pub fn figure1_examples(scale: Scale) -> Vec<ScalingPoint> {
    let sizes: Vec<(usize, usize)> = match scale {
        Scale::Smoke => vec![(8, 16), (16, 32)],
        Scale::Small => vec![(10, 20), (20, 40), (40, 80)],
        Scale::Paper => vec![(20, 40), (40, 80), (80, 160), (160, 320)],
    };
    let mut rows = Vec::new();
    for &(np, nn) in &sizes {
        let config = scale.movie_config().with_three_mds().with_examples(np, nn);
        let dataset = generate_movie_dataset(&config, 81);
        let learner_config = base_config(29).with_km(2).with_iterations(4);
        let r = cross_validate(
            &dataset,
            Strategy::DLearn,
            &learner_config,
            scale.folds(),
            4,
        );
        rows.push(ScalingPoint {
            km: 2,
            positives: np,
            negatives: nn,
            f1: r.f1,
            time_minutes: r.learn_seconds / 60.0,
        });
    }
    rows
}

/// One row of the learner-diversity table (not in the paper).
#[derive(Debug, Clone)]
pub struct DiversityRow {
    /// Dataset name.
    pub dataset: String,
    /// Strategy display name.
    pub system: String,
    /// Mean held-out F1-score.
    pub f1: f64,
    /// Mean held-out precision.
    pub precision: f64,
    /// Mean held-out recall.
    pub recall: f64,
    /// Mean number of learned clauses per fold.
    pub clauses: f64,
    /// Mean learning time (minutes).
    pub time_minutes: f64,
}

/// Learner-diversity table (extension, not in the paper): every strategy —
/// the five paper systems plus FOIL and TILDE — cross-validated on the
/// tree-shaped segmentation dataset, all folds sharing one prepared session
/// per fold. The concept is a six-way disjunction of region-specific
/// attribute tests, so clausal covering under the default four-clause budget
/// caps out while TILDE's decision tree recovers every segment; the table
/// makes that gap measurable.
pub fn learner_diversity(scale: Scale) -> Vec<DiversityRow> {
    let dataset = generate_segment_dataset(&scale.segment_config(), 91);
    let config = base_config(31).with_iterations(2);
    let strategies = Strategy::ALL;
    cross_validate_strategies(&dataset, &strategies, &config, scale.folds(), 6)
        .into_iter()
        .zip(strategies)
        .map(|(r, strategy)| DiversityRow {
            dataset: dataset.name.clone(),
            system: strategy.name().to_string(),
            f1: r.f1,
            precision: r.precision,
            recall: r.recall,
            clauses: r.clauses,
            time_minutes: r.learn_seconds / 60.0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_round_trips() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("SMALL"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Paper.folds(), 5);
    }

    #[test]
    fn dataset_catalog_has_expected_entries() {
        let with_both = datasets(Scale::Smoke, 0.0, true);
        assert_eq!(with_both.len(), 4);
        let single_movie = datasets(Scale::Smoke, 0.1, false);
        assert_eq!(single_movie.len(), 3);
    }
}
