//! # dlearn-eval — metrics, cross-validation and the experiment runner
//!
//! Reproduces the paper's evaluation (Section 6): F1-score under k-fold
//! cross-validation for DLearn and the Castor-style baselines over the three
//! synthetic dataset pairs, with one experiment function per table/figure:
//!
//! * [`experiments::table4`] — baselines vs DLearn with `km ∈ {2,5,10}`.
//! * [`experiments::table5`] — DLearn-CFD vs DLearn-Repaired under injected
//!   CFD violations.
//! * [`experiments::table6`] / [`experiments::figure1_examples`] — scaling
//!   the number of training examples.
//! * [`experiments::table7`] — effect of the bottom-clause iteration depth.
//! * [`experiments::figure1_sample_size`] — effect of the sample size.
//! * [`experiments::learner_diversity`] — extension (not in the paper):
//!   every strategy, including FOIL and TILDE, on the tree-shaped
//!   segmentation dataset where decision-tree learning beats clausal
//!   covering.
//!
//! The binaries `table4`, `table5`, `table6`, `table7`, `figure1`,
//! `learner_diversity` and `all_experiments` run these and print the
//! paper-style tables; pass `--scale smoke|small|paper` to control the
//! dataset sizes.

#![warn(missing_docs)]

pub mod cv;
pub mod experiments;
pub mod metrics;
pub mod report;

pub use cv::{cross_validate, cross_validate_strategies, single_split, EvalResult};
pub use experiments::Scale;
pub use metrics::{mean, Confusion};

/// Parse the `--scale` command-line argument for the experiment binaries
/// (defaults to [`Scale::Small`]).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            if let Some(s) = args.get(i + 1).and_then(|v| Scale::parse(v)) {
                return s;
            }
        }
        if let Some(rest) = args[i].strip_prefix("--scale=") {
            if let Some(s) = Scale::parse(rest) {
                return s;
            }
        }
    }
    Scale::Small
}
