//! Standalone timing harness for `SimilarityIndex::build` over the
//! benchmark ~1k×1k dirty vocabulary: `index_build_timing [threads] [reps]`
//! prints the median/min/max build time. Built for interleaved
//! same-machine A/B runs (pin with `taskset -c 0`, alternate old/new
//! binaries) where the criterion-shim bench would interleave too coarsely;
//! `BENCH_subsumption.json` carries the committed baseline.

use std::time::Instant;

use dlearn_similarity::{IndexConfig, SimilarityIndex, SimilarityOperator};
use dlearn_test_support::vocab::{dirty_vocabulary, VocabConfig};

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let vocab = dirty_vocabulary(&VocabConfig::benchmark_1k(), 42);
    let config = IndexConfig {
        top_k: 5,
        operator: SimilarityOperator::with_threshold(0.65),
        threads,
        ..IndexConfig::default()
    };
    // Warm-up.
    let warm = SimilarityIndex::build(&vocab.left, &vocab.right, &config);
    let mut times: Vec<u128> = Vec::with_capacity(reps);
    let mut pairs = 0usize;
    for _ in 0..reps {
        let t = Instant::now();
        let built = SimilarityIndex::build(&vocab.left, &vocab.right, &config);
        times.push(t.elapsed().as_micros());
        pairs = built.pair_count();
    }
    times.sort_unstable();
    println!(
        "threads={threads} reps={reps} pairs={pairs} (warm {}) median_us={} min_us={} max_us={}",
        warm.pair_count(),
        times[times.len() / 2],
        times[0],
        times[times.len() - 1]
    );
}
