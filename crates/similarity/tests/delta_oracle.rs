//! Delta-sequence oracle for [`MaintainedIndex`]: seeded column-delta
//! scripts over dirty vocabularies, replayed across a threshold × top-k
//! grid, pinning after every step that the incrementally maintained index
//! equals both a fresh [`SimilarityIndex::build`] and the brute-force
//! all-pairs [`ReferenceIndex`] — entry for entry, score bits included.
//!
//! Thresholds stay at or above the vocabulary's blocking floor (0.65): the
//! blocking filter is complete only above it, and `MaintainedIndex` repairs
//! through the same blocking, so the contract is "equal to a fresh build",
//! which the floor makes equal to the brute-force reference too.
//!
//! [`MaintainedIndex`]: dlearn_similarity::MaintainedIndex
//! [`SimilarityIndex::build`]: dlearn_similarity::SimilarityIndex::build
//! [`ReferenceIndex`]: dlearn_test_support::ReferenceIndex

use dlearn_similarity::{IndexConfig, SimilarityOperator};
use dlearn_test_support::{
    column_script, dirty_vocabulary, replay_and_compare, ColumnScriptConfig, VocabConfig,
};

/// Small dirty vocabulary: enough variants for real near-duplicate
/// structure, small enough that the brute-force reference stays cheap
/// across hundreds of replays.
fn vocab_config() -> VocabConfig {
    VocabConfig {
        bases: 8,
        noise_per_side: 3,
        ..VocabConfig::default()
    }
}

fn index_config(threshold: f64, top_k: usize) -> IndexConfig {
    IndexConfig {
        top_k,
        operator: SimilarityOperator::with_threshold(threshold),
        threads: 1,
        ..IndexConfig::default()
    }
}

/// ~300 seeded delta scripts (34 seeds × 3 thresholds × 3 top-k values),
/// each replayed step by step against fresh rebuild and brute force.
#[test]
fn maintained_index_equals_rebuild_across_seeded_scripts_and_grid() {
    let thresholds = [0.65, 0.72, 0.8];
    let top_ks = [1, 2, 4];
    let script_config = ColumnScriptConfig {
        steps: 5,
        ..ColumnScriptConfig::default()
    };

    let mut cases = 0usize;
    let mut pairs_seen = 0usize;
    let mut rescored = 0usize;
    let mut patched = 0usize;
    for seed in 0..34u64 {
        let vocab = dirty_vocabulary(&vocab_config(), seed);
        let script = column_script(&vocab.left, &vocab.right, &script_config, seed);
        for &threshold in &thresholds {
            for &top_k in &top_ks {
                let stats = replay_and_compare(&script, &index_config(threshold, top_k));
                cases += 1;
                pairs_seen += stats.pairs_seen;
                rescored += stats.rescored_lefts;
                patched += stats.patched_entries;
            }
        }
    }
    assert_eq!(cases, 306);
    // Vacuity guards: the scripts must exercise stored pairs and BOTH
    // repair paths (full re-scans and targeted patches), or the equality
    // above proves nothing about the incremental machinery.
    assert!(
        pairs_seen > 1_000,
        "scripts barely stored pairs: {pairs_seen}"
    );
    assert!(rescored > 100, "rescan path under-exercised: {rescored}");
    assert!(patched > 100, "patch path under-exercised: {patched}");
}

/// Deltas that drain a side completely and then refill it: the maintained
/// index must pass through the empty state and come back identical.
#[test]
fn drain_and_refill_round_trips() {
    use dlearn_similarity::{ColumnDelta, MaintainedIndex, SimilarityIndex};

    let vocab = dirty_vocabulary(&vocab_config(), 99);
    let config = index_config(0.7, 3);
    let built = SimilarityIndex::build(&vocab.left, &vocab.right, &config);
    let mut maintained =
        MaintainedIndex::adopt(built.clone(), &vocab.left, &vocab.right, config.clone());

    maintained.apply(&ColumnDelta {
        removed_right: vocab.right.clone(),
        ..ColumnDelta::default()
    });
    assert_eq!(
        maintained.index().pair_count(),
        0,
        "drained index not empty"
    );
    assert_eq!(
        maintained.index(),
        &SimilarityIndex::build(&vocab.left, &[], &config)
    );

    maintained.apply(&ColumnDelta {
        added_right: vocab.right.clone(),
        ..ColumnDelta::default()
    });
    assert_eq!(
        maintained.index(),
        &built,
        "refill after drain must restore the original index"
    );
}
